//! Offline API-subset shim of `bytes` 1.x (see `shims/README.md`).
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view over shared immutable
//! storage (`Arc<[u8]>` plus a window), [`BytesMut`] a growable buffer
//! that freezes into one, and [`BufMut`] the big-endian append trait —
//! the exact subset the workspace exercises.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared, but the empty `Arc<[u8]>`
    /// is as cheap as it gets).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice. The shim copies once; callers only rely on
    /// value semantics, not zero-copy of statics.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(32) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 32 {
            write!(f, "…+{}", self.len() - 32)?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        Vec::from(&self[..]).into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut { buf: vec![0; len] }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.buf.len())
    }
}

/// Big-endian append operations (the subset of `bytes::BufMut` used).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_and_windows() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let tail = mid.slice(1..);
        assert_eq!(&tail[..], &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn bytes_mut_put_is_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xAB);
        m.put_u32(0x01020304);
        m.put_u64(0x05060708090A0B0C);
        let frozen = m.freeze();
        assert_eq!(frozen[0], 0xAB);
        assert_eq!(&frozen[1..5], &[1, 2, 3, 4]);
        assert_eq!(frozen.len(), 13);
    }

    #[test]
    fn zeroed_and_copy_from_slice_roundtrip() {
        let mut z = BytesMut::zeroed(4);
        z[1..3].copy_from_slice(&[9, 9]);
        assert_eq!(&z[..], &[0, 9, 9, 0]);
        let b = Bytes::copy_from_slice(&z);
        assert_eq!(b, [0u8, 9, 9, 0]);
    }

    #[test]
    fn equality_and_static() {
        assert_eq!(Bytes::from_static(b"entry"), *b"entry");
        assert_eq!(Bytes::from("abc"), Bytes::from(vec![b'a', b'b', b'c']));
    }
}
