//! Offline API-subset shim of `proptest` (see `shims/README.md`).
//!
//! Implements the strategy combinators and the `proptest!` test macro the
//! workspace uses: uniform ranges, tuples, `Just`, `any::<T>()`,
//! `collection::vec`, a character-class subset of string regex strategies,
//! weighted `prop_oneof!`, and `prop_assert*`. Sampling is deterministic
//! per test (seeded from the test name), cases are independent, and there
//! is **no shrinking** — a failing case reports its inputs via the
//! panic message instead.

use std::fmt::Debug;
use std::ops::Range;

pub mod test_runner {
    /// SplitMix64-based deterministic generator for test-case sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seeds from a test name so each test gets an independent but
        /// reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// Error type carried out of a failing `prop_assert*` (a message).
pub type TestCaseError = String;

/// Run configuration; only `cases` is meaningful in the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A reusable generator of values of one type.
pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Type-erased strategy (what `prop_oneof!` arms collapse to).
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive samples",
            self.whence
        )
    }
}

/// Strategy producing one constant (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Uniform ranges ------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

// any::<T>() ----------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[derive(Clone, Debug, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// Tuples --------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// String regex subset -------------------------------------------------------

/// `&'static str` acts as a strategy for a character-class regex subset:
/// `[<class>]{m,n}`, `[<class>]{k}` or a bare `[<class>]`, where the
/// class lists characters and `a-z` style ranges. This covers the
/// patterns the workspace uses (e.g. `"[a-z0-9]{1,10}"`).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let k = counts.trim().parse().ok()?;
            (k, k)
        }
    };
    if min > max {
        return None;
    }
    Some((chars, min, max))
}

// Collections ---------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Accepted size arguments for [`vec`]: a `usize` (exact length) or a
    /// half-open `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Strategy for vectors of `elem` with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

// Union (prop_oneof) --------------------------------------------------------

pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: Debug> Union<V> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof weights sum to zero");
        Union { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted or unweighted choice among strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The test macro: each `fn name(arg in strategy, ...)` body runs for
/// `cases` independently sampled inputs. A `prop_assert*` failure reports
/// the sampled inputs; there is no shrinking in the shim.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..cfg.cases {
                    let __inputs;
                    $crate::__proptest_case!(rng, __inputs, ($($arg in $strat),+));
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name), __case + 1, cfg.cases, e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, $inputs:ident, ($($arg:pat in $strat:expr),+)) => {
        // Sample every strategy first (left to right), then bind patterns,
        // so the debug rendering of inputs is complete even when a later
        // binding panics.
        let __vals = ( $($crate::Strategy::sample(&$strat, &mut $rng),)+ );
        $inputs = format!("{:?}", __vals);
        let ( $($arg,)+ ) = __vals;
    };
}

/// Assert within a proptest body; failure aborts only the current case
/// with a diagnostic rather than unwinding through the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}: {}", a, b, format!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}: {}", a, b, format!($($fmt)+));
    }};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u8),
        B,
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_sizes_and_tuples(v in proptest::collection::vec((0u8..4, any::<bool>()), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (n, _) in &v {
                prop_assert!(*n < 4);
            }
        }

        #[test]
        fn strings_match_class(s in "[a-z0-9]{1,10}") {
            prop_assert!(!s.is_empty() && s.len() <= 10);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }

        #[test]
        fn oneof_and_map(op in prop_oneof![
            3 => (0u8..9).prop_map(Op::A),
            1 => Just(Op::B),
        ]) {
            match op {
                Op::A(n) => prop_assert!(n < 9),
                Op::B => {}
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_cases_apply(x in 0u8..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn exact_vec_size() {
        let mut rng = TestRng::from_seed(1);
        let s = crate::collection::vec(0u8..10, 8usize);
        for _ in 0..16 {
            assert_eq!(s.sample(&mut rng).len(), 8);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = crate::collection::vec(any::<u64>(), 0..9);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
