//! Offline API-subset shim of `serde` (see `shims/README.md`).
//!
//! The workspace only *derives* `Serialize` on plain result structs (no
//! serializer is ever constructed), so the trait is a no-op marker with a
//! blanket impl and the derive macro expands to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented so any
/// bound written against it is satisfied.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<T: ?Sized> Deserialize<'_> for T {}
