//! Offline API-subset shim of `parking_lot` (see `shims/README.md`).
//!
//! Wraps the std lock types with parking_lot's non-poisoning API: `lock`,
//! `read` and `write` return guards directly. A poisoned std lock (a
//! panicking holder) propagates the inner value rather than failing,
//! matching parking_lot semantics closely enough for this workspace.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
