//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde
//! shim (see `shims/README.md`). The workspace derives `Serialize` on
//! result structs but never invokes a serializer, so an empty expansion
//! is sufficient: the shim `serde::Serialize` trait has a blanket impl.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
