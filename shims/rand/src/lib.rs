//! Offline API-subset shim of `rand` 0.8 (see `shims/README.md`).
//!
//! Provides a deterministic `SmallRng` (xoshiro256++, the same family the
//! real crate uses on 64-bit targets), `SeedableRng::seed_from_u64` with
//! SplitMix64 state expansion, and the `Rng::gen` sampling entry point for
//! the primitive types the workspace draws.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly from an RNG (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait Uniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// The user-facing sampling trait.
pub trait Rng: RngCore {
    fn gen<T: Uniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `[range.start, range.end)`.
    fn gen_range<T>(&mut self, range: core::ops::Range<T>) -> T
    where
        T: RangeSample,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Uniform>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer types usable with [`Rng::gen_range`].
pub trait RangeSample: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

macro_rules! range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: core::ops::Range<Self>,
            ) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128 - range.start as u128) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
range_sample!(u8, u16, u32, u64, usize);

impl RangeSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self {
        range.start + <f64 as Uniform>::sample(rng) * (range.end - range.start)
    }
}

/// Seeding entry points (subset of the real trait).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same
    /// generator family `rand`'s `SmallRng` uses on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut x);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
