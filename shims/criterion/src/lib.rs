//! Offline API-subset shim of `criterion` 0.5 (see `shims/README.md`).
//!
//! Implements the harness surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!` (both forms), benchmark groups,
//! `iter`/`iter_batched`, throughput annotation — with a simple but
//! honest measurement loop: warm up, calibrate an iteration count that
//! fills the configured measurement time, then report the mean.
//!
//! Extras over the real crate (used by this repo's own bench mains):
//! [`Criterion::take_results`] exposes the collected measurements so a
//! bench target can persist machine-readable summaries.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Units for reporting per-iteration throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Batch sizing hint for `iter_batched`; the shim times each routine call
/// individually, so the variants only affect nothing but API fit.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One completed measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full id, `group/name` when run under a group.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations actually timed.
    pub iters: u64,
    /// Throughput annotation in effect, if any.
    pub throughput: Option<Throughput>,
}

#[derive(Clone, Copy, Debug)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

/// The benchmark harness handle.
pub struct Criterion {
    config: Config,
    filter: Option<String>,
    test_mode: bool,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config::default(),
            filter: None,
            test_mode: false,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Parses the CLI arguments cargo passes to a `harness = false` bench:
    /// `--bench` selects normal mode, `--test` a one-iteration smoke mode,
    /// and the first free-standing argument filters benchmark ids.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => self.test_mode = true,
                s if s.starts_with('-') => {}
                s => {
                    if self.filter.is_none() {
                        self.filter = Some(s.to_string());
                    }
                }
            }
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(id, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Drains the measurements collected so far (shim extension).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    fn run_one<F>(&mut self, id: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            config: self.config,
            test_mode: self.test_mode,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        let rate = throughput.map(|t| match t {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                format!(
                    "  thrpt: {:>9.3} GiB/s",
                    n as f64 / ns * 1e9 / (1u64 << 30) as f64
                )
            }
            Throughput::Elements(n) => {
                format!("  thrpt: {:>9.0} elem/s", n as f64 / ns * 1e9)
            }
        });
        println!(
            "bench: {id:<48} time: {}{}",
            format_ns(ns),
            rate.unwrap_or_default()
        );
        self.results.push(BenchResult {
            id,
            ns_per_iter: ns,
            iters: b.iters,
            throughput,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>9.3} s/iter ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>9.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>9.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:>9.1} ns/iter")
    }
}

/// A named group sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.config.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.config.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let throughput = self.throughput;
        self.criterion.run_one(id, throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the measured closure; `iter`/`iter_batched` do the timing.
pub struct Bencher {
    config: Config,
    test_mode: bool,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            self.total = Duration::from_nanos(1);
            self.iters = 1;
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = (self.config.measurement_time.as_secs_f64() / est.max(1e-9)) as u64;
        let iters = target
            .clamp(1, 1_000_000_000)
            .max(self.config.sample_size as u64);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            black_box(routine(input));
            self.total = Duration::from_nanos(1);
            self.iters = 1;
            return;
        }
        // Setup is excluded from timing by timing each call individually.
        let warm_start = Instant::now();
        let mut timed = Duration::ZERO;
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            timed += t.elapsed();
            warm_iters += 1;
        }
        let est = (timed.as_secs_f64() / warm_iters as f64).max(1e-9);
        let target = (self.config.measurement_time.as_secs_f64() / est) as u64;
        let iters = target
            .clamp(1, 1_000_000_000)
            .max(self.config.sample_size as u64);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.total = total;
        self.iters = iters;
    }
}

/// Builds a group-runner function from bench target functions. Supports
/// both the positional and the `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let r = c.take_results();
        assert_eq!(r.len(), 1);
        assert!(r[0].ns_per_iter > 0.0);
        assert!(r[0].iters >= 1);
    }

    #[test]
    fn groups_prefix_ids_and_filter_applies() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.filter = Some("keep".into());
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(10));
            g.bench_function("keep_me", |b| b.iter(|| 1 + 1));
            g.bench_function("skip_me", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        let r = c.take_results();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, "grp/keep_me");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        assert_eq!(c.take_results().len(), 1);
    }
}
