//! Failure drill: an engine dies mid-window — what survives?
//!
//! Archives a forecast twice, once with unreplicated (`S1`) arrays and
//! once with two-way replication (`RP2`), kills a DAOS engine, and runs
//! product generation against the degraded cluster. Also prints the
//! engine utilization report and a bandwidth timeline, showing the
//! simulator's observability surface.
//!
//! ```text
//! cargo run --release --example failure_drill
//! ```

use std::rc::Rc;

use daosim::cluster::{rebuild_engine, ClusterSpec, Deployment, SimClient};
use daosim::core::fieldio::{FieldIoConfig, FieldIoError, FieldStore};
use daosim::core::key::FieldKey;
use daosim::core::metrics::{bandwidth_timeline, EventKind, Recorder};
use daosim::core::workload::payload;
use daosim::kernel::sync::WaitGroup;
use daosim::kernel::{Sim, SimDuration};
use daosim::objstore::{DaosError, ObjectClass};

const MIB: u64 = 1024 * 1024;
const PROCS: u32 = 16;
const FIELDS_PER_PROC: u32 = 24;

fn key(proc_id: u32, n: u32) -> FieldKey {
    FieldKey::from_pairs([
        ("class", "od".to_string()),
        ("date", "20290101".to_string()),
        ("expver", "0001".to_string()),
        ("number", proc_id.to_string()),
        ("field", n.to_string()),
    ])
}

/// Surviving an engine loss needs the whole lookup chain replicated:
/// replicating only the arrays leaves the index Key-Values as single
/// points of failure, so the RP2 drill replicates both.
fn fieldio_cfg(array_class: ObjectClass) -> FieldIoConfig {
    FieldIoConfig {
        array_class,
        kv_class: if array_class == ObjectClass::RP2 {
            ObjectClass::RP2
        } else {
            FieldIoConfig::default().kv_class
        },
        ..Default::default()
    }
}

/// Returns (fields read OK, fields lost, read bandwidth timeline note).
fn drill(array_class: ObjectClass) -> (u32, u32) {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 2));
    let data = payload(MIB, 1);
    let rec = Recorder::new();
    let wg = WaitGroup::new();

    // Archive phase.
    for p in 0..PROCS {
        let (d, data, token) = (Rc::clone(&d), data.clone(), wg.add());
        sim.spawn(async move {
            let client = SimClient::for_process(&d, (p % 2) as u16, p / 2);
            let fs = FieldStore::connect(client, fieldio_cfg(array_class), p + 1)
                .await
                .unwrap();
            for n in 0..FIELDS_PER_PROC {
                fs.write_field(&key(p, n), data.clone()).await.unwrap();
            }
            drop(token);
        });
    }

    // Orchestrator: once archiving completes, kill an engine and read.
    let (ok, lost): (Rc<std::cell::Cell<u32>>, Rc<std::cell::Cell<u32>>) = Default::default();
    {
        let (d, wg, sim2, rec) = (Rc::clone(&d), wg.clone(), sim.clone(), rec.clone());
        let (ok, lost) = (Rc::clone(&ok), Rc::clone(&lost));
        sim.spawn(async move {
            wg.wait().await;
            d.kill_engine(0);
            sim2.sleep(SimDuration::from_millis(1)).await;
            let readers = WaitGroup::new();
            for p in 0..PROCS {
                let (d, sim3, rec, token) =
                    (Rc::clone(&d), sim2.clone(), rec.clone(), readers.add());
                let (ok, lost) = (Rc::clone(&ok), Rc::clone(&lost));
                sim2.spawn(async move {
                    let client = SimClient::for_process(&d, (p % 2) as u16, p / 2);
                    let fs = FieldStore::connect(client, fieldio_cfg(array_class), 1000 + p)
                        .await
                        .unwrap();
                    for n in 0..FIELDS_PER_PROC {
                        rec.record(0, p, n, EventKind::IoStart, sim3.now(), 0);
                        match fs.read_field(&key(p, n)).await {
                            Ok(field) => {
                                rec.record(
                                    0,
                                    p,
                                    n,
                                    EventKind::IoEnd,
                                    sim3.now(),
                                    field.len() as u64,
                                );
                                ok.set(ok.get() + 1);
                            }
                            Err(FieldIoError::Daos {
                                source: DaosError::EngineUnavailable(_),
                                ..
                            }) => {
                                lost.set(lost.get() + 1);
                            }
                            Err(e) => panic!("unexpected failure: {e}"),
                        }
                    }
                    drop(token);
                });
            }
            readers.wait().await;
        });
    }
    sim.run().expect_quiescent();

    if array_class == ObjectClass::RP2 {
        // Show the observability surface once, on the replicated run.
        println!("\nengine utilization (mean/max target busy fraction):");
        for (i, (mean, max)) in d.engine_utilization().iter().enumerate() {
            let state = if d.engines[i].is_alive() {
                "alive"
            } else {
                "DOWN"
            };
            println!("  engine {i} [{state}]: mean {mean:.2}, max {max:.2}");
        }
        let tl = bandwidth_timeline(&rec.take(), SimDuration::from_millis(50));
        println!("degraded read bandwidth over time (50 ms buckets):");
        for b in tl.iter().take(8) {
            let bar = "#".repeat((b.bw_gib * 4.0) as usize);
            println!(
                "  t+{:>4} ms {:>6.2} GiB/s {bar}",
                b.t_ns / 1_000_000,
                b.bw_gib
            );
        }
    }
    (ok.get(), lost.get())
}

/// Rebuild act: archive replicated, kill an engine, run rebuild, show
/// that write availability returns and how long the data movement took.
fn rebuild_act() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
    let data = payload(MIB, 2);
    {
        let (d, data) = (Rc::clone(&d), data.clone());
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, 0);
            let fs = FieldStore::connect(client, fieldio_cfg(ObjectClass::RP2), 1)
                .await
                .unwrap();
            for n in 0..64 {
                fs.write_field(&key(0, n), data.clone()).await.unwrap();
            }
            d.kill_engine(0);
            // Degraded: some re-writes are rejected (broken redundancy).
            let mut rejected = 0;
            for n in 0..64 {
                if fs.write_field(&key(0, n), data.clone()).await.is_err() {
                    rejected += 1;
                }
            }
            println!("\nrebuild act: engine 0 down; {rejected}/64 re-writes rejected degraded");
            let report = rebuild_engine(&d, 0)
                .await
                .expect("rebuild of killed engine");
            println!(
                "rebuild moved {} objects ({:.1} MiB) in {:.1} ms of simulated time",
                report.objects_moved,
                report.bytes_moved as f64 / MIB as f64,
                report.duration_secs * 1e3
            );
            for n in 0..64 {
                fs.write_field(&key(0, n), data.clone()).await.unwrap();
            }
            println!("all 64 re-writes succeed after rebuild — redundancy restored");
        });
    }
    sim.run().expect_quiescent();
}

fn main() {
    println!("failure drill: 1 dual-engine DAOS server node, engine 0 killed after archiving");
    let total = PROCS * FIELDS_PER_PROC;

    let (ok, lost) = drill(ObjectClass::S1);
    println!("\nS1  (no replication): {ok}/{total} fields readable, {lost} lost");
    assert!(lost > 0, "an engine loss must cost unreplicated fields");

    let (ok2, lost2) = drill(ObjectClass::RP2);
    println!("RP2 (2-way replicas): {ok2}/{total} fields readable, {lost2} lost");
    assert_eq!(lost2, 0, "replication must cover a single engine loss");

    println!("\nreplication turned a {lost}-field loss into zero.");

    rebuild_act();
}
