//! Will storage hold the time-critical window?
//!
//! Operational forecasting is paced: each step's fields appear on the
//! model's schedule and products must follow promptly. This example
//! synthesizes such a schedule, replays it *paced* against differently
//! sized DAOS deployments, and reports tardiness — how far behind
//! schedule operations complete. The smallest cluster falls behind; adding
//! a server node restores the window.
//!
//! ```text
//! cargo run --release --example time_critical_window
//! ```

use daosim::cluster::ClusterSpec;
use daosim::core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim::core::trace::{replay, Pacing, Trace};
use daosim::kernel::SimDuration;

const MIB: u64 = 1024 * 1024;

fn main() {
    // 32 I/O-server processes, 4 steps, 24 two-MiB fields per process per
    // step, a step every 250 ms: the window demands ~6 GiB/s sustained.
    let trace = Trace::synthesize_operational(32, 4, 24, 2 * MIB, SimDuration::from_millis(250));
    println!(
        "schedule: {} ops, {:.1} GiB written over {:.0} ms (needs ~6 GiB/s sustained)",
        trace.len(),
        trace.total_write_bytes() as f64 / (1u64 << 30) as f64,
        4.0 * 250.0
    );
    println!(
        "\n{:<22} {:>10} {:>10} {:>12} {:>12}",
        "deployment", "write GiB/s", "read GiB/s", "mean late ms", "max late ms"
    );

    let mut previous_max = f64::INFINITY;
    for (label, spec) in [
        ("1 server, 1 engine", {
            let mut s = ClusterSpec::tcp(1, 2);
            s.engines_per_node = 1;
            s
        }),
        ("1 server, 2 engines", ClusterSpec::tcp(1, 2)),
        ("2 servers", ClusterSpec::tcp(2, 2)),
    ] {
        let r = replay(
            spec,
            FieldIoConfig::builder()
                .mode(FieldIoMode::NoContainers)
                .build(),
            &trace,
            Pacing::Paced,
        );
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>12.2} {:>12.2}",
            label,
            r.writes.global_bw_gib,
            r.reads.global_bw_gib,
            r.mean_tardiness_ms,
            r.max_tardiness_ms
        );
        assert!(
            r.max_tardiness_ms <= previous_max * 1.05,
            "bigger deployments must not be later"
        );
        previous_max = r.max_tardiness_ms;
    }

    // The same trace replayed as-fast gives the classic benchmark number.
    let fast = replay(
        ClusterSpec::tcp(2, 2),
        FieldIoConfig::builder()
            .mode(FieldIoMode::NoContainers)
            .build(),
        &trace,
        Pacing::AsFast,
    );
    println!(
        "\nas-fast replay on 2 servers: {:.2} GiB/s write, {:.2} GiB/s read \
         ({:.0} ms total vs the 1000 ms window)",
        fast.writes.global_bw_gib,
        fast.reads.global_bw_gib,
        fast.end_secs * 1e3
    );
}
