//! Object size and class tuning — the Fig. 6 question in miniature.
//!
//! "As we move towards higher resolution data in the future, scaling will
//! improve rather than deteriorate": sweeping field size shows per-field
//! index costs amortising, and the striping class trade-off appears once
//! fields span multiple chunks.
//!
//! ```text
//! cargo run --release --example object_size_tuning
//! ```

use daosim::cluster::ClusterSpec;
use daosim::core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim::core::patterns::{run_pattern_a, PatternConfig};
use daosim::core::workload::Contention;
use daosim::objstore::ObjectClass;

const MIB: u64 = 1024 * 1024;

fn main() {
    println!("field I/O full mode, high contention, 2 server / 4 client nodes");
    println!(
        "{:<6} {:>9} {:>12} {:>12}",
        "class", "size MiB", "write GiB/s", "read GiB/s"
    );
    let mut best: (f64, String) = (0.0, String::new());
    for class in [ObjectClass::S1, ObjectClass::S2, ObjectClass::SX] {
        for size_mib in [1u64, 5, 10, 20] {
            let mut fieldio = FieldIoConfig::builder().mode(FieldIoMode::Full).build();
            fieldio.array_class = class;
            fieldio.kv_class = class;
            let cfg = PatternConfig {
                cluster: ClusterSpec::tcp(2, 4),
                fieldio,
                contention: Contention::High,
                procs_per_node: 16,
                ops_per_proc: (60 / size_mib as u32).max(6),
                field_bytes: size_mib * MIB,
                verify: true,
            };
            let r = run_pattern_a(&cfg);
            println!(
                "{:<6} {:>9} {:>12.2} {:>12.2}",
                class.name(),
                size_mib,
                r.write.global_bw_gib,
                r.read.global_bw_gib
            );
            let agg = r.aggregate_gib();
            if agg > best.0 {
                best = (agg, format!("{} at {size_mib} MiB", class.name()));
            }
        }
    }
    println!();
    println!(
        "best aggregate configuration: {} ({:.2} GiB/s)",
        best.1, best.0
    );
    println!("1 MiB fields pay the per-field contention/index cost in full;");
    println!("5-10 MiB fields amortise it — higher resolution scales better.");
}
