//! Quickstart: use the embedded object store as a weather-field archive.
//!
//! Runs entirely in-process and instantaneously — no simulation involved.
//! This is the "FDB5 semantics" path a downstream tool would embed:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use daosim::bytes::Bytes;
use daosim::core::fieldio::{FieldIoConfig, FieldStore};
use daosim::core::key::FieldKey;
use daosim::kernel::Sim;
use daosim::objstore::{DaosStore, EmbeddedClient};

fn main() {
    // A 24-target pool, like two DAOS engines' worth of storage.
    let (_store, pool) = DaosStore::with_single_pool(24);
    let client = EmbeddedClient::new(pool.clone());

    // The embedded backend completes operations immediately, but the API
    // is async (the simulated backend suspends); drive it with the
    // deterministic executor.
    let sim = Sim::new();
    sim.block_on(async move {
        let fs = FieldStore::connect(client, FieldIoConfig::default(), 1)
            .await
            .expect("connect");

        // Archive a few fields of one forecast: 2D slices of temperature
        // and wind at several pressure levels.
        let mut archived = 0u32;
        for param in ["t", "u", "v"] {
            for level in [1000u32, 850, 500, 250] {
                for step in [0u32, 24, 48] {
                    let key = field_key(param, level, step);
                    let data = synthetic_field(param, level, step);
                    fs.write_field(&key, data).await.expect("write");
                    archived += 1;
                }
            }
        }
        println!("archived {archived} fields");

        // Retrieve one field by key.
        let key = field_key("t", 500, 24);
        let field = fs.read_field(&key).await.expect("read");
        println!("read back {} ({} bytes)", key, field.len());
        assert_eq!(field, synthetic_field("t", 500, 24));

        // List everything indexed for the forecast.
        let listed = fs.list_fields(&key).await.expect("list");
        println!(
            "forecast holds {} fields; first: {}",
            listed.len(),
            listed[0]
        );
        assert_eq!(listed.len(), archived as usize);

        // Re-writing a key re-points the index to a fresh Array; the read
        // returns the latest version.
        fs.write_field(&key, Bytes::from_static(b"amended analysis"))
            .await
            .expect("re-write");
        let amended = fs.read_field(&key).await.expect("read amended");
        println!(
            "after re-write: {:?}",
            std::str::from_utf8(&amended).unwrap()
        );
    });

    println!(
        "pool now holds {} containers, {} bytes charged",
        pool.cont_count(),
        pool.used()
    );
}

fn field_key(param: &str, level: u32, step: u32) -> FieldKey {
    FieldKey::from_pairs([
        ("class", "od".to_string()),
        ("stream", "oper".to_string()),
        ("expver", "0001".to_string()),
        ("date", "20290101".to_string()),
        ("time", "0000".to_string()),
        ("param", param.to_string()),
        ("levelist", level.to_string()),
        ("step", step.to_string()),
    ])
}

/// A recognisable fake GRIB payload.
fn synthetic_field(param: &str, level: u32, step: u32) -> Bytes {
    let header = format!("GRIB:{param}:{level}:{step}:");
    let mut v = header.into_bytes();
    v.resize(64 * 1024, 0xAB);
    Bytes::from(v)
}
