//! A miniature operational NWP cycle on the simulated DAOS cluster.
//!
//! Mirrors the workflow from the paper's introduction: the model's I/O
//! servers write each forecast step's fields to the object store while
//! product-generation tasks read the *previous* step's fields to derive
//! products — writes and reads of the same dataset overlapping in time,
//! exactly the workload access pattern B abstracts.
//!
//! ```text
//! cargo run --release --example nwp_operational_cycle
//! ```

use std::rc::Rc;

use daosim::cluster::{ClusterSpec, Deployment, SimClient};
use daosim::core::fieldio::{FieldIoConfig, FieldStore};
use daosim::core::key::FieldKey;
use daosim::core::metrics::{EventKind, Recorder};
use daosim::core::workload::payload;
use daosim::kernel::sync::channel;
use daosim::kernel::Sim;
use daosim::net::GIB;

const MIB: u64 = 1024 * 1024;
const STEPS: u32 = 4; // forecast steps in the window
const IOSERVERS_PER_NODE: u32 = 8;
const FIELDS_PER_SERVER_PER_STEP: u32 = 24;
const FIELD_BYTES: u64 = 2 * MIB;

fn key(step: u32, ioserver: u32, n: u32) -> FieldKey {
    FieldKey::from_pairs([
        ("class", "od".to_string()),
        ("stream", "oper".to_string()),
        ("expver", "0001".to_string()),
        ("date", "20290101".to_string()),
        ("time", "0000".to_string()),
        ("number", ioserver.to_string()), // per-I/O-server forecast index
        ("step", step.to_string()),
        ("field", n.to_string()),
    ])
}

fn main() {
    let sim = Sim::new();
    // 2 dual-engine DAOS server nodes, 4 client nodes (half run I/O
    // servers, half run product generation).
    let spec = ClusterSpec::tcp(2, 4);
    let d = Deployment::new(&sim, spec);
    let writers = 2 * IOSERVERS_PER_NODE;
    let readers = 2 * IOSERVERS_PER_NODE;
    let data = payload(FIELD_BYTES, 99);
    let write_rec = Recorder::new();
    let read_rec = Recorder::new();

    // Step completion fan-out: writers announce finished steps; product
    // generation starts reading a step once every writer finished it.
    let (step_tx, mut step_rx) = channel::<u32>();

    for w in 0..writers {
        let (d, data, rec, tx, sim2) = (
            Rc::clone(&d),
            data.clone(),
            write_rec.clone(),
            step_tx.clone(),
            sim.clone(),
        );
        sim.spawn(async move {
            let client =
                SimClient::for_process(&d, (w / IOSERVERS_PER_NODE) as u16, w % IOSERVERS_PER_NODE);
            let fs = FieldStore::connect(client, FieldIoConfig::default(), w + 1)
                .await
                .expect("connect");
            for step in 0..STEPS {
                for n in 0..FIELDS_PER_SERVER_PER_STEP {
                    let k = key(step, w, n);
                    rec.record(0, w, step, EventKind::IoStart, sim2.now(), 0);
                    fs.write_field(&k, data.clone()).await.expect("write");
                    rec.record(0, w, step, EventKind::IoEnd, sim2.now(), FIELD_BYTES);
                }
                tx.send(step);
            }
        });
    }
    drop(step_tx);

    // Product generation: one coordinator watches step completions and
    // dispatches reader tasks per completed step.
    {
        let (d, rec, sim2) = (Rc::clone(&d), read_rec.clone(), sim.clone());
        sim.spawn(async move {
            let mut finished = vec![0u32; STEPS as usize];
            while let Some(step) = step_rx.recv().await {
                finished[step as usize] += 1;
                if finished[step as usize] == writers {
                    // Step complete on all I/O servers: read it back for
                    // product generation, one reader per source server.
                    for r in 0..readers {
                        let (d, rec, sim3) = (Rc::clone(&d), rec.clone(), sim2.clone());
                        sim2.spawn(async move {
                            let client = SimClient::for_process(
                                &d,
                                (2 + r / IOSERVERS_PER_NODE) as u16,
                                r % IOSERVERS_PER_NODE,
                            );
                            let fs =
                                FieldStore::connect(client, FieldIoConfig::default(), 1000 + r)
                                    .await
                                    .expect("connect");
                            for n in 0..FIELDS_PER_SERVER_PER_STEP {
                                let k = key(step, r, n);
                                rec.record(1, r, step, EventKind::IoStart, sim3.now(), 0);
                                let field = fs.read_field(&k).await.expect("read");
                                rec.record(
                                    1,
                                    r,
                                    step,
                                    EventKind::IoEnd,
                                    sim3.now(),
                                    field.len() as u64,
                                );
                            }
                        });
                    }
                }
            }
        });
    }

    let end = sim.run().expect_quiescent();

    let writes = write_rec.take();
    let reads = read_rec.take();
    let wrote: u64 = writes
        .iter()
        .filter(|e| e.kind == EventKind::IoEnd)
        .map(|e| e.bytes)
        .sum();
    let read: u64 = reads
        .iter()
        .filter(|e| e.kind == EventKind::IoEnd)
        .map(|e| e.bytes)
        .sum();
    let w_bw = daosim::core::metrics::global_timing_bandwidth(&writes).unwrap_or(0.0);
    let r_bw = daosim::core::metrics::global_timing_bandwidth(&reads).unwrap_or(0.0);

    println!("time-critical window simulated: {:.3} s", end.as_secs_f64());
    println!(
        "model output : {:.1} GiB across {} fields, {:.2} GiB/s global timing bandwidth",
        wrote as f64 / GIB,
        writes.len() / 2,
        w_bw
    );
    println!(
        "product reads: {:.1} GiB across {} fields, {:.2} GiB/s global timing bandwidth",
        read as f64 / GIB,
        reads.len() / 2,
        r_bw
    );
    println!("aggregate application throughput: {:.2} GiB/s", w_bw + r_bw);
    assert_eq!(wrote, read, "every field written must be read back");
}
