//! A miniature archive tool: MARS-style requests plus durable snapshots.
//!
//! Stages a batch of fields named by a request, persists the pool to a
//! snapshot file, reloads it as a fresh store, and serves a retrieval —
//! the full life cycle of an embedded field archive.
//!
//! ```text
//! cargo run --release --example archive_tool [snapshot-path]
//! ```

use daosim::bytes::Bytes;
use daosim::core::fieldio::{FieldIoConfig, FieldStore};
use daosim::core::request::{archive_all, retrieve, Request};
use daosim::kernel::Sim;
use daosim::objstore::{load_pool, save_pool, DaosStore, EmbeddedClient};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/daosim-archive.snap".to_string());

    // ---- stage 1: archive a request expansion --------------------------
    let (_store, pool) = DaosStore::with_single_pool(24);
    let mut req = Request::new();
    req.set("class", ["od"])
        .set("date", ["20290101"])
        .set("expver", ["0001"])
        .set("param", ["t", "u", "v", "q"])
        .set("levelist", ["1000", "850", "500", "250"])
        .set("step", ["0", "24", "48"]);
    println!("request names {} fields", req.cardinality());

    let sim = Sim::new();
    let pool2 = pool.clone();
    sim.block_on(async move {
        let fs = FieldStore::connect(EmbeddedClient::new(pool2), FieldIoConfig::default(), 1)
            .await
            .unwrap();
        let n = archive_all(&fs, &req, |key| {
            let mut v = format!("GRIB {key}").into_bytes();
            v.resize(128 * 1024, 0);
            Bytes::from(v)
        })
        .await
        .unwrap();
        println!(
            "archived {n} fields ({} containers)",
            fs.client().pool().cont_count()
        );
    });

    // ---- stage 2: persist ------------------------------------------------
    let mut f = std::fs::File::create(&path).expect("create snapshot");
    save_pool(&pool, &mut f).expect("save snapshot");
    let size = std::fs::metadata(&path).unwrap().len();
    println!("snapshot written: {path} ({size} bytes)");

    // ---- stage 3: reload and retrieve -------------------------------------
    let mut f = std::fs::File::open(&path).expect("open snapshot");
    let restored = load_pool(&mut f).expect("load snapshot");
    println!(
        "restored pool: {} containers, {} bytes used",
        restored.cont_count(),
        restored.used()
    );

    let sim = Sim::new();
    sim.block_on(async move {
        let fs = FieldStore::connect(EmbeddedClient::new(restored), FieldIoConfig::default(), 2)
            .await
            .unwrap();
        let q = Request::parse(
            "class=od,date=20290101,expver=0001,param=t/v,levelist=500,step=0/24/48",
        )
        .unwrap();
        let got = retrieve(&fs, &q).await.unwrap();
        println!(
            "retrieved {} fields ({} bytes), {} missing",
            got.fields.len(),
            got.total_bytes(),
            got.missing.len()
        );
        assert!(got.is_complete());
        for (key, data) in got.fields.iter().take(3) {
            let header = std::str::from_utf8(&data[..40]).unwrap_or("?");
            println!("  {key} -> {header}...");
        }
    });

    let _ = std::fs::remove_file(&path);
}
