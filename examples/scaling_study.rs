//! Scaling study: how field I/O bandwidth grows with DAOS server nodes.
//!
//! A small Fig. 4/5-style sweep you can run in seconds: access pattern A
//! with each field I/O mode over 1-4 server nodes, low contention.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use daosim::cluster::ClusterSpec;
use daosim::core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim::core::patterns::{run_pattern_a, PatternConfig};
use daosim::core::workload::Contention;

const MIB: u64 = 1024 * 1024;

fn main() {
    println!("access pattern A (unique writes then unique reads), low contention");
    println!(
        "{:<14} {:>7} {:>12} {:>12} {:>12}",
        "mode", "servers", "write GiB/s", "read GiB/s", "agg/engine"
    );
    for mode in FieldIoMode::all() {
        for servers in [1u16, 2, 4] {
            let cfg = PatternConfig {
                cluster: ClusterSpec::tcp(servers, servers * 2),
                fieldio: FieldIoConfig::builder().mode(mode).build(),
                contention: Contention::Low,
                procs_per_node: 16,
                ops_per_proc: 40,
                field_bytes: MIB,
                verify: true,
            };
            let r = run_pattern_a(&cfg);
            let engines = servers as f64 * 2.0;
            println!(
                "{:<14} {:>7} {:>12.2} {:>12.2} {:>12.2}",
                mode.name(),
                servers,
                r.write.global_bw_gib,
                r.read.global_bw_gib,
                r.aggregate_gib() / engines
            );
        }
    }
    println!();
    println!("expected: bandwidth grows nearly linearly with server nodes;");
    println!("the full mode trails once the pool holds many containers.");
}
