//! # daosim — umbrella crate
//!
//! Re-exports the full public API of the workspace. See the README for a
//! guided tour; the crate-level docs of each member go deeper:
//!
//! * [`kernel`] — deterministic discrete-event simulation kernel,
//! * [`net`] — flow-level fabric model (TCP/PSM2 provider profiles),
//! * [`media`] — Optane DCPMM timing model,
//! * [`objstore`] — embeddable object store with DAOS semantics,
//! * [`cluster`] — the simulated DAOS cluster (engines, targets, RPCs),
//! * [`core`] — weather-field keys, the field I/O functions (the paper's
//!   contribution), metrics and access patterns,
//! * [`ior`] — the IOR segments-mode benchmark.

pub use bytes;
pub use daosim_cluster as cluster;
pub use daosim_core as core;
pub use daosim_ior as ior;
pub use daosim_kernel as kernel;
pub use daosim_media as media;
pub use daosim_net as net;
pub use daosim_objstore as objstore;
