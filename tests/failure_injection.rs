//! Failure injection: engine loss during field I/O workloads.

use daosim::bytes::Bytes;
use daosim::cluster::{ClusterSpec, Deployment, SimClient};
use daosim::core::fieldio::{FieldIoConfig, FieldIoError, FieldIoMode, FieldStore};
use daosim::core::key::FieldKey;
use daosim::kernel::{Sim, SimDuration};
use daosim::objstore::DaosError;
use std::cell::Cell;
use std::rc::Rc;

fn key(n: u32) -> FieldKey {
    FieldKey::from_pairs([
        ("class", "od".to_string()),
        ("date", "20290101".to_string()),
        ("expver", "0001".to_string()),
        ("param", "t".to_string()),
        ("step", n.to_string()),
    ])
}

#[test]
fn writes_fail_cleanly_when_all_engines_die() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let failures: Rc<Cell<u32>> = Rc::default();
    let (d2, f2) = (Rc::clone(&d), Rc::clone(&failures));
    sim.spawn(async move {
        let client = SimClient::for_process(&d2, 0, 0);
        let fs = FieldStore::connect(client, FieldIoConfig::default(), 1)
            .await
            .unwrap();
        fs.write_field(&key(0), Bytes::from_static(b"before"))
            .await
            .unwrap();
        d2.kill_engine(0);
        d2.kill_engine(1);
        for n in 1..5 {
            match fs.write_field(&key(n), Bytes::from_static(b"during")).await {
                Err(FieldIoError::Daos {
                    source: DaosError::EngineUnavailable(_),
                    ..
                }) => f2.set(f2.get() + 1),
                other => panic!("expected EngineUnavailable, got {other:?}"),
            }
        }
        d2.revive_engine(0);
        d2.revive_engine(1);
        fs.write_field(&key(9), Bytes::from_static(b"after"))
            .await
            .unwrap();
        assert_eq!(fs.read_field(&key(9)).await.unwrap().as_ref(), b"after");
        // The pre-failure field survived.
        assert_eq!(fs.read_field(&key(0)).await.unwrap().as_ref(), b"before");
    });
    sim.run().expect_quiescent();
    assert_eq!(failures.get(), 4);
}

#[test]
fn single_engine_loss_fails_only_objects_it_owns() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
    let (ok, failed): (Rc<Cell<u32>>, Rc<Cell<u32>>) = Default::default();
    let (d2, ok2, failed2) = (Rc::clone(&d), Rc::clone(&ok), Rc::clone(&failed));
    sim.spawn(async move {
        let client = SimClient::for_process(&d2, 0, 0);
        // no-index mode: placement is a pure function of the key, so some
        // fields land on the dead engine and some do not.
        let fs = FieldStore::connect(
            client,
            FieldIoConfig::builder().mode(FieldIoMode::NoIndex).build(),
            1,
        )
        .await
        .unwrap();
        d2.kill_engine(0);
        for n in 0..64 {
            match fs.write_field(&key(n), Bytes::from_static(b"x")).await {
                Ok(()) => ok2.set(ok2.get() + 1),
                Err(FieldIoError::Daos {
                    source: DaosError::EngineUnavailable(0),
                    ..
                }) => failed2.set(failed2.get() + 1),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    });
    sim.run().expect_quiescent();
    // 4 engines, one dead: roughly a quarter of placements fail.
    assert!(
        ok.get() > 0 && failed.get() > 0,
        "ok={:?} failed={:?}",
        ok,
        failed
    );
    assert!(failed.get() < 40, "too many failures: {}", failed.get());
}

#[test]
fn reader_blocked_behind_failed_writer_phase_still_progresses() {
    // A reader polling for a field that a (dead-engine) writer could not
    // produce: the read fails with FieldNotFound rather than hanging.
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let outcome: Rc<Cell<u8>> = Rc::default();
    let (d2, o2, sim2) = (Rc::clone(&d), Rc::clone(&outcome), sim.clone());
    sim.spawn(async move {
        let client = SimClient::for_process(&d2, 0, 0);
        let fs = FieldStore::connect(client, FieldIoConfig::default(), 1)
            .await
            .unwrap();
        d2.kill_engine(0);
        d2.kill_engine(1);
        let writer_result = fs.write_field(&key(1), Bytes::from_static(b"x")).await;
        assert!(writer_result.is_err());
        d2.revive_engine(0);
        d2.revive_engine(1);
        sim2.sleep(SimDuration::from_millis(1)).await;
        match fs.read_field(&key(1)).await {
            Err(FieldIoError::FieldNotFound(_)) => o2.set(1),
            other => panic!("expected FieldNotFound, got {other:?}"),
        }
    });
    sim.run().expect_quiescent();
    assert_eq!(outcome.get(), 1);
}
