//! Property-based backend equivalence for the event-queue API.
//!
//! The embedded store completes every launched operation inline; the
//! simulated cluster runs each as its own kernel task with real latency.
//! Completion *order* therefore differs, but the outcome attached to each
//! event — identified by its launch-order id — and the final store state
//! must be identical for any interleaving of launches, polls and waits.
//! Likewise `kv_put_multi` must be indistinguishable from the equivalent
//! sequence of `kv_put`s on both backends.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use daosim::bytes::Bytes;
use daosim::cluster::{ClusterSpec, Deployment, SimClient};
use daosim::kernel::Sim;
use daosim::objstore::{
    DaosApi, DaosStore, EmbeddedClient, EventQueue, ObjectClass, OidAllocator, OpOutput, Uuid,
};
use proptest::prelude::*;

const KVS: u8 = 2;
const ARRAYS: u8 = 2;
const SETUP_KEYS: u8 = 6;
const SETUP_BYTES: u64 = 4096;
/// EQ-phase array writes land above the setup region, one disjoint slot
/// per op index, so read results never depend on completion order.
const WRITE_BASE: u64 = 8192;
const WRITE_SLOT: u64 = 512;

#[derive(Debug, Clone)]
enum EqOp {
    /// `kv_put` to a key unique to this op index (no read races).
    KvPut { kv: u8, val: u8 },
    /// `kv_get` of a setup-phase key.
    KvGet { kv: u8, key: u8 },
    /// `kv_put_multi` of `n` keys unique to this op index.
    KvPutMulti { kv: u8, n: u8, val: u8 },
    /// `array_write` into this op's private slot.
    ArrWrite { arr: u8, len: u16, val: u8 },
    /// `array_read` within the setup-populated region.
    ArrRead { arr: u8, off: u16, len: u16 },
    /// Harvest at most one completion without blocking.
    Poll,
    /// Block for one completion (no-op when idle).
    Wait,
    /// Drain the queue.
    WaitAll,
}

fn eq_op() -> impl Strategy<Value = EqOp> {
    prop_oneof![
        (0..KVS, any::<u8>()).prop_map(|(kv, val)| EqOp::KvPut { kv, val }),
        (0..KVS, 0..SETUP_KEYS).prop_map(|(kv, key)| EqOp::KvGet { kv, key }),
        (0..KVS, 1u8..5, any::<u8>()).prop_map(|(kv, n, val)| EqOp::KvPutMulti { kv, n, val }),
        (0..ARRAYS, 1u16..512, any::<u8>()).prop_map(|(arr, len, val)| EqOp::ArrWrite {
            arr,
            len,
            val
        }),
        (0..ARRAYS, 0u16..3584, 1u16..512).prop_map(|(arr, off, len)| EqOp::ArrRead {
            arr,
            off,
            len
        }),
        Just(EqOp::Poll),
        Just(EqOp::Wait),
        Just(EqOp::WaitAll),
    ]
}

fn describe(out: &Result<OpOutput, daosim::objstore::DaosError>) -> String {
    match out {
        Ok(OpOutput::Unit) => "unit".into(),
        Ok(OpOutput::Data(b)) => format!("data:{:02x?}", &b[..]),
        Ok(OpOutput::MaybeData(v)) => format!("maybe:{:02x?}", v.as_deref()),
        Ok(OpOutput::Keys(k)) => {
            let mut k: Vec<&[u8]> = k.iter().map(|b| &b[..]).collect();
            k.sort();
            format!("keys:{k:02x?}")
        }
        Ok(OpOutput::Size(n)) => format!("size:{n}"),
        Err(e) => format!("err:{e:?}"),
    }
}

/// Runs the EQ program and returns (event id -> outcome, final KV state).
async fn run_program<D: DaosApi>(client: D, ops: Vec<EqOp>) -> (BTreeMap<u64, String>, String) {
    let cont = client
        .cont_open_or_create(Uuid::from_name(b"eq-prop"))
        .await
        .expect("cont");
    let mut alloc = OidAllocator::new(11);
    let kv_oids: Vec<_> = (0..KVS).map(|_| alloc.next(ObjectClass::S1)).collect();
    let arr_oids: Vec<_> = (0..ARRAYS).map(|_| alloc.next(ObjectClass::S1)).collect();

    // Setup phase: synchronous, identical on both backends.
    for (i, &oid) in kv_oids.iter().enumerate() {
        for k in 0..SETUP_KEYS {
            let val = Bytes::from(vec![i as u8 ^ k; 16]);
            client
                .kv_put(&cont, oid, &[k], val)
                .await
                .expect("setup put");
        }
    }
    let mut handles = Vec::new();
    for &oid in &arr_oids {
        let h = client.array_create(&cont, oid).await.expect("setup create");
        let pattern = Bytes::from((0..SETUP_BYTES).map(|b| b as u8).collect::<Vec<u8>>());
        client
            .array_write(&cont, &h, 0, pattern)
            .await
            .expect("setup write");
        handles.push(h);
    }

    // EQ phase: the generated interleaving of launches and harvests.
    let eq = EventQueue::new(client.clone());
    let mut harvested: BTreeMap<u64, String> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        let slot = i as u64;
        match op {
            EqOp::KvPut { kv, val } => {
                let key = [0xF0, slot as u8, (slot >> 8) as u8];
                let value = Bytes::from(vec![*val; 8]);
                eq.kv_put(&cont, kv_oids[*kv as usize], &key, value);
            }
            EqOp::KvGet { kv, key } => {
                eq.kv_get(&cont, kv_oids[*kv as usize], &[*key]);
            }
            EqOp::KvPutMulti { kv, n, val } => {
                let pairs = (0..*n)
                    .map(|j| {
                        let key = Bytes::from(vec![0xE0, slot as u8, (slot >> 8) as u8, j]);
                        (key, Bytes::from(vec![val.wrapping_add(j); 8]))
                    })
                    .collect();
                eq.kv_put_multi(&cont, kv_oids[*kv as usize], pairs);
            }
            EqOp::ArrWrite { arr, len, val } => {
                let data = Bytes::from(vec![*val; *len as usize]);
                let off = WRITE_BASE + slot * WRITE_SLOT;
                eq.array_write(&cont, &handles[*arr as usize], off, data);
            }
            EqOp::ArrRead { arr, off, len } => {
                let len = (*len as u64).min(SETUP_BYTES - *off as u64);
                eq.array_read(&cont, &handles[*arr as usize], *off as u64, len);
            }
            EqOp::Poll => {
                if let Some((ev, r)) = eq.poll() {
                    harvested.insert(ev.0, describe(&r));
                }
            }
            EqOp::Wait => {
                if let Some((ev, r)) = eq.wait().await {
                    harvested.insert(ev.0, describe(&r));
                }
            }
            EqOp::WaitAll => {
                for (ev, r) in eq.wait_all().await {
                    harvested.insert(ev.0, describe(&r));
                }
            }
        }
    }
    for (ev, r) in eq.wait_all().await {
        harvested.insert(ev.0, describe(&r));
    }

    // Final state: every KV key (sorted) with its value.
    let mut state = String::new();
    for &oid in &kv_oids {
        let mut keys = client.kv_list_keys(&cont, oid).await.expect("list");
        keys.sort();
        for key in keys {
            let v = client.kv_get(&cont, oid, &key).await.expect("get");
            state.push_str(&format!("{:02x?}={:02x?};", &key[..], v.as_deref()));
        }
    }
    for h in handles {
        state.push_str(&format!(
            "size={};",
            client.array_size(&cont, &h).await.expect("size")
        ));
        client.array_close(&cont, h).await.expect("close");
    }
    (harvested, state)
}

type ProgramResult = (BTreeMap<u64, String>, String);

fn on_embedded(ops: Vec<EqOp>) -> ProgramResult {
    let (_s, pool) = DaosStore::with_single_pool(48);
    let client = EmbeddedClient::new(pool);
    let out: Rc<RefCell<Option<ProgramResult>>> = Rc::default();
    let out2 = Rc::clone(&out);
    Sim::new().block_on(async move {
        *out2.borrow_mut() = Some(run_program(client, ops).await);
    });
    Rc::try_unwrap(out).unwrap().into_inner().unwrap()
}

fn on_simulated(ops: Vec<EqOp>) -> ProgramResult {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let client = SimClient::for_process(&d, 0, 0);
    let out: Rc<RefCell<Option<ProgramResult>>> = Rc::default();
    let out2 = Rc::clone(&out);
    sim.spawn(async move {
        *out2.borrow_mut() = Some(run_program(client, ops).await);
    });
    sim.run().expect_quiescent();
    Rc::try_unwrap(out).unwrap().into_inner().unwrap()
}

/// Applies `pairs` to one KV object, batched or one by one, and returns
/// the final sorted key -> value state.
async fn kv_state<D: DaosApi>(client: D, pairs: Vec<(u8, u8)>, batched: bool) -> String {
    let cont = client
        .cont_open_or_create(Uuid::from_name(b"eq-multi"))
        .await
        .expect("cont");
    let oid = OidAllocator::new(12).next(ObjectClass::S1);
    if batched {
        let pairs = pairs
            .iter()
            .map(|&(k, v)| (Bytes::from(vec![k]), Bytes::from(vec![v; 4])))
            .collect();
        client.kv_put_multi(&cont, oid, pairs).await.expect("multi");
    } else {
        for (k, v) in pairs {
            client
                .kv_put(&cont, oid, &[k], Bytes::from(vec![v; 4]))
                .await
                .expect("put");
        }
    }
    let mut keys = client.kv_list_keys(&cont, oid).await.expect("list");
    keys.sort();
    let mut state = String::new();
    for key in keys {
        let v = client.kv_get(&cont, oid, &key).await.expect("get");
        state.push_str(&format!("{:02x?}={:02x?};", &key[..], v.as_deref()));
    }
    state
}

fn kv_state_embedded(pairs: Vec<(u8, u8)>, batched: bool) -> String {
    let (_s, pool) = DaosStore::with_single_pool(48);
    let client = EmbeddedClient::new(pool);
    let out: Rc<RefCell<String>> = Rc::default();
    let out2 = Rc::clone(&out);
    Sim::new().block_on(async move {
        *out2.borrow_mut() = kv_state(client, pairs, batched).await;
    });
    Rc::try_unwrap(out).unwrap().into_inner()
}

fn kv_state_simulated(pairs: Vec<(u8, u8)>, batched: bool) -> String {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let client = SimClient::for_process(&d, 0, 0);
    let out: Rc<RefCell<String>> = Rc::default();
    let out2 = Rc::clone(&out);
    sim.spawn(async move {
        *out2.borrow_mut() = kv_state(client, pairs, batched).await;
    });
    sim.run().expect_quiescent();
    Rc::try_unwrap(out).unwrap().into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn backends_agree_on_random_eq_programs(
        ops in proptest::collection::vec(eq_op(), 1..24),
    ) {
        let (emb_events, emb_state) = on_embedded(ops.clone());
        let (sim_events, sim_state) = on_simulated(ops);
        prop_assert_eq!(emb_events, sim_events, "per-event outcomes diverged");
        prop_assert_eq!(emb_state, sim_state, "final store state diverged");
    }

    #[test]
    fn kv_put_multi_equals_sequential_puts(
        pairs in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..12),
    ) {
        let batched = kv_state_embedded(pairs.clone(), true);
        let sequential = kv_state_embedded(pairs.clone(), false);
        prop_assert_eq!(&batched, &sequential, "embedded: batch != sequence");
        let sim_batched = kv_state_simulated(pairs.clone(), true);
        let sim_sequential = kv_state_simulated(pairs, false);
        prop_assert_eq!(&sim_batched, &sim_sequential, "simulated: batch != sequence");
        prop_assert_eq!(&batched, &sim_batched, "backends diverged on batch");
    }
}
