//! The embedded store and the simulated cluster must agree on semantics:
//! the same field I/O program produces byte-identical results on both
//! backends — only the timing differs.

use daosim::bytes::Bytes;
use daosim::cluster::{ClusterSpec, Deployment, SimClient};
use daosim::core::fieldio::{FieldIoConfig, FieldIoError, FieldIoMode, FieldStore};
use daosim::core::key::FieldKey;
use daosim::kernel::Sim;
use daosim::objstore::{DaosApi, DaosStore, EmbeddedClient};
use std::cell::RefCell;
use std::rc::Rc;

fn key(step: u32, member: u32) -> FieldKey {
    FieldKey::from_pairs([
        ("class", "od".to_string()),
        ("date", "20290101".to_string()),
        ("time", "1200".to_string()),
        ("expver", "0001".to_string()),
        ("number", member.to_string()),
        ("param", "t".to_string()),
        ("step", step.to_string()),
    ])
}

fn field(step: u32, member: u32) -> Bytes {
    let mut v = format!("field-{member}-{step}:").into_bytes();
    v.resize(32 * 1024, (step + member) as u8);
    Bytes::from(v)
}

/// Runs the program against one backend and returns every read-back.
async fn program<D: DaosApi>(client: D, mode: FieldIoMode) -> Vec<(String, Bytes)> {
    let fs = FieldStore::connect(client, FieldIoConfig::builder().mode(mode).build(), 7)
        .await
        .expect("connect");
    // Write a grid of fields, re-write some of them, then read all back.
    for member in 0..3 {
        for step in [0u32, 6, 12] {
            fs.write_field(&key(step, member), field(step, member))
                .await
                .expect("write");
        }
    }
    for member in 0..3 {
        fs.write_field(&key(6, member), field(600, member))
            .await
            .expect("re-write");
    }
    let mut out = Vec::new();
    for member in 0..3 {
        for step in [0u32, 6, 12] {
            let data = fs.read_field(&key(step, member)).await.expect("read");
            out.push((key(step, member).canonical(), data));
        }
    }
    // Missing keys must fail identically.
    match fs.read_field(&key(99, 0)).await {
        Err(FieldIoError::FieldNotFound(_)) => {}
        other => panic!("expected FieldNotFound, got {other:?}"),
    }
    out
}

fn run_embedded(mode: FieldIoMode) -> Vec<(String, Bytes)> {
    let (_s, pool) = DaosStore::with_single_pool(48);
    let client = EmbeddedClient::new(pool);
    let out: Rc<RefCell<Vec<(String, Bytes)>>> = Rc::default();
    let out2 = Rc::clone(&out);
    let sim = Sim::new();
    sim.block_on(async move {
        *out2.borrow_mut() = program(client, mode).await;
    });
    Rc::try_unwrap(out).unwrap().into_inner()
}

fn run_simulated(mode: FieldIoMode) -> Vec<(String, Bytes)> {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let client = SimClient::for_process(&d, 0, 0);
    let out: Rc<RefCell<Vec<(String, Bytes)>>> = Rc::default();
    let out2 = Rc::clone(&out);
    sim.block_on(async move {
        *out2.borrow_mut() = program(client, mode).await;
    });
    Rc::try_unwrap(out).unwrap().into_inner()
}

#[test]
fn backends_agree_in_every_mode() {
    for mode in FieldIoMode::all() {
        let embedded = run_embedded(mode);
        let simulated = run_simulated(mode);
        assert_eq!(embedded.len(), simulated.len(), "mode {mode}");
        for ((ka, da), (kb, db)) in embedded.iter().zip(&simulated) {
            assert_eq!(ka, kb, "mode {mode}");
            assert_eq!(da, db, "mode {mode}: divergent data for {ka}");
        }
    }
}

#[test]
fn rewrites_visible_on_both_backends() {
    for mode in FieldIoMode::all() {
        for out in [run_embedded(mode), run_simulated(mode)] {
            for (k, data) in &out {
                if k.contains("step=6") {
                    assert!(
                        data.starts_with(b"field-") && data[..20].windows(4).any(|w| w == b"-600"),
                        "mode {mode}: {k} should hold the re-written version"
                    );
                }
            }
        }
    }
}

#[test]
fn simulated_run_takes_simulated_time() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let client = SimClient::for_process(&d, 0, 0);
    sim.spawn(async move {
        let _ = program(client, FieldIoMode::Full).await;
    });
    let end = sim.run().expect_quiescent();
    assert!(
        end.as_secs_f64() > 0.001,
        "cluster I/O must cost time: {end}"
    );
}
