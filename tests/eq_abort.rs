//! Event-queue destroy/abort semantics on the simulated backend.
//!
//! Regression suite for the EQ leak-on-drop bug: an `EventQueue` dropped
//! with in-flight simulated operations used to leave the spawned kernel
//! tasks running as orphans — their side effects still landed, their
//! completions piled up unharvested, and nothing could cancel them. The
//! queue now carries `daos_eq_destroy` semantics: dropping the last user
//! handle (or calling `abort`) wakes every in-flight operation, drops it
//! mid-flight, and resolves its event as `DaosError::Cancelled`.

use std::cell::RefCell;
use std::rc::Rc;

use daosim::bytes::Bytes;
use daosim::cluster::{ClusterSpec, Deployment, SimClient};
use daosim::kernel::Sim;
use daosim::objstore::{DaosApi, DaosError, EventQueue, ObjectClass, OidAllocator, Uuid};

const MIB: usize = 1 << 20;

/// Dropping the last EQ handle mid-flight cancels the operation: the
/// multi-MiB write never lands, and the simulation still quiesces (the
/// cancelled op's task resolves instead of being stranded).
#[test]
fn dropping_eq_mid_flight_cancels_the_operation() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let client = SimClient::for_process(&d, 0, 0);
    let size: Rc<RefCell<Option<u64>>> = Rc::default();
    let size2 = Rc::clone(&size);
    sim.spawn(async move {
        let cont = client
            .cont_open_or_create(Uuid::from_name(b"eq-drop"))
            .await
            .unwrap();
        let oid = OidAllocator::new(3).next(ObjectClass::S1);
        let h = client.array_create(&cont, oid).await.unwrap();
        {
            let eq = EventQueue::new(client.clone());
            eq.array_write(&cont, &h, 0, Bytes::from(vec![7u8; 8 * MIB]));
            assert_eq!(eq.in_flight(), 1, "simulated write takes time");
            // Last user handle drops here with the write still in
            // flight: daos_eq_destroy, not an orphaned kernel task.
        }
        // Give the cancelled wrapper time to observe the abort, then
        // confirm the write never reached the store.
        let sim = client.deployment().sim.clone();
        sim.sleep(daosim::kernel::SimDuration::from_secs(5)).await;
        *size2.borrow_mut() = Some(client.array_size(&cont, &h).await.unwrap());
        client.array_close(&cont, h).await.unwrap();
    });
    sim.run().expect_quiescent();
    assert_eq!(
        *size.borrow(),
        Some(0),
        "cancelled write must not mutate the store"
    );
}

/// Explicit `abort` resolves every outstanding event as `Cancelled` in
/// the completion stream, later submissions fail the same way, and
/// clones keep the queue alive until the last one drops.
#[test]
fn abort_resolves_outstanding_events_as_cancelled() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let client = SimClient::for_process(&d, 0, 0);
    let outcomes: Rc<RefCell<Vec<(u64, String)>>> = Rc::default();
    let outcomes2 = Rc::clone(&outcomes);
    sim.spawn(async move {
        let cont = client
            .cont_open_or_create(Uuid::from_name(b"eq-abort"))
            .await
            .unwrap();
        let oid = OidAllocator::new(4).next(ObjectClass::S1);
        let h = client.array_create(&cont, oid).await.unwrap();
        let eq = EventQueue::new(client.clone());
        let clone = eq.clone();
        eq.array_write(&cont, &h, 0, Bytes::from(vec![1u8; 4 * MIB]));
        eq.array_write(&cont, &h, 4 * MIB as u64, Bytes::from(vec![2u8; 4 * MIB]));
        assert_eq!(eq.in_flight(), 2);
        drop(clone); // surviving handles keep the queue armed
        assert!(!eq.is_aborted());
        eq.abort();
        // All outstanding events resolve as Cancelled through the
        // normal completion stream.
        for (ev, res) in eq.wait_all().await {
            outcomes2.borrow_mut().push((
                ev.0,
                match res {
                    Ok(o) => format!("ok:{o:?}"),
                    Err(e) => format!("err:{e:?}"),
                },
            ));
        }
        assert_eq!(eq.in_flight(), 0);
        // A destroyed queue rejects new work without spawning.
        let ev = eq.array_size(&cont, &h);
        let (got, res) = eq.wait().await.expect("failed event still completes");
        assert_eq!(got, ev);
        assert_eq!(res.unwrap_err(), DaosError::Cancelled);
        client.array_close(&cont, h).await.unwrap();
    });
    sim.run().expect_quiescent();
    let got = outcomes.borrow().clone();
    assert_eq!(
        got,
        vec![
            (0, "err:Cancelled".to_string()),
            (1, "err:Cancelled".to_string())
        ],
        "every in-flight event resolves as Cancelled"
    );
}
