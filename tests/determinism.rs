//! Cross-crate determinism: identical programs produce bit-identical
//! results, and independent worlds never interfere.

use daosim::cluster::ClusterSpec;
use daosim::core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim::core::patterns::{run_pattern_a, run_pattern_b, PatternConfig};
use daosim::core::workload::Contention;
use daosim::ior::{run_ior, Api, IorParams};
use daosim::objstore::ObjectClass;

const MIB: u64 = 1024 * 1024;

fn cfg(mode: FieldIoMode) -> PatternConfig {
    PatternConfig {
        cluster: ClusterSpec::tcp(2, 2),
        fieldio: FieldIoConfig::builder().mode(mode).build(),
        contention: Contention::High,
        procs_per_node: 6,
        ops_per_proc: 8,
        field_bytes: MIB,
        verify: true,
    }
}

#[test]
fn pattern_runs_bit_identical() {
    for mode in FieldIoMode::all() {
        let a1 = run_pattern_a(&cfg(mode));
        let a2 = run_pattern_a(&cfg(mode));
        assert_eq!(a1.end_secs.to_bits(), a2.end_secs.to_bits(), "{mode}");
        assert_eq!(
            a1.write.global_bw_gib.to_bits(),
            a2.write.global_bw_gib.to_bits()
        );
        assert_eq!(
            a1.read.global_bw_gib.to_bits(),
            a2.read.global_bw_gib.to_bits()
        );
        let b1 = run_pattern_b(&cfg(mode));
        let b2 = run_pattern_b(&cfg(mode));
        assert_eq!(b1.end_secs.to_bits(), b2.end_secs.to_bits(), "{mode}");
    }
}

#[test]
fn ior_runs_bit_identical() {
    let params = IorParams {
        transfer_bytes: MIB,
        segments: 12,
        procs_per_node: 8,
        class: ObjectClass::S1,
        iterations: 1,
        file_mode: daosim_ior::FileMode::FilePerProcess,
        inflight: 1,
        api: Api::Daos,
    };
    let a = run_ior(ClusterSpec::tcp(1, 2), params);
    let b = run_ior(ClusterSpec::tcp(1, 2), params);
    assert_eq!(a.write_bw().to_bits(), b.write_bw().to_bits());
    assert_eq!(a.read_bw().to_bits(), b.read_bw().to_bits());
}

#[test]
fn parallel_worlds_do_not_interfere() {
    // Run the same simulation concurrently on many OS threads; every
    // world must produce the same answer as a lone run.
    let reference = run_pattern_a(&cfg(FieldIoMode::Full)).end_secs.to_bits();
    let handles: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(|| run_pattern_a(&cfg(FieldIoMode::Full)).end_secs.to_bits()))
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), reference);
    }
}

#[test]
fn distinct_configs_produce_distinct_timings() {
    // Sanity check that determinism is not degeneracy.
    let a = run_pattern_a(&cfg(FieldIoMode::Full));
    let mut c = cfg(FieldIoMode::Full);
    c.ops_per_proc += 1;
    let b = run_pattern_a(&c);
    assert_ne!(a.end_secs.to_bits(), b.end_secs.to_bits());
}
