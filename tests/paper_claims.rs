//! Assertions of the paper's headline claims, at two scales.
//!
//! The full-scale versions reproduce the paper's configurations and take
//! minutes, so they are `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test paper_claims -- --ignored
//! ```
//!
//! Each also has a `*_downscaled` CI variant exercising the same
//! mechanism at a fraction of the size (seconds, runs on every push).
//! The downscaled bounds were calibrated empirically and sit well clear
//! of the observed values; they guard the *shape* of each claim
//! (scaling, ratios, regimes), not the paper's absolute numbers.

use daosim::cluster::ClusterSpec;
use daosim::core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim::core::patterns::{run_pattern_a, run_pattern_b, PatternConfig};
use daosim::core::workload::Contention;
use daosim::ior::{run_ior, IorParams};
use daosim::objstore::ObjectClass;

const MIB: u64 = 1024 * 1024;

fn pattern(mode: FieldIoMode, contention: Contention, servers: u16, ppn: u32) -> PatternConfig {
    PatternConfig {
        cluster: ClusterSpec::tcp(servers, servers * 2),
        fieldio: FieldIoConfig::builder().mode(mode).build(),
        contention,
        procs_per_node: ppn,
        ops_per_proc: 60,
        field_bytes: MIB,
        verify: false,
    }
}

/// "Using up to 12 server nodes and 20 client nodes, the aggregated
/// bandwidth reaches up to 70 GiB/s" (conclusion; no-containers mode,
/// pattern B, low contention).
#[test]
#[ignore = "minutes-long full-scale run"]
fn aggregate_bandwidth_reaches_seventy_gib_at_twelve_servers() {
    let r = run_pattern_b(&pattern(FieldIoMode::NoContainers, Contention::Low, 12, 32));
    let agg = r.aggregate_gib();
    assert!(
        (60.0..120.0).contains(&agg),
        "12-server aggregate {agg:.1} GiB/s should be in the ~70 GiB/s regime"
    );
}

/// "Bandwidth scaling linearly with additional SCM nodes in most cases"
/// (abstract) — checked as IOR write scaling from 2 to 8 server nodes.
#[test]
#[ignore = "minutes-long full-scale run"]
fn ior_write_bandwidth_scales_nearly_linearly() {
    let params = |ppn| IorParams {
        transfer_bytes: MIB,
        segments: 100,
        procs_per_node: ppn,
        class: ObjectClass::S1,
        iterations: 1,
        file_mode: daosim_ior::FileMode::FilePerProcess,
        inflight: 1,
        api: daosim_ior::Api::Daos,
    };
    let two = run_ior(ClusterSpec::tcp(2, 4), params(24)).write_bw();
    let eight = run_ior(ClusterSpec::tcp(8, 16), params(24)).write_bw();
    let scaling = eight / two;
    assert!(
        (3.0..4.6).contains(&scaling),
        "8-vs-2 server write scaling {scaling:.2} should be near 4x"
    );
}

/// "Performance improves as the object size increases beyond 1 MiB"
/// (conclusion) — the Fig. 6 mechanism at full scale.
#[test]
#[ignore = "minutes-long full-scale run"]
fn larger_objects_outperform_one_mib_fields() {
    let mut small = pattern(FieldIoMode::Full, Contention::High, 2, 32);
    small.field_bytes = MIB;
    let mut large = small.clone();
    large.field_bytes = 5 * MIB;
    large.ops_per_proc = 12;
    let s = run_pattern_a(&small);
    let l = run_pattern_a(&large);
    assert!(
        l.write.global_bw_gib > 1.5 * s.write.global_bw_gib,
        "5 MiB fields ({:.2}) should far outrun 1 MiB fields ({:.2})",
        l.write.global_bw_gib,
        s.write.global_bw_gib
    );
}

/// High contention on a shared index caps indexed-mode throughput while
/// no-index keeps scaling (Fig. 4's core result).
#[test]
#[ignore = "minutes-long full-scale run"]
fn shared_index_contention_caps_indexed_modes() {
    let idx = run_pattern_a(&pattern(FieldIoMode::NoContainers, Contention::High, 8, 32));
    let no_idx = run_pattern_a(&pattern(FieldIoMode::NoIndex, Contention::High, 8, 32));
    assert!(
        no_idx.aggregate_gib() > 2.0 * idx.aggregate_gib(),
        "no-index {:.1} should dwarf indexed {:.1} under high contention at 8 servers",
        no_idx.aggregate_gib(),
        idx.aggregate_gib()
    );
}

// ---------------------------------------------------------------------
// Downscaled CI variants: same mechanisms, seconds-fast configurations.
// ---------------------------------------------------------------------

/// Downscaled pattern config shared by the CI variants.
fn ci_pattern(mode: FieldIoMode, contention: Contention, servers: u16, ppn: u32) -> PatternConfig {
    let mut p = pattern(mode, contention, servers, ppn);
    p.ops_per_proc = 12;
    p
}

/// Downscaled [`aggregate_bandwidth_reaches_seventy_gib_at_twelve_servers`]:
/// at a third of the servers and a quarter of the processes, the same
/// configuration lands proportionally (observed ~25 GiB/s, i.e. ~6 GiB/s
/// per server — the per-server rate behind the paper's 70 GiB/s at 12).
#[test]
fn aggregate_bandwidth_scales_proportionally_downscaled() {
    let r = run_pattern_b(&ci_pattern(
        FieldIoMode::NoContainers,
        Contention::Low,
        4,
        8,
    ));
    let agg = r.aggregate_gib();
    assert!(
        (15.0..45.0).contains(&agg),
        "4-server aggregate {agg:.1} GiB/s should sit in the ~25 GiB/s regime"
    );
}

/// Downscaled [`ior_write_bandwidth_scales_nearly_linearly`]: 1 -> 4
/// servers at reduced segment counts (observed ~3.1x of the nominal 4x,
/// matching the abstract's "linearly ... in most cases").
#[test]
fn ior_write_bandwidth_scales_downscaled() {
    let params = |ppn| IorParams {
        transfer_bytes: MIB,
        segments: 20,
        procs_per_node: ppn,
        class: ObjectClass::S1,
        iterations: 1,
        file_mode: daosim_ior::FileMode::FilePerProcess,
        inflight: 1,
        api: daosim_ior::Api::Daos,
    };
    let one = run_ior(ClusterSpec::tcp(1, 2), params(8)).write_bw();
    let four = run_ior(ClusterSpec::tcp(4, 8), params(8)).write_bw();
    let scaling = four / one;
    assert!(
        (2.2..4.4).contains(&scaling),
        "4-vs-1 server write scaling {scaling:.2} should be near-linear"
    );
}

/// Downscaled [`larger_objects_outperform_one_mib_fields`] (observed
/// ratio ~1.6 at this scale).
#[test]
fn larger_objects_outperform_one_mib_fields_downscaled() {
    let mut small = ci_pattern(FieldIoMode::Full, Contention::High, 2, 8);
    small.field_bytes = MIB;
    let mut large = small.clone();
    large.field_bytes = 5 * MIB;
    large.ops_per_proc = 4;
    let s = run_pattern_a(&small);
    let l = run_pattern_a(&large);
    assert!(
        l.write.global_bw_gib > 1.3 * s.write.global_bw_gib,
        "5 MiB fields ({:.2}) should outrun 1 MiB fields ({:.2})",
        l.write.global_bw_gib,
        s.write.global_bw_gib
    );
}

/// Downscaled [`shared_index_contention_caps_indexed_modes`] (observed
/// ratio ~2.7 at 4 servers).
#[test]
fn shared_index_contention_caps_indexed_modes_downscaled() {
    let idx = run_pattern_a(&ci_pattern(
        FieldIoMode::NoContainers,
        Contention::High,
        4,
        8,
    ));
    let no_idx = run_pattern_a(&ci_pattern(FieldIoMode::NoIndex, Contention::High, 4, 8));
    assert!(
        no_idx.aggregate_gib() > 1.8 * idx.aggregate_gib(),
        "no-index {:.1} should dwarf indexed {:.1} under high contention at 4 servers",
        no_idx.aggregate_gib(),
        idx.aggregate_gib()
    );
}
