//! Full-scale assertions of the paper's headline claims. These take
//! minutes, so they are `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test paper_claims -- --ignored
//! ```

use daosim::cluster::ClusterSpec;
use daosim::core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim::core::patterns::{run_pattern_a, run_pattern_b, PatternConfig};
use daosim::core::workload::Contention;
use daosim::ior::{run_ior, IorParams};
use daosim::objstore::ObjectClass;

const MIB: u64 = 1024 * 1024;

fn pattern(mode: FieldIoMode, contention: Contention, servers: u16, ppn: u32) -> PatternConfig {
    PatternConfig {
        cluster: ClusterSpec::tcp(servers, servers * 2),
        fieldio: FieldIoConfig::with_mode(mode),
        contention,
        procs_per_node: ppn,
        ops_per_proc: 60,
        field_bytes: MIB,
        verify: false,
    }
}

/// "Using up to 12 server nodes and 20 client nodes, the aggregated
/// bandwidth reaches up to 70 GiB/s" (conclusion; no-containers mode,
/// pattern B, low contention).
#[test]
#[ignore = "minutes-long full-scale run"]
fn aggregate_bandwidth_reaches_seventy_gib_at_twelve_servers() {
    let r = run_pattern_b(&pattern(FieldIoMode::NoContainers, Contention::Low, 12, 32));
    let agg = r.aggregate_gib();
    assert!(
        (60.0..120.0).contains(&agg),
        "12-server aggregate {agg:.1} GiB/s should be in the ~70 GiB/s regime"
    );
}

/// "Bandwidth scaling linearly with additional SCM nodes in most cases"
/// (abstract) — checked as IOR write scaling from 2 to 8 server nodes.
#[test]
#[ignore = "minutes-long full-scale run"]
fn ior_write_bandwidth_scales_nearly_linearly() {
    let params = |ppn| IorParams {
        transfer_bytes: MIB,
        segments: 100,
        procs_per_node: ppn,
        class: ObjectClass::S1,
        iterations: 1,
        file_mode: daosim_ior::FileMode::FilePerProcess,
    };
    let two = run_ior(ClusterSpec::tcp(2, 4), params(24)).write_bw();
    let eight = run_ior(ClusterSpec::tcp(8, 16), params(24)).write_bw();
    let scaling = eight / two;
    assert!(
        (3.0..4.6).contains(&scaling),
        "8-vs-2 server write scaling {scaling:.2} should be near 4x"
    );
}

/// "Performance improves as the object size increases beyond 1 MiB"
/// (conclusion) — the Fig. 6 mechanism at full scale.
#[test]
#[ignore = "minutes-long full-scale run"]
fn larger_objects_outperform_one_mib_fields() {
    let mut small = pattern(FieldIoMode::Full, Contention::High, 2, 32);
    small.field_bytes = MIB;
    let mut large = small.clone();
    large.field_bytes = 5 * MIB;
    large.ops_per_proc = 12;
    let s = run_pattern_a(&small);
    let l = run_pattern_a(&large);
    assert!(
        l.write.global_bw_gib > 1.5 * s.write.global_bw_gib,
        "5 MiB fields ({:.2}) should far outrun 1 MiB fields ({:.2})",
        l.write.global_bw_gib,
        s.write.global_bw_gib
    );
}

/// High contention on a shared index caps indexed-mode throughput while
/// no-index keeps scaling (Fig. 4's core result).
#[test]
#[ignore = "minutes-long full-scale run"]
fn shared_index_contention_caps_indexed_modes() {
    let idx = run_pattern_a(&pattern(FieldIoMode::NoContainers, Contention::High, 8, 32));
    let no_idx = run_pattern_a(&pattern(FieldIoMode::NoIndex, Contention::High, 8, 32));
    assert!(
        no_idx.aggregate_gib() > 2.0 * idx.aggregate_gib(),
        "no-index {:.1} should dwarf indexed {:.1} under high contention at 8 servers",
        no_idx.aggregate_gib(),
        idx.aggregate_gib()
    );
}
