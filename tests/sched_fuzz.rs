//! Schedule-invariance properties of the kernel executor.
//!
//! The executor's `SchedPolicy` perturbs which ready task runs next
//! (LIFO, seeded random pick) and when a woken task becomes runnable
//! again (bounded wake-delay). DESIGN.md §7 promises that for workloads
//! whose concurrent effects are disjoint, semantics are
//! *schedule-invariant*: same per-event outcomes, same final pool state,
//! same byte totals, quiescence under every policy. These properties
//! drive the promise with proptest-chosen seeds through the same
//! differential harness `daosctl fuzz` uses, and pin the FIFO default to
//! the checked-in paper artifact byte for byte.

use daosim::cluster::fuzz::{generate_program, policy_roster, run_program};
use daosim::kernel::SchedPolicy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FIFO, LIFO, random and wake-delay schedules of the same
    /// seed-programmed EQ workload agree on the final store state and on
    /// the multiset of per-event outcomes.
    #[test]
    fn perturbed_schedules_agree_on_state_and_outcomes(seed in any::<u64>()) {
        let program = generate_program(seed);
        let roster = policy_roster(seed);
        prop_assert!(matches!(roster[0], SchedPolicy::Fifo));
        let reference = run_program(&program, roster[0]);
        prop_assert!(reference.quiescent, "FIFO run did not quiesce");
        let mut ref_multiset: Vec<&String> = reference.outcomes.values().collect();
        ref_multiset.sort();
        for &policy in &roster[1..] {
            let got = run_program(&program, policy);
            prop_assert!(got.quiescent, "{policy:?} run did not quiesce");
            let mut multiset: Vec<&String> = got.outcomes.values().collect();
            multiset.sort();
            prop_assert_eq!(
                &multiset, &ref_multiset,
                "outcome multiset diverged under {:?}", policy
            );
            prop_assert_eq!(
                &got.state, &reference.state,
                "final store state diverged under {:?}", policy
            );
            // Stronger than the multiset: each event id resolves to the
            // same outcome under every schedule.
            prop_assert_eq!(
                &got.outcomes, &reference.outcomes,
                "per-event outcomes diverged under {:?}", policy
            );
            prop_assert_eq!(
                got.bytes_read, reference.bytes_read,
                "read-byte totals diverged under {:?}", policy
            );
        }
    }
}

/// The FIFO default must leave the paper pipeline artifact untouched:
/// re-running the full-scale window sweep reproduces the checked-in
/// `results/BENCH_pipeline.json` byte for byte. This is the regression
/// gate for "scheduler changes must not move any published number".
#[test]
fn fifo_reproduces_checked_in_pipeline_artifact() {
    use daosim_experiments::harness::Scale;
    use daosim_experiments::window_sweep::window_sweep;

    let rep = window_sweep(&Scale::full());
    let (name, contents) = rep
        .artifacts()
        .iter()
        .find(|(n, _)| n == "BENCH_pipeline.json")
        .expect("window sweep attaches BENCH_pipeline.json");
    assert_eq!(name, "BENCH_pipeline.json");
    let checked_in = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/BENCH_pipeline.json"
    ))
    .expect("checked-in artifact present");
    assert_eq!(
        contents.as_bytes(),
        &checked_in[..],
        "FIFO run no longer reproduces results/BENCH_pipeline.json byte-identically"
    );
}
