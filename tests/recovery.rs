//! End-to-end recovery: redundancy classes, engine loss and rebuild, all
//! through the field I/O layer (not the raw client).

use std::rc::Rc;

use daosim::bytes::Bytes;
use daosim::cluster::{rebuild_engine, ClusterSpec, Deployment, SimClient};
use daosim::core::fieldio::{FieldIoConfig, FieldStore};
use daosim::core::key::FieldKey;
use daosim::core::request::{retrieve, Request};
use daosim::kernel::Sim;
use daosim::objstore::ObjectClass;

const MIB: u64 = 1024 * 1024;

fn replicated_cfg() -> FieldIoConfig {
    FieldIoConfig {
        array_class: ObjectClass::RP2,
        kv_class: ObjectClass::RP2,
        ..Default::default()
    }
}

fn key(n: u32) -> FieldKey {
    FieldKey::from_pairs([
        ("class", "od".to_string()),
        ("date", "20290101".to_string()),
        ("expver", "0001".to_string()),
        ("param", "t".to_string()),
        ("step", n.to_string()),
    ])
}

#[test]
fn archive_survives_loss_and_rebuild_restores_service() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
    {
        let d = Rc::clone(&d);
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, 0);
            let fs = FieldStore::connect(client, replicated_cfg(), 1)
                .await
                .unwrap();
            let payload = Bytes::from(vec![8u8; MIB as usize]);
            for n in 0..48 {
                fs.write_field(&key(n), payload.clone()).await.unwrap();
            }

            d.kill_engine(0);

            // Every field stays retrievable degraded, via a request.
            let req = Request::parse(
                "class=od,date=20290101,expver=0001,param=t,\
                 step=0/1/2/3/4/5/6/7/8/9/10/11",
            )
            .unwrap();
            let got = retrieve(&fs, &req).await.unwrap();
            assert!(got.is_complete(), "degraded retrieval lost fields");
            assert_eq!(got.fields.len(), 12);
            for (_, data) in &got.fields {
                assert_eq!(data.len() as u64, MIB);
            }

            // Some re-writes are blocked while the redundancy group is
            // broken.
            let mut blocked = 0;
            for n in 0..48 {
                if fs.write_field(&key(n), payload.clone()).await.is_err() {
                    blocked += 1;
                }
            }
            assert!(blocked > 0, "expected degraded write rejections");

            let report = rebuild_engine(&d, 0)
                .await
                .expect("rebuild of killed engine");
            assert!(report.objects_moved > 0);
            assert_eq!(report.objects_lost, 0, "replicated archive loses nothing");

            // Full service restored: writes and reads all succeed.
            for n in 0..48 {
                fs.write_field(&key(n), payload.clone()).await.unwrap();
                let got = fs.read_field(&key(n)).await.unwrap();
                assert_eq!(got, payload);
            }
        });
    }
    sim.run().expect_quiescent();
}

#[test]
fn ec_archive_reads_reconstruct_through_fieldio() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
    {
        let d = Rc::clone(&d);
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, 0);
            let cfg = FieldIoConfig {
                array_class: ObjectClass::EC2P1,
                kv_class: ObjectClass::RP2,
                ..Default::default()
            };
            let fs = FieldStore::connect(client, cfg, 1).await.unwrap();
            // A distinctive payload so reconstruction errors would show.
            let payload: Bytes = (0..MIB + 777).map(|i| (i * 7 % 251) as u8).collect();
            for n in 0..24 {
                fs.write_field(&key(n), payload.clone()).await.unwrap();
            }
            d.kill_engine(3);
            for n in 0..24 {
                let got = fs.read_field(&key(n)).await.unwrap();
                assert_eq!(got, payload, "EC reconstruction corrupted field {n}");
            }
        });
    }
    sim.run().expect_quiescent();
}
