//! Every experiment runner executes end to end at quick scale and
//! produces the expected table shape — the regeneration path itself is
//! under test, not just the models beneath it.

use daosim_experiments::harness::Scale;
use daosim_experiments::{run_experiment, EXPERIMENTS};

#[test]
fn every_experiment_runs_at_quick_scale() {
    let scale = Scale::quick();
    for name in EXPERIMENTS {
        let reports = run_experiment(name, &scale);
        assert!(!reports.is_empty(), "{name} produced no reports");
        for rep in &reports {
            assert!(!rep.rows().is_empty(), "{name}/{} has no rows", rep.name);
            let rendered = rep.render();
            assert!(rendered.contains("=="), "{name} render broken");
            let csv = rep.to_csv();
            assert!(csv.lines().count() > 1, "{name} csv empty");
        }
    }
}

#[test]
fn table2_preserves_provider_ordering() {
    let rep = &run_experiment("table2", &Scale::quick())[0];
    // Row 0 is PSM2/1 pair; row 1 is TCP/1 pair (see tables.rs).
    let psm2: f64 = rep.rows()[0][3].parse().unwrap();
    let tcp: f64 = rep.rows()[1][3].parse().unwrap();
    assert!(
        psm2 > 3.0 * tcp,
        "PSM2 single-stream ({psm2}) must dwarf TCP ({tcp})"
    );
    // TCP pair scaling is monotonically non-decreasing up to 8 pairs.
    let tcp8: f64 = rep.rows()[4][3].parse().unwrap();
    assert!(tcp8 > 2.0 * tcp, "8 TCP pairs ({tcp8}) must beat 1 ({tcp})");
}

#[test]
fn fig4_no_index_outscales_indexed_modes() {
    let rep = &run_experiment("fig4", &Scale::quick())[0];
    // Find pattern-A rows at the largest server count in the table.
    let max_servers: u32 = rep
        .rows()
        .iter()
        .map(|r| r[2].parse::<u32>().unwrap())
        .max()
        .unwrap();
    let agg = |mode: &str| -> f64 {
        rep.rows()
            .iter()
            .find(|r| r[0] == "A" && r[1] == mode && r[2] == max_servers.to_string())
            .expect("row present")[6]
            .parse()
            .unwrap()
    };
    assert!(
        agg("no-index") > agg("full"),
        "high contention must penalise indexed modes at {max_servers} servers"
    );
}
