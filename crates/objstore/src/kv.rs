//! Key-Value objects — the index building block of the field I/O scheme.
//!
//! A DAOS Key-Value object maps opaque byte keys to opaque byte values
//! under last-writer-wins semantics. Keys are kept ordered so listings
//! are deterministic.
//!
//! Keys are stored as [`Bytes`] so listings hand back cheap refcount
//! clones instead of deep-copying every key, and `put` on an existing
//! key replaces the value in place without copying key bytes at all.
//! Lookups still take `&[u8]` (the map is queried through
//! `Borrow<[u8]>`), so callers never allocate to probe.

use std::collections::BTreeMap;
use std::ops::Bound;

use bytes::Bytes;

/// An in-memory Key-Value object.
#[derive(Default, Debug, Clone)]
pub struct KvObject {
    entries: BTreeMap<Bytes, Bytes>,
}

impl KvObject {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces `key`; returns the previous value, if any.
    /// Replacing an existing key swaps the value in place — the key
    /// bytes are only copied when the key is first inserted.
    pub fn put(&mut self, key: &[u8], value: Bytes) -> Option<Bytes> {
        if let Some(slot) = self.entries.get_mut(key) {
            return Some(std::mem::replace(slot, value));
        }
        self.entries.insert(Bytes::copy_from_slice(key), value);
        None
    }

    /// Inserts or replaces `key` without copying it — for callers that
    /// already hold the key as [`Bytes`].
    pub fn put_owned(&mut self, key: Bytes, value: Bytes) -> Option<Bytes> {
        self.entries.insert(key, value)
    }

    /// Inserts or replaces every pair, in order (vectorized update).
    pub fn put_many(&mut self, pairs: Vec<(Bytes, Bytes)>) {
        for (key, value) in pairs {
            self.entries.insert(key, value);
        }
    }

    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.entries.get(key).cloned()
    }

    pub fn contains(&self, key: &[u8]) -> bool {
        self.entries.contains_key(key)
    }

    /// Removes `key`; returns the removed value, if any.
    pub fn remove(&mut self, key: &[u8]) -> Option<Bytes> {
        self.entries.remove(key)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All keys in lexicographic order (refcount clones, not deep
    /// copies).
    pub fn list_keys(&self) -> Vec<Bytes> {
        self.list_range(b"", None)
    }

    /// Keys starting with `prefix`, in lexicographic order.
    pub fn list_prefix(&self, prefix: &[u8]) -> Vec<Bytes> {
        self.entries
            .range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Keys in `[from, until)` (`until = None` means unbounded), in
    /// lexicographic order. The half-open contract matches the usual
    /// scan idiom: the end of a prefix range is the prefix's successor.
    /// A degenerate window (`until <= from`) is the empty range —
    /// `BTreeMap::range` would panic on inverted bounds.
    pub fn list_range(&self, from: &[u8], until: Option<&[u8]>) -> Vec<Bytes> {
        let upper = match until {
            Some(end) if end <= from => return Vec::new(),
            Some(end) => Bound::Excluded(end),
            None => Bound::Unbounded,
        };
        self.entries
            .range::<[u8], _>((Bound::Included(from), upper))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &Bytes)> {
        self.entries.iter().map(|(k, v)| (&k[..], v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut kv = KvObject::new();
        assert!(kv.put(b"step=0", Bytes::from_static(b"ref-a")).is_none());
        assert_eq!(kv.get(b"step=0").unwrap().as_ref(), b"ref-a");
        assert!(kv.get(b"step=1").is_none());
    }

    #[test]
    fn put_replaces_and_returns_previous() {
        let mut kv = KvObject::new();
        kv.put(b"k", Bytes::from_static(b"old"));
        let prev = kv.put(b"k", Bytes::from_static(b"new")).unwrap();
        assert_eq!(prev.as_ref(), b"old");
        assert_eq!(kv.get(b"k").unwrap().as_ref(), b"new");
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn remove_and_len() {
        let mut kv = KvObject::new();
        kv.put(b"a", Bytes::new());
        kv.put(b"b", Bytes::new());
        assert_eq!(kv.remove(b"a").map(|b| b.len()), Some(0));
        assert!(kv.remove(b"a").is_none());
        assert_eq!(kv.len(), 1);
        assert!(!kv.is_empty());
    }

    #[test]
    fn list_keys_is_ordered() {
        let mut kv = KvObject::new();
        for k in ["zeta", "alpha", "mid"] {
            kv.put(k.as_bytes(), Bytes::new());
        }
        assert_eq!(
            kv.list_keys(),
            vec![b"alpha".to_vec(), b"mid".to_vec(), b"zeta".to_vec()]
        );
    }

    #[test]
    fn list_prefix_selects_exactly_the_prefix() {
        let mut kv = KvObject::new();
        for k in ["step=0", "step=1", "step=10", "stop", "alpha"] {
            kv.put(k.as_bytes(), Bytes::new());
        }
        assert_eq!(
            kv.list_prefix(b"step="),
            vec![b"step=0".to_vec(), b"step=1".to_vec(), b"step=10".to_vec()]
        );
        assert_eq!(kv.list_prefix(b""), kv.list_keys());
        assert!(kv.list_prefix(b"zz").is_empty());
    }

    #[test]
    fn list_range_is_half_open() {
        let mut kv = KvObject::new();
        for k in ["a", "b", "c", "d"] {
            kv.put(k.as_bytes(), Bytes::new());
        }
        assert_eq!(
            kv.list_range(b"b", Some(b"d")),
            vec![b"b".to_vec(), b"c".to_vec()]
        );
        assert_eq!(
            kv.list_range(b"c", None),
            vec![b"c".to_vec(), b"d".to_vec()]
        );
        assert!(kv.list_range(b"x", Some(b"x")).is_empty());
    }

    #[test]
    fn list_boundaries_on_empty_and_degenerate_ranges() {
        // Empty object: every listing shape is empty, no underflow.
        let kv = KvObject::new();
        assert!(kv.list_keys().is_empty());
        assert!(kv.list_prefix(b"").is_empty());
        assert!(kv.list_range(b"", None).is_empty());
        assert!(kv.list_range(b"a", Some(b"a")).is_empty());

        // start == end is the empty half-open range even when a key sits
        // exactly on the bound.
        let mut kv = KvObject::new();
        kv.put(b"a", Bytes::new());
        assert!(kv.list_range(b"a", Some(b"a")).is_empty());
        // Inverted bounds are just an empty range, not a panic.
        assert!(kv.list_range(b"b", Some(b"a")).is_empty());
    }

    #[test]
    fn list_prefix_at_the_field_keys_sentinel() {
        // The fieldio index scans from the reserved-prefix successor
        // b"_\x60" ("_`"); a prefix equal to that sentinel must select
        // exactly the keys it lexically covers.
        let mut kv = KvObject::new();
        for k in [&b"_\x5f"[..], b"_\x60", b"_\x60abc", b"_\x61", b"_"] {
            kv.put(k, Bytes::new());
        }
        assert_eq!(
            kv.list_prefix(b"_\x60"),
            vec![
                Bytes::from_static(b"_\x60"),
                Bytes::from_static(b"_\x60abc")
            ]
        );
        // And the fieldio scan shape — range from the sentinel, open
        // end — sees everything at or above it.
        assert_eq!(
            kv.list_range(b"_\x60", None),
            vec![
                Bytes::from_static(b"_\x60"),
                Bytes::from_static(b"_\x60abc"),
                Bytes::from_static(b"_\x61"),
            ]
        );
    }

    #[test]
    fn list_handles_0xff_keys_at_the_top_of_the_order() {
        // 0xff has no single-byte successor; prefix and range listings
        // must still terminate and include the right keys.
        let mut kv = KvObject::new();
        for k in [&[0xfeu8][..], &[0xff], &[0xff, 0x00], &[0xff, 0xff]] {
            kv.put(k, Bytes::new());
        }
        assert_eq!(
            kv.list_prefix(&[0xff]),
            vec![
                Bytes::from_static(&[0xff]),
                Bytes::from_static(&[0xff, 0x00]),
                Bytes::from_static(&[0xff, 0xff]),
            ]
        );
        assert_eq!(
            kv.list_range(&[0xff], None),
            vec![
                Bytes::from_static(&[0xff]),
                Bytes::from_static(&[0xff, 0x00]),
                Bytes::from_static(&[0xff, 0xff]),
            ]
        );
        // An exclusive 0xff bound keeps everything below it.
        assert_eq!(
            kv.list_range(&[], Some(&[0xff])),
            vec![Bytes::from_static(&[0xfe])]
        );
        // A key that IS 0xff... can still be the exclusive bound.
        assert_eq!(
            kv.list_range(&[0xff], Some(&[0xff, 0xff])),
            vec![
                Bytes::from_static(&[0xff]),
                Bytes::from_static(&[0xff, 0x00])
            ]
        );
    }

    #[test]
    fn put_owned_and_existing_key_share_storage() {
        let mut kv = KvObject::new();
        let key = Bytes::from_static(b"shared");
        kv.put_owned(key.clone(), Bytes::from_static(b"v1"));
        // Replacing through the slice path must not clone the key.
        kv.put(b"shared", Bytes::from_static(b"v2"));
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.get(b"shared").unwrap().as_ref(), b"v2");
    }

    #[test]
    fn empty_key_is_legal() {
        let mut kv = KvObject::new();
        kv.put(b"", Bytes::from_static(b"v"));
        assert!(kv.contains(b""));
    }
}
