//! Key-Value objects — the index building block of the field I/O scheme.
//!
//! A DAOS Key-Value object maps opaque byte keys to opaque byte values
//! under last-writer-wins semantics. Keys are kept ordered so listings
//! are deterministic.

use std::collections::BTreeMap;

use bytes::Bytes;

/// An in-memory Key-Value object.
#[derive(Default, Debug, Clone)]
pub struct KvObject {
    entries: BTreeMap<Vec<u8>, Bytes>,
}

impl KvObject {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces `key`; returns the previous value, if any.
    pub fn put(&mut self, key: &[u8], value: Bytes) -> Option<Bytes> {
        self.entries.insert(key.to_vec(), value)
    }

    /// Inserts or replaces every pair, in order (vectorized update).
    pub fn put_many(&mut self, pairs: Vec<(Vec<u8>, Bytes)>) {
        for (key, value) in pairs {
            self.entries.insert(key, value);
        }
    }

    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.entries.get(key).cloned()
    }

    pub fn contains(&self, key: &[u8]) -> bool {
        self.entries.contains_key(key)
    }

    /// Removes `key`; returns the removed value, if any.
    pub fn remove(&mut self, key: &[u8]) -> Option<Bytes> {
        self.entries.remove(key)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All keys in lexicographic order.
    pub fn list_keys(&self) -> Vec<Vec<u8>> {
        self.entries.keys().cloned().collect()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &Bytes)> {
        self.entries.iter().map(|(k, v)| (k.as_slice(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut kv = KvObject::new();
        assert!(kv.put(b"step=0", Bytes::from_static(b"ref-a")).is_none());
        assert_eq!(kv.get(b"step=0").unwrap().as_ref(), b"ref-a");
        assert!(kv.get(b"step=1").is_none());
    }

    #[test]
    fn put_replaces_and_returns_previous() {
        let mut kv = KvObject::new();
        kv.put(b"k", Bytes::from_static(b"old"));
        let prev = kv.put(b"k", Bytes::from_static(b"new")).unwrap();
        assert_eq!(prev.as_ref(), b"old");
        assert_eq!(kv.get(b"k").unwrap().as_ref(), b"new");
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn remove_and_len() {
        let mut kv = KvObject::new();
        kv.put(b"a", Bytes::new());
        kv.put(b"b", Bytes::new());
        assert_eq!(kv.remove(b"a").map(|b| b.len()), Some(0));
        assert!(kv.remove(b"a").is_none());
        assert_eq!(kv.len(), 1);
        assert!(!kv.is_empty());
    }

    #[test]
    fn list_keys_is_ordered() {
        let mut kv = KvObject::new();
        for k in ["zeta", "alpha", "mid"] {
            kv.put(k.as_bytes(), Bytes::new());
        }
        assert_eq!(
            kv.list_keys(),
            vec![b"alpha".to_vec(), b"mid".to_vec(), b"zeta".to_vec()]
        );
    }

    #[test]
    fn empty_key_is_legal() {
        let mut kv = KvObject::new();
        kv.put(b"", Bytes::from_static(b"v"));
        assert!(kv.contains(b""));
    }
}
