//! Object identifiers and object classes.
//!
//! A DAOS object id is 128 bits of which 96 are user-managed; DAOS packs
//! the *object class* (replication/striping policy) and internal metadata
//! into the upper 32 bits when the object is "generated". We mirror that:
//! [`Oid::generate`] combines a 96-bit user id with an [`ObjectClass`].

use std::fmt;

use crate::uuid::Uuid;

/// Redundancy/striping policy for an object: the striped classes the
/// paper exercises (S1/S2/SX) plus two-way replication (`OC_RP_2G1`),
/// which the paper names (§3) but does not benchmark.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ObjectClass {
    /// No striping: the whole object lives on one target (`OC_S1`).
    #[default]
    S1,
    /// Striped across two targets (`OC_S2`).
    S2,
    /// Striped across every target in the pool (`OC_SX`).
    SX,
    /// Two-way replicated, unstriped (`OC_RP_2G1`): writes land on both
    /// replicas, reads fail over to the survivor when an engine is down.
    RP2,
    /// Erasure-coded 2+1 (`OC_EC_2P1G1`): two data cells plus one XOR
    /// parity cell on three targets; any single loss is reconstructible.
    EC2P1,
}

impl ObjectClass {
    /// Number of targets an object of this class spreads over, in a pool
    /// with `pool_targets` targets.
    pub fn stripe_width(self, pool_targets: u32) -> u32 {
        match self {
            ObjectClass::S1 => 1,
            ObjectClass::S2 => 2.min(pool_targets.max(1)),
            ObjectClass::SX => pool_targets.max(1),
            // Replication is redundancy, not striping: one data shard.
            ObjectClass::RP2 => 1,
            // Two data cells (parity is extra, placed separately).
            ObjectClass::EC2P1 => 2.min(pool_targets.max(1)),
        }
    }

    /// Number of parity cells per shard group (EC classes only).
    pub fn parity_cells(self, pool_targets: u32) -> u32 {
        match self {
            ObjectClass::EC2P1 if pool_targets >= 3 => 1,
            _ => 0,
        }
    }

    /// Number of synchronous replicas each shard keeps.
    pub fn replicas(self, pool_targets: u32) -> u32 {
        match self {
            ObjectClass::RP2 => 2.min(pool_targets.max(1)),
            _ => 1,
        }
    }

    fn code(self) -> u32 {
        match self {
            ObjectClass::S1 => 1,
            ObjectClass::S2 => 2,
            ObjectClass::SX => 3,
            ObjectClass::RP2 => 4,
            ObjectClass::EC2P1 => 5,
        }
    }

    fn from_code(code: u32) -> Option<Self> {
        match code {
            1 => Some(ObjectClass::S1),
            2 => Some(ObjectClass::S2),
            3 => Some(ObjectClass::SX),
            4 => Some(ObjectClass::RP2),
            5 => Some(ObjectClass::EC2P1),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ObjectClass::S1 => "S1",
            ObjectClass::S2 => "S2",
            ObjectClass::SX => "SX",
            ObjectClass::RP2 => "RP2",
            ObjectClass::EC2P1 => "EC2P1",
        }
    }

    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "S1" | "s1" => Some(ObjectClass::S1),
            "S2" | "s2" => Some(ObjectClass::S2),
            "SX" | "sx" => Some(ObjectClass::SX),
            "RP2" | "rp2" | "RP_2G1" => Some(ObjectClass::RP2),
            "EC2P1" | "ec2p1" | "EC_2P1G1" => Some(ObjectClass::EC2P1),
            _ => None,
        }
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A 128-bit object identifier: 96 user bits + class metadata.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid {
    hi: u64,
    lo: u64,
}

impl Oid {
    /// Combines a 96-bit user id (`user_hi` must fit in 32 bits) with an
    /// object class, like `daos_obj_generate_oid`.
    pub fn generate(user_hi: u32, user_lo: u64, class: ObjectClass) -> Self {
        Oid {
            hi: ((class.code() as u64) << 32) | user_hi as u64,
            lo: user_lo,
        }
    }

    /// Derives an oid from a 16-byte digest (the `no-index` mode maps
    /// md5(field key) onto the 96 user bits).
    pub fn from_digest(digest: &Uuid, class: ObjectClass) -> Self {
        let b = digest.as_bytes();
        let user_hi = u32::from_be_bytes(b[0..4].try_into().unwrap());
        let user_lo = u64::from_be_bytes(b[4..12].try_into().unwrap());
        Oid::generate(user_hi, user_lo, class)
    }

    pub fn class(&self) -> ObjectClass {
        ObjectClass::from_code((self.hi >> 32) as u32)
            .expect("oid carries an invalid object-class code")
    }

    /// The 96 user-managed bits as `(hi32, lo64)`.
    pub fn user_bits(&self) -> (u32, u64) {
        (self.hi as u32, self.lo)
    }

    /// Raw 128-bit value (for hashing/placement).
    pub fn as_u128(&self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}.{:016x}", self.hi, self.lo)
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({self} class={})", self.class())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_roundtrips_user_bits_and_class() {
        for class in [
            ObjectClass::S1,
            ObjectClass::S2,
            ObjectClass::SX,
            ObjectClass::RP2,
        ] {
            let oid = Oid::generate(0xdead_beef, 0x0123_4567_89ab_cdef, class);
            assert_eq!(oid.class(), class);
            assert_eq!(oid.user_bits(), (0xdead_beef, 0x0123_4567_89ab_cdef));
        }
    }

    #[test]
    fn stripe_widths() {
        assert_eq!(ObjectClass::S1.stripe_width(24), 1);
        assert_eq!(ObjectClass::S2.stripe_width(24), 2);
        assert_eq!(ObjectClass::SX.stripe_width(24), 24);
        // Degenerate pools clamp sensibly.
        assert_eq!(ObjectClass::S2.stripe_width(1), 1);
        assert_eq!(ObjectClass::SX.stripe_width(1), 1);
    }

    #[test]
    fn from_digest_is_deterministic() {
        let u = Uuid::from_name(b"param=t,level=500,step=24");
        let a = Oid::from_digest(&u, ObjectClass::S1);
        let b = Oid::from_digest(&u, ObjectClass::S1);
        assert_eq!(a, b);
        assert_ne!(
            a,
            Oid::from_digest(
                &Uuid::from_name(b"param=t,level=850,step=24"),
                ObjectClass::S1
            )
        );
    }

    #[test]
    fn ec_counts() {
        assert_eq!(ObjectClass::EC2P1.stripe_width(24), 2);
        assert_eq!(ObjectClass::EC2P1.parity_cells(24), 1);
        assert_eq!(ObjectClass::EC2P1.parity_cells(2), 0, "needs 3 targets");
        assert_eq!(ObjectClass::S1.parity_cells(24), 0);
        assert_eq!(ObjectClass::EC2P1.replicas(24), 1);
    }

    #[test]
    fn replication_counts() {
        assert_eq!(ObjectClass::RP2.replicas(24), 2);
        assert_eq!(ObjectClass::RP2.replicas(1), 1);
        assert_eq!(ObjectClass::S1.replicas(24), 1);
        assert_eq!(ObjectClass::SX.replicas(24), 1);
        assert_eq!(ObjectClass::RP2.stripe_width(24), 1);
    }

    #[test]
    fn class_names_roundtrip() {
        for c in [
            ObjectClass::S1,
            ObjectClass::S2,
            ObjectClass::SX,
            ObjectClass::RP2,
        ] {
            assert_eq!(ObjectClass::by_name(c.name()), Some(c));
        }
        assert_eq!(ObjectClass::by_name("RP_2G1"), Some(ObjectClass::RP2));
        assert_eq!(ObjectClass::by_name("EC_2P1"), None);
    }
}
