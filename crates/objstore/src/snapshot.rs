//! Pool snapshots: serialise an embedded pool to a byte stream and back.
//!
//! The simulator never needs this, but an *embedded* store does: a tool
//! holding a weather-field archive in memory wants to persist it between
//! runs. The format is a small versioned binary codec (no external
//! serialisation dependency), written to any `io::Write`.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "DAOSNAP1" | pool uuid | targets u32 | capacity u64 | used u64
//! cont_count u32
//!   per container: uuid | obj_count u32
//!     per object: oid hi u64 | oid lo u64 | tag u8
//!       tag 0 (kv):    entry_count u32, then (klen u32, k, vlen u32, v)*
//!       tag 1 (array): size u64, seg_count u32, (off u64, len u32, bytes)*,
//!                      parity_len u32, parity bytes (0 = no parity)
//! ```

use std::io::{self, Read, Write};
use std::sync::Arc;

use bytes::Bytes;

use crate::array::ArrayObject;
use crate::container::Object;
use crate::kv::KvObject;
use crate::oid::Oid;
use crate::pool::Pool;
use crate::uuid::Uuid;

const MAGIC: &[u8; 8] = b"DAOSNAP1";

/// Errors from snapshot encode/decode.
#[derive(Debug)]
pub enum SnapshotError {
    Io(io::Error),
    BadMagic,
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a daosim snapshot"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn r_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_bytes(r: &mut impl Read, len: usize) -> io::Result<Vec<u8>> {
    let mut v = vec![0u8; len];
    r.read_exact(&mut v)?;
    Ok(v)
}

/// Writes a pool snapshot.
pub fn save_pool(pool: &Pool, w: &mut impl Write) -> Result<(), SnapshotError> {
    w.write_all(MAGIC)?;
    w.write_all(pool.uuid().as_bytes())?;
    w_u32(w, pool.targets())?;
    w_u64(w, pool.capacity())?;
    w_u64(w, pool.used())?;
    let conts = pool.cont_list();
    w_u32(w, conts.len() as u32)?;
    for cu in conts {
        let cont = pool.cont_open(cu).expect("listed container must open");
        w.write_all(cu.as_bytes())?;
        let oids = cont.list_objects();
        w_u32(w, oids.len() as u32)?;
        for oid in oids {
            let (hi, lo) = oid_raw(oid);
            w_u64(w, hi)?;
            w_u64(w, lo)?;
            match cont.export_object(oid).expect("listed object must exist") {
                Object::Kv(kv) => {
                    w.write_all(&[0u8])?;
                    w_u32(w, kv.len() as u32)?;
                    for (k, v) in kv.iter() {
                        w_u32(w, k.len() as u32)?;
                        w.write_all(k)?;
                        w_u32(w, v.len() as u32)?;
                        w.write_all(v)?;
                    }
                }
                Object::Array(a) => {
                    w.write_all(&[1u8])?;
                    w_u64(w, a.size())?;
                    let segs: Vec<(u64, Bytes)> = a.segments().collect();
                    w_u32(w, segs.len() as u32)?;
                    for (off, data) in segs {
                        w_u64(w, off)?;
                        w_u32(w, data.len() as u32)?;
                        w.write_all(&data)?;
                    }
                    match a.parity() {
                        Some(parity) => {
                            w_u32(w, parity.len() as u32)?;
                            w.write_all(&parity)?;
                        }
                        None => w_u32(w, 0)?,
                    }
                }
            }
        }
    }
    Ok(())
}

/// Reads a pool snapshot.
pub fn load_pool(r: &mut impl Read) -> Result<Arc<Pool>, SnapshotError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let uuid = Uuid(r_bytes(r, 16)?.try_into().expect("sized"));
    let targets = r_u32(r)?;
    if targets == 0 {
        return Err(SnapshotError::Corrupt("zero targets"));
    }
    let capacity = r_u64(r)?;
    let used = r_u64(r)?;
    let pool = Arc::new(Pool::new(uuid, targets, capacity));
    pool.charge(used)
        .map_err(|_| SnapshotError::Corrupt("used exceeds capacity"))?;
    let cont_count = r_u32(r)?;
    for _ in 0..cont_count {
        let cu = Uuid(r_bytes(r, 16)?.try_into().expect("sized"));
        let cont = pool
            .cont_create(cu)
            .map_err(|_| SnapshotError::Corrupt("duplicate container"))?;
        let obj_count = r_u32(r)?;
        for _ in 0..obj_count {
            let hi = r_u64(r)?;
            let lo = r_u64(r)?;
            let oid = oid_from_raw(hi, lo).ok_or(SnapshotError::Corrupt("invalid object class"))?;
            match r_u8(r)? {
                0 => {
                    let entries = r_u32(r)?;
                    let mut kv = KvObject::new();
                    for _ in 0..entries {
                        let klen = r_u32(r)? as usize;
                        let k = r_bytes(r, klen)?;
                        let vlen = r_u32(r)? as usize;
                        let v = r_bytes(r, vlen)?;
                        kv.put(&k, Bytes::from(v));
                    }
                    cont.import_object(oid, Object::Kv(kv))
                        .map_err(|_| SnapshotError::Corrupt("duplicate object"))?;
                }
                1 => {
                    let size = r_u64(r)?;
                    let segs = r_u32(r)?;
                    let mut a = ArrayObject::new();
                    for _ in 0..segs {
                        let off = r_u64(r)?;
                        let len = r_u32(r)? as usize;
                        let data = r_bytes(r, len)?;
                        a.write(off, Bytes::from(data));
                    }
                    if a.size() > size {
                        return Err(SnapshotError::Corrupt("array larger than recorded size"));
                    }
                    let plen = r_u32(r)? as usize;
                    if plen > 0 {
                        a.set_parity(Bytes::from(r_bytes(r, plen)?));
                    }
                    cont.import_object(oid, Object::Array(a))
                        .map_err(|_| SnapshotError::Corrupt("duplicate object"))?;
                }
                _ => return Err(SnapshotError::Corrupt("unknown object tag")),
            }
        }
    }
    Ok(pool)
}

fn oid_raw(oid: Oid) -> (u64, u64) {
    let v = oid.as_u128();
    ((v >> 64) as u64, v as u64)
}

fn oid_from_raw(hi: u64, lo: u64) -> Option<Oid> {
    use crate::oid::ObjectClass;
    let class = match (hi >> 32) as u32 {
        1 => ObjectClass::S1,
        2 => ObjectClass::S2,
        3 => ObjectClass::SX,
        4 => ObjectClass::RP2,
        5 => ObjectClass::EC2P1,
        _ => return None,
    };
    Some(Oid::generate(hi as u32, lo, class))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::ObjectClass;
    use crate::store::DaosStore;

    fn sample_pool() -> Arc<Pool> {
        let (_s, pool) = DaosStore::with_single_pool(24);
        let c1 = pool.cont_create(Uuid::from_name(b"c1")).unwrap();
        let c2 = pool.cont_create(Uuid::from_name(b"c2")).unwrap();
        let kv = Oid::generate(1, 1, ObjectClass::SX);
        c1.kv_put(kv, b"step=0", Bytes::from_static(b"ref0"))
            .unwrap();
        c1.kv_put(kv, b"step=24", Bytes::from_static(b"ref24"))
            .unwrap();
        let a = Oid::generate(1, 2, ObjectClass::S1);
        c2.array_create(a).unwrap();
        c2.array_write(a, 0, Bytes::from(vec![9u8; 4096])).unwrap();
        c2.array_write(a, 10_000, Bytes::from_static(b"tail"))
            .unwrap();
        pool.charge(4100).unwrap();
        pool
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let pool = sample_pool();
        let mut buf = Vec::new();
        save_pool(&pool, &mut buf).unwrap();
        let loaded = load_pool(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.uuid(), pool.uuid());
        assert_eq!(loaded.targets(), pool.targets());
        assert_eq!(loaded.used(), pool.used());
        assert_eq!(loaded.cont_list(), pool.cont_list());
        let c1 = loaded.cont_open(Uuid::from_name(b"c1")).unwrap();
        let kv = Oid::generate(1, 1, ObjectClass::SX);
        assert_eq!(c1.kv_get(kv, b"step=0").unwrap().unwrap().as_ref(), b"ref0");
        assert_eq!(c1.kv_list_keys(kv).unwrap().len(), 2);
        let c2 = loaded.cont_open(Uuid::from_name(b"c2")).unwrap();
        let a = Oid::generate(1, 2, ObjectClass::S1);
        assert_eq!(
            c2.array_read(a, 0, 4096).unwrap(),
            Bytes::from(vec![9u8; 4096])
        );
        assert_eq!(c2.array_read(a, 10_000, 4).unwrap().as_ref(), b"tail");
        assert_eq!(c2.array_size(a).unwrap(), 10_004);
        // Holes survive as holes.
        assert_eq!(c2.array_read(a, 5000, 4).unwrap().as_ref(), b"\0\0\0\0");
    }

    #[test]
    fn parity_survives_roundtrip() {
        let (_s, pool) = DaosStore::with_single_pool(24);
        let c = pool.cont_create(Uuid::from_name(b"ec")).unwrap();
        let o = Oid::generate(2, 9, ObjectClass::EC2P1);
        c.array_create(o).unwrap();
        c.array_write(o, 0, Bytes::from_static(b"payload!"))
            .unwrap();
        c.array_set_parity(o, Bytes::from_static(b"par")).unwrap();
        let mut buf = Vec::new();
        save_pool(&pool, &mut buf).unwrap();
        let loaded = load_pool(&mut buf.as_slice()).unwrap();
        let lc = loaded.cont_open(Uuid::from_name(b"ec")).unwrap();
        assert_eq!(lc.array_parity(o).unwrap().unwrap().as_ref(), b"par");
        assert_eq!(lc.array_read(o, 0, 8).unwrap().as_ref(), b"payload!");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = b"NOTASNAP".to_vec();
        data.extend_from_slice(&[0u8; 64]);
        let err = load_pool(&mut data.as_slice()).err().expect("must fail");
        match err {
            SnapshotError::BadMagic => {}
            other => panic!("expected BadMagic, got {other}"),
        }
    }

    #[test]
    fn truncated_stream_rejected() {
        let pool = sample_pool();
        let mut buf = Vec::new();
        save_pool(&pool, &mut buf).unwrap();
        for cut in [9, 20, 40, buf.len() - 1] {
            assert!(
                load_pool(&mut &buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn empty_pool_roundtrips() {
        let (_s, pool) = DaosStore::with_single_pool(8);
        let mut buf = Vec::new();
        save_pool(&pool, &mut buf).unwrap();
        let loaded = load_pool(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.cont_count(), 0);
        assert_eq!(loaded.targets(), 8);
    }

    #[test]
    fn file_roundtrip() {
        let pool = sample_pool();
        let path = std::env::temp_dir().join("daosim-snapshot-test.bin");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            save_pool(&pool, &mut f).unwrap();
        }
        let mut f = std::fs::File::open(&path).unwrap();
        let loaded = load_pool(&mut f).unwrap();
        assert_eq!(loaded.cont_count(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
