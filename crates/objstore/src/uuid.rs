//! 128-bit identifiers for pools and containers.
//!
//! DAOS identifies pools and containers by UUID. The field I/O scheme
//! (paper §4) derives container UUIDs deterministically as the md5 sum of
//! the most-significant part of a field key, so that processes racing to
//! create "the same" container agree on its identity and the loser of the
//! race simply opens what the winner created.

use std::fmt;

use crate::md5::md5;

/// A 16-byte identifier in the style of a UUID.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Uuid(pub [u8; 16]);

impl Uuid {
    pub const NIL: Uuid = Uuid([0u8; 16]);

    /// Deterministic UUID derived from arbitrary bytes (md5-based, exactly
    /// as the paper's container-naming scheme prescribes).
    pub fn from_name(name: &[u8]) -> Self {
        Uuid(md5(name))
    }

    /// UUID from a pair of u64s (handy for tests and sequential ids).
    pub fn from_u64_pair(hi: u64, lo: u64) -> Self {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&hi.to_be_bytes());
        b[8..].copy_from_slice(&lo.to_be_bytes());
        Uuid(b)
    }

    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Canonical 8-4-4-4-12 grouping.
        let b = &self.0;
        write!(
            f,
            "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12],
            b[13], b[14], b[15]
        )
    }
}

impl fmt::Debug for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uuid({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_name_is_deterministic_and_distinct() {
        let a = Uuid::from_name(b"class=od,date=20201224");
        let b = Uuid::from_name(b"class=od,date=20201224");
        let c = Uuid::from_name(b"class=od,date=20201225");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_shape() {
        let u = Uuid::from_u64_pair(0x0011223344556677, 0x8899aabbccddeeff);
        assert_eq!(u.to_string(), "00112233-4455-6677-8899-aabbccddeeff");
    }

    #[test]
    fn nil_is_zero() {
        assert_eq!(
            Uuid::NIL.to_string(),
            "00000000-0000-0000-0000-000000000000"
        );
    }
}
