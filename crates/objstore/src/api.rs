//! The client API surface shared by every backend.
//!
//! The paper's field I/O functions are written against the DAOS C API;
//! here the same operation set is a trait so the functions run unchanged
//! over (a) the embedded in-memory store — instantaneous, for real use
//! and correctness testing — and (b) the simulated cluster — where each
//! operation charges modelled time.
//!
//! Methods are `async`: the embedded backend completes immediately, the
//! simulated one suspends the calling task on network and service events.
//!
//! Two layers sit on top of the blocking operation set:
//!
//! * [`ArrayHandle`] — the typed open-array handle. `array_open` returns
//!   one and `array_close` consumes it, so use-after-close and
//!   double-close are unrepresentable at compile time (the handle is
//!   neither `Clone` nor `Copy`).
//! * [`EventQueue`] — the `daos_eq`-style asynchronous layer: launch N
//!   operations, then `poll`/`wait` on completions while they progress
//!   concurrently. See DESIGN.md §6 for the mapping onto
//!   `daos_eq_create`/`daos_event_t`.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use bytes::Bytes;

use crate::container::Container;
use crate::error::{DaosError, Result};
use crate::oid::{ObjectClass, Oid};
use crate::pool::Pool;

pub use crate::uuid::Uuid;

/// A boxed operation future, as handed to [`DaosApi::spawn_op`]. The
/// future is `'static` and owns everything it touches; it resolves to
/// `()` because completion is reported through the [`EventQueue`] that
/// submitted it.
pub type OpFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// An open Array object handle.
///
/// Returned by `array_create`/`array_open`/`array_open_or_create` and
/// consumed (by value) by `array_close`. The type is deliberately not
/// `Clone`/`Copy`: a closed handle cannot be used again, and a handle
/// cannot be closed twice, mirroring `daos_array_close` invalidating the
/// `daos_handle_t`.
#[must_use = "an open array handle must eventually be passed to array_close"]
#[derive(Debug, PartialEq, Eq)]
pub struct ArrayHandle {
    oid: Oid,
}

impl ArrayHandle {
    /// The object id this handle refers to (for index entries, punch and
    /// listing — operations that outlive the open handle).
    pub fn oid(&self) -> Oid {
        self.oid
    }

    /// Mints a handle for an array the backend has just opened. Backends
    /// and the event-queue helpers need this; application code should
    /// only ever receive handles from `array_open*`.
    #[doc(hidden)]
    pub fn from_open(oid: Oid) -> Self {
        ArrayHandle { oid }
    }
}

/// The DAOS operation set the field I/O layer consumes.
#[allow(async_fn_in_trait)]
pub trait DaosApi: Clone + 'static {
    /// Opaque open-container handle.
    type Cont: Clone + 'static;

    /// Opens container `uuid`, creating it if absent — the race-safe
    /// create-or-open the md5-derived container scheme relies on.
    async fn cont_open_or_create(&self, uuid: Uuid) -> Result<Self::Cont>;

    /// Opens an existing container.
    async fn cont_open(&self, uuid: Uuid) -> Result<Self::Cont>;

    /// Key-Value update (creates the KV object on first use).
    async fn kv_put(&self, cont: &Self::Cont, oid: Oid, key: &[u8], value: Bytes) -> Result<()>;

    /// Vectorized Key-Value update: all pairs land in one request, which
    /// the store services as a batch (one round trip, one serial-section
    /// charge on the simulated backend). Semantically identical to
    /// issuing the `kv_put`s in order.
    async fn kv_put_multi(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        pairs: Vec<(Bytes, Bytes)>,
    ) -> Result<()> {
        for (key, value) in pairs {
            self.kv_put(cont, oid, &key, value).await?;
        }
        Ok(())
    }

    /// Key-Value fetch; `None` when the key (or the KV itself) is absent.
    async fn kv_get(&self, cont: &Self::Cont, oid: Oid, key: &[u8]) -> Result<Option<Bytes>>;

    /// Conditional Key-Value insert: writes `key` only if it is absent
    /// and returns the previously-present value when the insert loses.
    /// Backends make the check-and-insert atomic (one serial section at
    /// the object's leader), which is what makes racing `DFS`
    /// create/mkdir calls converge on a single winning dirent. The
    /// default implementation is a non-atomic get-then-put fallback for
    /// backends without conditional updates.
    async fn kv_put_if_absent(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        key: &[u8],
        value: Bytes,
    ) -> Result<Option<Bytes>> {
        if let Some(existing) = self.kv_get(cont, oid, key).await? {
            return Ok(Some(existing));
        }
        self.kv_put(cont, oid, key, value).await?;
        Ok(None)
    }

    /// Key-Value key removal (`daos_kv_remove`). Removing an absent key
    /// — or a key of a never-written KV — is a successful no-op.
    async fn kv_remove(&self, cont: &Self::Cont, oid: Oid, key: &[u8]) -> Result<()>;

    /// Lists the keys of a Key-Value object.
    async fn kv_list_keys(&self, cont: &Self::Cont, oid: Oid) -> Result<Vec<Bytes>>;

    /// Lists the keys of a Key-Value object in `[from, until)`
    /// (`until = None` means unbounded) — the server-side range scan
    /// behind prefix listings, one RPC regardless of how much of the key
    /// space it skips. The default implementation filters a full
    /// listing; backends with ordered storage override it with a real
    /// range scan.
    async fn kv_list_range(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        from: Bytes,
        until: Option<Bytes>,
    ) -> Result<Vec<Bytes>> {
        let keys = self.kv_list_keys(cont, oid).await?;
        Ok(keys
            .into_iter()
            .filter(|k| **k >= *from && until.as_ref().is_none_or(|end| **k < **end))
            .collect())
    }

    /// Creates a new Array object, returning its open handle.
    async fn array_create(&self, cont: &Self::Cont, oid: Oid) -> Result<ArrayHandle>;

    /// Opens an existing Array object.
    async fn array_open(&self, cont: &Self::Cont, oid: Oid) -> Result<ArrayHandle>;

    /// Opens an Array object, creating it if absent (`no-index` re-write
    /// path, where the md5-derived oid is stable).
    async fn array_open_or_create(&self, cont: &Self::Cont, oid: Oid) -> Result<ArrayHandle>;

    /// Writes an extent of an open Array object.
    async fn array_write(
        &self,
        cont: &Self::Cont,
        handle: &ArrayHandle,
        offset: u64,
        data: Bytes,
    ) -> Result<()>;

    /// Scatter-gather write: every `(offset, data)` extent lands in one
    /// request, serviced as a batch. Semantically identical to issuing
    /// the `array_write`s in order.
    async fn array_write_vec(
        &self,
        cont: &Self::Cont,
        handle: &ArrayHandle,
        iovs: Vec<(u64, Bytes)>,
    ) -> Result<()> {
        for (offset, data) in iovs {
            self.array_write(cont, handle, offset, data).await?;
        }
        Ok(())
    }

    /// Reads an extent of an open Array object.
    async fn array_read(
        &self,
        cont: &Self::Cont,
        handle: &ArrayHandle,
        offset: u64,
        len: u64,
    ) -> Result<Bytes>;

    /// Size (one past highest written byte) of an open Array object.
    async fn array_size(&self, cont: &Self::Cont, handle: &ArrayHandle) -> Result<u64>;

    /// Closes an Array object handle, consuming it.
    async fn array_close(&self, cont: &Self::Cont, handle: ArrayHandle) -> Result<()>;

    /// Drops an object's contents.
    async fn obj_punch(&self, cont: &Self::Cont, oid: Oid) -> Result<()>;

    /// Lists the Array objects in a container (reclamation/tooling).
    async fn list_array_objects(&self, cont: &Self::Cont) -> Result<Vec<Oid>>;

    /// Number of targets in the pool backing this client (placement and
    /// striping need it).
    fn pool_targets(&self) -> u32;

    /// Launches `op` as an independently progressing unit of work — the
    /// execution primitive under the [`EventQueue`]. The embedded backend
    /// completes the future inline (its operations never suspend); the
    /// simulated backend spawns a kernel task, so in-flight operations
    /// genuinely overlap in simulated time.
    fn spawn_op(&self, op: OpFuture);
}

/// Allocates unique object ids for one client process: the 96 user bits
/// are `(client id, counter)`, so ids never collide across processes.
#[derive(Debug)]
pub struct OidAllocator {
    client: u32,
    next: u64,
}

impl OidAllocator {
    pub fn new(client: u32) -> Self {
        OidAllocator { client, next: 0 }
    }

    pub fn next(&mut self, class: ObjectClass) -> Oid {
        let oid = Oid::generate(self.client, self.next, class);
        self.next += 1;
        oid
    }
}

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

/// Identifies one launched operation on an [`EventQueue`] — the
/// `daos_event_t` analogue. Ids are unique per queue and returned in the
/// completion stream so callers can correlate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Event(pub u64);

/// The value an asynchronously launched operation resolved to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutput {
    /// Operations that return `()` (puts, writes, punch, close).
    Unit,
    /// `array_read`.
    Data(Bytes),
    /// `kv_get`.
    MaybeData(Option<Bytes>),
    /// `kv_list_keys` / `kv_list_range`.
    Keys(Vec<Bytes>),
    /// `array_size`.
    Size(u64),
}

struct EqInner {
    next: Cell<u64>,
    in_flight: Cell<usize>,
    completed: RefCell<VecDeque<(Event, Result<OpOutput>)>>,
    waiters: RefCell<Vec<Waker>>,
    /// Set by [`EventQueue::abort`] (explicitly, or from the last user
    /// handle's drop). In-flight wrappers observe it at their next poll
    /// and resolve with [`DaosError::Cancelled`] instead of running on.
    cancelled: Cell<bool>,
    /// Waker of each in-flight operation wrapper, keyed by event id, so
    /// `abort` can reach tasks parked deep inside an operation.
    op_wakers: RefCell<HashMap<u64, Waker>>,
}

impl EqInner {
    fn push_completion(&self, ev: Event, out: Result<OpOutput>) {
        self.in_flight.set(self.in_flight.get() - 1);
        self.completed.borrow_mut().push_back((ev, out));
        for w in self.waiters.borrow_mut().drain(..) {
            w.wake();
        }
    }
}

/// Wrapper future around one launched operation: forwards to the real
/// operation until the queue is cancelled, then drops it (cancelling any
/// timers/permits it held) and resolves the event with
/// [`DaosError::Cancelled`]. Registers its waker with the queue on every
/// poll so [`EventQueue::abort`] can wake it out of a park.
struct AbortableOp {
    ev: Event,
    inner: Rc<EqInner>,
    fut: OpResultFuture,
}

type OpResultFuture = Pin<Box<dyn Future<Output = Result<OpOutput>> + 'static>>;

impl Future for AbortableOp {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.inner.cancelled.get() {
            this.inner.op_wakers.borrow_mut().remove(&this.ev.0);
            this.inner
                .push_completion(this.ev, Err(DaosError::Cancelled));
            return Poll::Ready(());
        }
        this.inner
            .op_wakers
            .borrow_mut()
            .insert(this.ev.0, cx.waker().clone());
        match this.fut.as_mut().poll(cx) {
            Poll::Ready(out) => {
                this.inner.op_wakers.borrow_mut().remove(&this.ev.0);
                this.inner.push_completion(this.ev, out);
                Poll::Ready(())
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

/// A `daos_eq`-style event queue over any [`DaosApi`] backend.
///
/// `submit` (or the typed helpers) launches an operation and returns an
/// [`Event`]; completions are harvested with [`poll`](EventQueue::poll)
/// (non-blocking), [`wait`](EventQueue::wait) (suspends until one
/// completes) or [`wait_all`](EventQueue::wait_all). On the simulated
/// backend every in-flight operation is its own kernel task, so network
/// transfer and media service of different operations overlap, each op
/// carrying its own retry/deadline budget, spans and metrics.
pub struct EventQueue<D: DaosApi> {
    client: D,
    inner: Rc<EqInner>,
    /// Counts *user-facing* handles only (operation wrappers hold
    /// `EqInner` but never this token), so the drop of the last clone is
    /// detectable and triggers [`EventQueue::abort`].
    handle: Rc<()>,
}

impl<D: DaosApi> Clone for EventQueue<D> {
    fn clone(&self) -> Self {
        EventQueue {
            client: self.client.clone(),
            inner: Rc::clone(&self.inner),
            handle: Rc::clone(&self.handle),
        }
    }
}

impl<D: DaosApi> Drop for EventQueue<D> {
    /// Dropping the last user handle destroys the queue
    /// (`daos_eq_destroy`): outstanding operations are cancelled rather
    /// than left running as orphaned kernel tasks.
    fn drop(&mut self) {
        if Rc::strong_count(&self.handle) == 1 {
            self.abort();
        }
    }
}

impl<D: DaosApi> EventQueue<D> {
    /// Creates an empty queue over `client` (`daos_eq_create`).
    pub fn new(client: D) -> Self {
        EventQueue {
            client,
            inner: Rc::new(EqInner {
                next: Cell::new(0),
                in_flight: Cell::new(0),
                completed: RefCell::new(VecDeque::new()),
                waiters: RefCell::new(Vec::new()),
                cancelled: Cell::new(false),
                op_wakers: RefCell::new(HashMap::new()),
            }),
            handle: Rc::new(()),
        }
    }

    /// Destroys the queue (`daos_eq_destroy`): every in-flight operation
    /// is woken, dropped without running further (releasing any timers or
    /// permits it held), and resolved as [`DaosError::Cancelled`] in the
    /// completion stream. Later submissions fail the same way without
    /// spawning anything. Idempotent; also runs implicitly when the last
    /// user handle is dropped.
    pub fn abort(&self) {
        if self.inner.cancelled.replace(true) {
            return;
        }
        let wakers: Vec<Waker> = self
            .inner
            .op_wakers
            .borrow_mut()
            .drain()
            .map(|(_, w)| w)
            .collect();
        for w in wakers {
            w.wake();
        }
        // Waiters re-poll: they drain cancelled completions as they land.
        for w in self.inner.waiters.borrow_mut().drain(..) {
            w.wake();
        }
    }

    /// Whether [`EventQueue::abort`] has run (explicitly or via drop).
    pub fn is_aborted(&self) -> bool {
        self.inner.cancelled.get()
    }

    /// The backend this queue launches operations on.
    pub fn client(&self) -> &D {
        &self.client
    }

    /// Number of launched operations that have not yet completed.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.get()
    }

    /// Number of completions waiting to be harvested.
    pub fn completed(&self) -> usize {
        self.inner.completed.borrow().len()
    }

    /// Launches an arbitrary operation future. Prefer the typed helpers;
    /// this is the extension point for composite operations (e.g. the
    /// field writer's create-write-close + index-put pair).
    pub fn submit(&self, fut: impl Future<Output = Result<OpOutput>> + 'static) -> Event {
        let ev = Event(self.inner.next.get());
        self.inner.next.set(ev.0 + 1);
        if self.inner.cancelled.get() {
            // Destroyed queue: fail the event without spawning.
            self.inner
                .completed
                .borrow_mut()
                .push_back((ev, Err(DaosError::Cancelled)));
            return ev;
        }
        self.inner.in_flight.set(self.inner.in_flight.get() + 1);
        self.client.spawn_op(Box::pin(AbortableOp {
            ev,
            inner: Rc::clone(&self.inner),
            fut: Box::pin(fut),
        }));
        ev
    }

    /// Harvests one completion without blocking (`daos_eq_poll` with a
    /// zero timeout). `None` means nothing has completed since the last
    /// harvest — operations may still be in flight.
    pub fn poll(&self) -> Option<(Event, Result<OpOutput>)> {
        self.inner.completed.borrow_mut().pop_front()
    }

    /// Suspends until one completion is available and returns it
    /// (`daos_eq_poll` with an infinite timeout). Returns `None` iff the
    /// queue is idle: nothing in flight and nothing to harvest.
    pub fn wait(&self) -> EqWait {
        EqWait {
            inner: Rc::clone(&self.inner),
        }
    }

    /// Waits for every in-flight operation and returns all unharvested
    /// completions in completion order.
    pub async fn wait_all(&self) -> Vec<(Event, Result<OpOutput>)> {
        let mut out = Vec::new();
        while let Some(c) = self.wait().await {
            out.push(c);
        }
        out
    }

    /// Suspends until fewer than `limit` operations are in flight,
    /// returning every completion harvested along the way (in completion
    /// order) so the caller's bookkeeping sees each event exactly once.
    ///
    /// This is the windowed-submission primitive: unlike an open-coded
    /// `while in_flight() >= limit { wait().await }` loop, the whole wait
    /// is one future, parked on the queue's waiter list and advanced only
    /// by completions — there is no ready/recheck cycle for a perturbed
    /// scheduler to spin or livelock.
    pub fn wait_capacity(&self, limit: usize) -> EqCapacity {
        EqCapacity {
            inner: Rc::clone(&self.inner),
            limit: limit.max(1),
            harvested: Vec::new(),
        }
    }

    // -- typed launch helpers ----------------------------------------------

    /// Launches a `kv_put`.
    pub fn kv_put(&self, cont: &D::Cont, oid: Oid, key: &[u8], value: Bytes) -> Event {
        let (client, cont, key) = (self.client.clone(), cont.clone(), key.to_vec());
        self.submit(async move {
            client
                .kv_put(&cont, oid, &key, value)
                .await
                .map(|()| OpOutput::Unit)
        })
    }

    /// Launches a vectorized `kv_put_multi`.
    pub fn kv_put_multi(&self, cont: &D::Cont, oid: Oid, pairs: Vec<(Bytes, Bytes)>) -> Event {
        let (client, cont) = (self.client.clone(), cont.clone());
        self.submit(async move {
            client
                .kv_put_multi(&cont, oid, pairs)
                .await
                .map(|()| OpOutput::Unit)
        })
    }

    /// Launches a `kv_get`; completes with [`OpOutput::MaybeData`].
    pub fn kv_get(&self, cont: &D::Cont, oid: Oid, key: &[u8]) -> Event {
        let (client, cont, key) = (self.client.clone(), cont.clone(), key.to_vec());
        self.submit(async move {
            client
                .kv_get(&cont, oid, &key)
                .await
                .map(OpOutput::MaybeData)
        })
    }

    /// Launches a `kv_list_keys`; completes with [`OpOutput::Keys`].
    pub fn kv_list_keys(&self, cont: &D::Cont, oid: Oid) -> Event {
        let (client, cont) = (self.client.clone(), cont.clone());
        self.submit(async move { client.kv_list_keys(&cont, oid).await.map(OpOutput::Keys) })
    }

    /// Launches a `kv_list_range`; completes with [`OpOutput::Keys`].
    pub fn kv_list_range(
        &self,
        cont: &D::Cont,
        oid: Oid,
        from: Bytes,
        until: Option<Bytes>,
    ) -> Event {
        let (client, cont) = (self.client.clone(), cont.clone());
        self.submit(async move {
            client
                .kv_list_range(&cont, oid, from, until)
                .await
                .map(OpOutput::Keys)
        })
    }

    /// Launches an `array_write` against an open handle. The operation
    /// borrows the handle's identity, not the handle itself, so the
    /// caller keeps it to close after completion.
    pub fn array_write(
        &self,
        cont: &D::Cont,
        handle: &ArrayHandle,
        offset: u64,
        data: Bytes,
    ) -> Event {
        let (client, cont) = (self.client.clone(), cont.clone());
        let h = ArrayHandle::from_open(handle.oid());
        self.submit(async move {
            client
                .array_write(&cont, &h, offset, data)
                .await
                .map(|()| OpOutput::Unit)
        })
    }

    /// Launches a scatter-gather `array_write_vec`.
    pub fn array_write_vec(
        &self,
        cont: &D::Cont,
        handle: &ArrayHandle,
        iovs: Vec<(u64, Bytes)>,
    ) -> Event {
        let (client, cont) = (self.client.clone(), cont.clone());
        let h = ArrayHandle::from_open(handle.oid());
        self.submit(async move {
            client
                .array_write_vec(&cont, &h, iovs)
                .await
                .map(|()| OpOutput::Unit)
        })
    }

    /// Launches an `array_read`; completes with [`OpOutput::Data`].
    pub fn array_read(&self, cont: &D::Cont, handle: &ArrayHandle, offset: u64, len: u64) -> Event {
        let (client, cont) = (self.client.clone(), cont.clone());
        let h = ArrayHandle::from_open(handle.oid());
        self.submit(async move {
            client
                .array_read(&cont, &h, offset, len)
                .await
                .map(OpOutput::Data)
        })
    }

    /// Launches an `array_size`; completes with [`OpOutput::Size`].
    pub fn array_size(&self, cont: &D::Cont, handle: &ArrayHandle) -> Event {
        let (client, cont) = (self.client.clone(), cont.clone());
        let h = ArrayHandle::from_open(handle.oid());
        self.submit(async move { client.array_size(&cont, &h).await.map(OpOutput::Size) })
    }
}

/// Future returned by [`EventQueue::wait`].
pub struct EqWait {
    inner: Rc<EqInner>,
}

impl Future for EqWait {
    type Output = Option<(Event, Result<OpOutput>)>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(c) = self.inner.completed.borrow_mut().pop_front() {
            return Poll::Ready(Some(c));
        }
        if self.inner.in_flight.get() == 0 {
            return Poll::Ready(None);
        }
        self.inner.waiters.borrow_mut().push(cx.waker().clone());
        Poll::Pending
    }
}

/// Future returned by [`EventQueue::wait_capacity`]: resolves with the
/// completions harvested while waiting for the in-flight count to drop
/// below the limit.
pub struct EqCapacity {
    inner: Rc<EqInner>,
    limit: usize,
    harvested: Vec<(Event, Result<OpOutput>)>,
}

impl Future for EqCapacity {
    type Output = Vec<(Event, Result<OpOutput>)>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        // Harvest everything available first: completions seen by this
        // future must reach the caller even if capacity already opened,
        // or per-event bookkeeping would leak them.
        while let Some(c) = this.inner.completed.borrow_mut().pop_front() {
            this.harvested.push(c);
        }
        if this.inner.in_flight.get() < this.limit {
            return Poll::Ready(std::mem::take(&mut this.harvested));
        }
        this.inner.waiters.borrow_mut().push(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Embedded backend
// ---------------------------------------------------------------------------

/// The embedded (in-process, instantaneous) backend over one pool.
#[derive(Clone)]
pub struct EmbeddedClient {
    pool: Arc<Pool>,
}

impl EmbeddedClient {
    pub fn new(pool: Arc<Pool>) -> Self {
        EmbeddedClient { pool }
    }

    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }
}

impl DaosApi for EmbeddedClient {
    type Cont = Arc<Container>;

    async fn cont_open_or_create(&self, uuid: Uuid) -> Result<Self::Cont> {
        self.pool.cont_open_or_create(uuid)
    }

    async fn cont_open(&self, uuid: Uuid) -> Result<Self::Cont> {
        self.pool.cont_open(uuid)
    }

    async fn kv_put(&self, cont: &Self::Cont, oid: Oid, key: &[u8], value: Bytes) -> Result<()> {
        self.pool.charge((key.len() + value.len()) as u64)?;
        cont.kv_put(oid, key, value).map(|_| ())
    }

    async fn kv_put_multi(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        pairs: Vec<(Bytes, Bytes)>,
    ) -> Result<()> {
        let bytes: usize = pairs.iter().map(|(k, v)| k.len() + v.len()).sum();
        self.pool.charge(bytes as u64)?;
        cont.kv_put_multi(oid, pairs)
    }

    async fn kv_get(&self, cont: &Self::Cont, oid: Oid, key: &[u8]) -> Result<Option<Bytes>> {
        cont.kv_get(oid, key)
    }

    async fn kv_put_if_absent(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        key: &[u8],
        value: Bytes,
    ) -> Result<Option<Bytes>> {
        // Only a winning insert consumes pool capacity.
        match cont.kv_put_if_absent(oid, key, value.clone())? {
            Some(existing) => Ok(Some(existing)),
            None => {
                self.pool.charge((key.len() + value.len()) as u64)?;
                Ok(None)
            }
        }
    }

    async fn kv_remove(&self, cont: &Self::Cont, oid: Oid, key: &[u8]) -> Result<()> {
        match cont.kv_remove(oid, key) {
            Ok(_) | Err(DaosError::ObjNotFound(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    async fn kv_list_keys(&self, cont: &Self::Cont, oid: Oid) -> Result<Vec<Bytes>> {
        cont.kv_list_keys(oid)
    }

    async fn kv_list_range(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        from: Bytes,
        until: Option<Bytes>,
    ) -> Result<Vec<Bytes>> {
        cont.kv_list_range(oid, &from, until.as_deref())
    }

    async fn array_create(&self, cont: &Self::Cont, oid: Oid) -> Result<ArrayHandle> {
        cont.array_create(oid)?;
        Ok(ArrayHandle::from_open(oid))
    }

    async fn array_open(&self, cont: &Self::Cont, oid: Oid) -> Result<ArrayHandle> {
        cont.array_open(oid)?;
        Ok(ArrayHandle::from_open(oid))
    }

    async fn array_open_or_create(&self, cont: &Self::Cont, oid: Oid) -> Result<ArrayHandle> {
        cont.array_open_or_create(oid)?;
        Ok(ArrayHandle::from_open(oid))
    }

    async fn array_write(
        &self,
        cont: &Self::Cont,
        handle: &ArrayHandle,
        offset: u64,
        data: Bytes,
    ) -> Result<()> {
        self.pool.charge(data.len() as u64)?;
        cont.array_write(handle.oid(), offset, data)
    }

    async fn array_write_vec(
        &self,
        cont: &Self::Cont,
        handle: &ArrayHandle,
        iovs: Vec<(u64, Bytes)>,
    ) -> Result<()> {
        let bytes: usize = iovs.iter().map(|(_, d)| d.len()).sum();
        self.pool.charge(bytes as u64)?;
        cont.array_write_vec(handle.oid(), iovs)
    }

    async fn array_read(
        &self,
        cont: &Self::Cont,
        handle: &ArrayHandle,
        offset: u64,
        len: u64,
    ) -> Result<Bytes> {
        cont.array_read(handle.oid(), offset, len)
    }

    async fn array_size(&self, cont: &Self::Cont, handle: &ArrayHandle) -> Result<u64> {
        cont.array_size(handle.oid())
    }

    async fn array_close(&self, _cont: &Self::Cont, _handle: ArrayHandle) -> Result<()> {
        Ok(())
    }

    async fn obj_punch(&self, cont: &Self::Cont, oid: Oid) -> Result<()> {
        cont.obj_punch(oid)
    }

    async fn list_array_objects(&self, cont: &Self::Cont) -> Result<Vec<Oid>> {
        Ok(cont.list_arrays())
    }

    fn pool_targets(&self) -> u32 {
        self.pool.targets()
    }

    fn spawn_op(&self, op: OpFuture) {
        // Embedded operations never suspend: complete inline, so launch
        // order equals completion order and EventQueue programs behave
        // like their sequential expansion.
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let mut op = op;
        match op.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {}
            Poll::Pending => panic!("embedded backend operation suspended"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DaosError;
    use crate::store::DaosStore;

    fn block_on<F: std::future::Future>(fut: F) -> F::Output {
        // The embedded backend never actually suspends; poll once.
        let waker = std::task::Waker::noop();
        let mut cx = std::task::Context::from_waker(waker);
        let mut fut = std::pin::pin!(fut);
        match fut.as_mut().poll(&mut cx) {
            std::task::Poll::Ready(v) => v,
            std::task::Poll::Pending => panic!("embedded backend suspended"),
        }
    }

    #[test]
    fn embedded_roundtrip_through_trait() {
        let (_store, pool) = DaosStore::with_single_pool(24);
        let client = EmbeddedClient::new(pool);
        let mut alloc = OidAllocator::new(1);
        block_on(async {
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"c"))
                .await
                .unwrap();
            let oid = alloc.next(ObjectClass::S1);
            let h = client.array_create(&cont, oid).await.unwrap();
            client
                .array_write(&cont, &h, 0, Bytes::from_static(b"payload"))
                .await
                .unwrap();
            let data = client.array_read(&cont, &h, 0, 7).await.unwrap();
            assert_eq!(data.as_ref(), b"payload");
            assert_eq!(client.array_size(&cont, &h).await.unwrap(), 7);
            client.array_close(&cont, h).await.unwrap();

            let kv = alloc.next(ObjectClass::SX);
            client
                .kv_put(&cont, kv, b"step=0", Bytes::from_static(b"ref"))
                .await
                .unwrap();
            assert_eq!(
                client
                    .kv_get(&cont, kv, b"step=0")
                    .await
                    .unwrap()
                    .unwrap()
                    .as_ref(),
                b"ref"
            );
            assert_eq!(client.kv_list_keys(&cont, kv).await.unwrap().len(), 1);
        });
    }

    #[test]
    fn handle_carries_oid_and_open_checks_type() {
        let (_store, pool) = DaosStore::with_single_pool(24);
        let client = EmbeddedClient::new(pool);
        let mut alloc = OidAllocator::new(3);
        block_on(async {
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"h"))
                .await
                .unwrap();
            let oid = alloc.next(ObjectClass::S1);
            let h = client.array_create(&cont, oid).await.unwrap();
            assert_eq!(h.oid(), oid);
            client.array_close(&cont, h).await.unwrap();
            // Re-open the same object: a fresh handle.
            let h2 = client.array_open(&cont, oid).await.unwrap();
            client.array_close(&cont, h2).await.unwrap();
            // Opening a KV as an array is a type error.
            let kv = alloc.next(ObjectClass::SX);
            client.kv_put(&cont, kv, b"k", Bytes::new()).await.unwrap();
            assert_eq!(
                client.array_open(&cont, kv).await.unwrap_err(),
                DaosError::WrongType(kv)
            );
        });
    }

    #[test]
    fn oid_allocator_is_unique_across_clients() {
        let mut a = OidAllocator::new(1);
        let mut b = OidAllocator::new(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.next(ObjectClass::S1)));
            assert!(seen.insert(b.next(ObjectClass::S1)));
        }
    }

    #[test]
    fn charge_accounts_array_writes() {
        let (_store, pool) = DaosStore::with_single_pool(4);
        let client = EmbeddedClient::new(Arc::clone(&pool));
        block_on(async {
            let cont = client.cont_open_or_create(Uuid::NIL).await.unwrap();
            let oid = OidAllocator::new(0).next(ObjectClass::S1);
            let h = client.array_create(&cont, oid).await.unwrap();
            client
                .array_write(&cont, &h, 0, Bytes::from(vec![0u8; 1000]))
                .await
                .unwrap();
            client.array_close(&cont, h).await.unwrap();
        });
        assert_eq!(pool.used(), 1000);
    }

    #[test]
    fn vectorized_ops_match_sequential_and_charge_once() {
        let (_store, pool) = DaosStore::with_single_pool(8);
        let client = EmbeddedClient::new(Arc::clone(&pool));
        let mut alloc = OidAllocator::new(7);
        block_on(async {
            let cont = client.cont_open_or_create(Uuid::NIL).await.unwrap();
            let kv = alloc.next(ObjectClass::SX);
            client
                .kv_put_multi(
                    &cont,
                    kv,
                    vec![
                        (Bytes::from_static(b"a"), Bytes::from_static(b"1")),
                        (Bytes::from_static(b"b"), Bytes::from_static(b"2")),
                    ],
                )
                .await
                .unwrap();
            assert_eq!(
                client
                    .kv_get(&cont, kv, b"a")
                    .await
                    .unwrap()
                    .unwrap()
                    .as_ref(),
                b"1"
            );
            assert_eq!(client.kv_list_keys(&cont, kv).await.unwrap().len(), 2);

            let oid = alloc.next(ObjectClass::S1);
            let h = client.array_create(&cont, oid).await.unwrap();
            client
                .array_write_vec(
                    &cont,
                    &h,
                    vec![
                        (0, Bytes::from_static(b"head")),
                        (4, Bytes::from_static(b"tail")),
                    ],
                )
                .await
                .unwrap();
            assert_eq!(
                client.array_read(&cont, &h, 0, 8).await.unwrap().as_ref(),
                b"headtail"
            );
            client.array_close(&cont, h).await.unwrap();
        });
        // 1+1 + 1+1 KV bytes and 8 array bytes.
        assert_eq!(pool.used(), 12);
    }

    #[test]
    fn event_queue_completes_inline_on_embedded() {
        let (_store, pool) = DaosStore::with_single_pool(24);
        let client = EmbeddedClient::new(pool);
        let mut alloc = OidAllocator::new(9);
        block_on(async {
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"eq"))
                .await
                .unwrap();
            let eq = EventQueue::new(client.clone());
            let kv = alloc.next(ObjectClass::SX);
            let oid = alloc.next(ObjectClass::S1);
            let h = client.array_create(&cont, oid).await.unwrap();

            let e1 = eq.kv_put(&cont, kv, b"k", Bytes::from_static(b"v"));
            let e2 = eq.array_write(&cont, &h, 0, Bytes::from_static(b"data"));
            let e3 = eq.kv_get(&cont, kv, b"k");
            assert_eq!(eq.in_flight(), 0, "embedded ops complete inline");
            assert_eq!(eq.completed(), 3);

            // Completion order equals launch order on the embedded backend.
            let all = eq.wait_all().await;
            assert_eq!(
                all.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
                vec![e1, e2, e3]
            );
            assert_eq!(all[0].1.as_ref().unwrap(), &OpOutput::Unit);
            assert_eq!(all[1].1.as_ref().unwrap(), &OpOutput::Unit);
            assert_eq!(
                all[2].1.as_ref().unwrap(),
                &OpOutput::MaybeData(Some(Bytes::from_static(b"v")))
            );

            // Errors travel through the completion stream, not panics.
            let missing = alloc.next(ObjectClass::S1);
            let bad = ArrayHandle::from_open(missing);
            eq.array_read(&cont, &bad, 0, 1);
            let (_, res) = eq.wait().await.unwrap();
            assert_eq!(res.unwrap_err(), DaosError::ObjNotFound(missing));
            assert!(eq.wait().await.is_none(), "idle queue waits return None");

            client.array_close(&cont, h).await.unwrap();
        });
    }

    #[test]
    fn aborted_queue_cancels_completions_and_rejects_new_submissions() {
        let (_store, pool) = DaosStore::with_single_pool(24);
        let client = EmbeddedClient::new(pool);
        let mut alloc = OidAllocator::new(10);
        block_on(async {
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"eq-abort"))
                .await
                .unwrap();
            let eq = EventQueue::new(client.clone());
            let kv = alloc.next(ObjectClass::SX);
            eq.kv_put(&cont, kv, b"k", Bytes::from_static(b"v"));
            // Embedded ops complete inline, so the pre-abort completion
            // keeps its real outcome...
            eq.abort();
            assert!(eq.is_aborted());
            let (_, res) = eq.wait().await.unwrap();
            assert_eq!(res.unwrap(), OpOutput::Unit);
            // ...but a destroyed queue fails later launches without
            // spawning (daos_eq_destroy semantics).
            let ev = eq.kv_get(&cont, kv, b"k");
            let (got, res) = eq.wait().await.unwrap();
            assert_eq!(got, ev);
            assert_eq!(res.unwrap_err(), DaosError::Cancelled);
            assert_eq!(eq.in_flight(), 0);
        });
    }

    #[test]
    fn wait_capacity_returns_harvest_and_respects_limit() {
        let (_store, pool) = DaosStore::with_single_pool(24);
        let client = EmbeddedClient::new(pool);
        let mut alloc = OidAllocator::new(11);
        block_on(async {
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"eq-cap"))
                .await
                .unwrap();
            let eq = EventQueue::new(client.clone());
            let kv = alloc.next(ObjectClass::SX);
            // Embedded: nothing stays in flight, so capacity is granted
            // immediately and pending completions ride back with it.
            let e1 = eq.kv_put(&cont, kv, b"a", Bytes::from_static(b"1"));
            let e2 = eq.kv_put(&cont, kv, b"b", Bytes::from_static(b"2"));
            let harvested = eq.wait_capacity(1).await;
            assert_eq!(
                harvested.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
                vec![e1, e2]
            );
            assert!(eq.wait_capacity(1).await.is_empty(), "nothing left");
        });
    }
}
