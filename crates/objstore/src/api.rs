//! The client API surface shared by every backend.
//!
//! The paper's field I/O functions are written against the DAOS C API;
//! here the same operation set is a trait so the functions run unchanged
//! over (a) the embedded in-memory store — instantaneous, for real use
//! and correctness testing — and (b) the simulated cluster — where each
//! operation charges modelled time.
//!
//! Methods are `async`: the embedded backend completes immediately, the
//! simulated one suspends the calling task on network and service events.

use bytes::Bytes;
use std::sync::Arc;

use crate::container::Container;
use crate::error::Result;
use crate::oid::{ObjectClass, Oid};
use crate::pool::Pool;

pub use crate::uuid::Uuid;

/// The DAOS operation set the field I/O layer consumes.
#[allow(async_fn_in_trait)]
pub trait DaosApi: Clone + 'static {
    /// Opaque open-container handle.
    type Cont: Clone + 'static;

    /// Opens container `uuid`, creating it if absent — the race-safe
    /// create-or-open the md5-derived container scheme relies on.
    async fn cont_open_or_create(&self, uuid: Uuid) -> Result<Self::Cont>;

    /// Opens an existing container.
    async fn cont_open(&self, uuid: Uuid) -> Result<Self::Cont>;

    /// Key-Value update (creates the KV object on first use).
    async fn kv_put(&self, cont: &Self::Cont, oid: Oid, key: &[u8], value: Bytes) -> Result<()>;

    /// Key-Value fetch; `None` when the key (or the KV itself) is absent.
    async fn kv_get(&self, cont: &Self::Cont, oid: Oid, key: &[u8]) -> Result<Option<Bytes>>;

    /// Lists the keys of a Key-Value object.
    async fn kv_list_keys(&self, cont: &Self::Cont, oid: Oid) -> Result<Vec<Vec<u8>>>;

    /// Creates a new Array object.
    async fn array_create(&self, cont: &Self::Cont, oid: Oid) -> Result<()>;

    /// Opens an existing Array object.
    async fn array_open(&self, cont: &Self::Cont, oid: Oid) -> Result<()>;

    /// Opens an Array object, creating it if absent (`no-index` re-write
    /// path, where the md5-derived oid is stable).
    async fn array_open_or_create(&self, cont: &Self::Cont, oid: Oid) -> Result<()>;

    /// Writes an extent of an (open) Array object.
    async fn array_write(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        offset: u64,
        data: Bytes,
    ) -> Result<()>;

    /// Reads an extent of an (open) Array object.
    async fn array_read(&self, cont: &Self::Cont, oid: Oid, offset: u64, len: u64)
        -> Result<Bytes>;

    /// Size (one past highest written byte) of an Array object.
    async fn array_size(&self, cont: &Self::Cont, oid: Oid) -> Result<u64>;

    /// Closes an Array object handle.
    async fn array_close(&self, cont: &Self::Cont, oid: Oid) -> Result<()>;

    /// Drops an object's contents.
    async fn obj_punch(&self, cont: &Self::Cont, oid: Oid) -> Result<()>;

    /// Lists the Array objects in a container (reclamation/tooling).
    async fn list_array_objects(&self, cont: &Self::Cont) -> Result<Vec<Oid>>;

    /// Number of targets in the pool backing this client (placement and
    /// striping need it).
    fn pool_targets(&self) -> u32;
}

/// Allocates unique object ids for one client process: the 96 user bits
/// are `(client id, counter)`, so ids never collide across processes.
#[derive(Debug)]
pub struct OidAllocator {
    client: u32,
    next: u64,
}

impl OidAllocator {
    pub fn new(client: u32) -> Self {
        OidAllocator { client, next: 0 }
    }

    pub fn next(&mut self, class: ObjectClass) -> Oid {
        let oid = Oid::generate(self.client, self.next, class);
        self.next += 1;
        oid
    }
}

/// The embedded (in-process, instantaneous) backend over one pool.
#[derive(Clone)]
pub struct EmbeddedClient {
    pool: Arc<Pool>,
}

impl EmbeddedClient {
    pub fn new(pool: Arc<Pool>) -> Self {
        EmbeddedClient { pool }
    }

    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }
}

impl DaosApi for EmbeddedClient {
    type Cont = Arc<Container>;

    async fn cont_open_or_create(&self, uuid: Uuid) -> Result<Self::Cont> {
        self.pool.cont_open_or_create(uuid)
    }

    async fn cont_open(&self, uuid: Uuid) -> Result<Self::Cont> {
        self.pool.cont_open(uuid)
    }

    async fn kv_put(&self, cont: &Self::Cont, oid: Oid, key: &[u8], value: Bytes) -> Result<()> {
        self.pool.charge((key.len() + value.len()) as u64)?;
        cont.kv_put(oid, key, value).map(|_| ())
    }

    async fn kv_get(&self, cont: &Self::Cont, oid: Oid, key: &[u8]) -> Result<Option<Bytes>> {
        cont.kv_get(oid, key)
    }

    async fn kv_list_keys(&self, cont: &Self::Cont, oid: Oid) -> Result<Vec<Vec<u8>>> {
        cont.kv_list_keys(oid)
    }

    async fn array_create(&self, cont: &Self::Cont, oid: Oid) -> Result<()> {
        cont.array_create(oid)
    }

    async fn array_open(&self, cont: &Self::Cont, oid: Oid) -> Result<()> {
        cont.array_open(oid)
    }

    async fn array_open_or_create(&self, cont: &Self::Cont, oid: Oid) -> Result<()> {
        cont.array_open_or_create(oid)
    }

    async fn array_write(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        offset: u64,
        data: Bytes,
    ) -> Result<()> {
        self.pool.charge(data.len() as u64)?;
        cont.array_write(oid, offset, data)
    }

    async fn array_read(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        offset: u64,
        len: u64,
    ) -> Result<Bytes> {
        cont.array_read(oid, offset, len)
    }

    async fn array_size(&self, cont: &Self::Cont, oid: Oid) -> Result<u64> {
        cont.array_size(oid)
    }

    async fn array_close(&self, _cont: &Self::Cont, _oid: Oid) -> Result<()> {
        Ok(())
    }

    async fn obj_punch(&self, cont: &Self::Cont, oid: Oid) -> Result<()> {
        cont.obj_punch(oid)
    }

    async fn list_array_objects(&self, cont: &Self::Cont) -> Result<Vec<Oid>> {
        Ok(cont.list_arrays())
    }

    fn pool_targets(&self) -> u32 {
        self.pool.targets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DaosStore;

    fn block_on<F: std::future::Future>(fut: F) -> F::Output {
        // The embedded backend never actually suspends; poll once.
        let waker = std::task::Waker::noop();
        let mut cx = std::task::Context::from_waker(waker);
        let mut fut = std::pin::pin!(fut);
        match fut.as_mut().poll(&mut cx) {
            std::task::Poll::Ready(v) => v,
            std::task::Poll::Pending => panic!("embedded backend suspended"),
        }
    }

    #[test]
    fn embedded_roundtrip_through_trait() {
        let (_store, pool) = DaosStore::with_single_pool(24);
        let client = EmbeddedClient::new(pool);
        let mut alloc = OidAllocator::new(1);
        block_on(async {
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"c"))
                .await
                .unwrap();
            let oid = alloc.next(ObjectClass::S1);
            client.array_create(&cont, oid).await.unwrap();
            client
                .array_write(&cont, oid, 0, Bytes::from_static(b"payload"))
                .await
                .unwrap();
            let data = client.array_read(&cont, oid, 0, 7).await.unwrap();
            assert_eq!(data.as_ref(), b"payload");
            assert_eq!(client.array_size(&cont, oid).await.unwrap(), 7);
            client.array_close(&cont, oid).await.unwrap();

            let kv = alloc.next(ObjectClass::SX);
            client
                .kv_put(&cont, kv, b"step=0", Bytes::from_static(b"ref"))
                .await
                .unwrap();
            assert_eq!(
                client
                    .kv_get(&cont, kv, b"step=0")
                    .await
                    .unwrap()
                    .unwrap()
                    .as_ref(),
                b"ref"
            );
            assert_eq!(client.kv_list_keys(&cont, kv).await.unwrap().len(), 1);
        });
    }

    #[test]
    fn oid_allocator_is_unique_across_clients() {
        let mut a = OidAllocator::new(1);
        let mut b = OidAllocator::new(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.next(ObjectClass::S1)));
            assert!(seen.insert(b.next(ObjectClass::S1)));
        }
    }

    #[test]
    fn charge_accounts_array_writes() {
        let (_store, pool) = DaosStore::with_single_pool(4);
        let client = EmbeddedClient::new(Arc::clone(&pool));
        block_on(async {
            let cont = client.cont_open_or_create(Uuid::NIL).await.unwrap();
            let oid = OidAllocator::new(0).next(ObjectClass::S1);
            client.array_create(&cont, oid).await.unwrap();
            client
                .array_write(&cont, oid, 0, Bytes::from(vec![0u8; 1000]))
                .await
                .unwrap();
        });
        assert_eq!(pool.used(), 1000);
    }
}
