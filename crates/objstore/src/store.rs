//! The store root: a system hosting pools.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{DaosError, Result};
use crate::pool::Pool;
use crate::uuid::Uuid;

/// Default pool capacity when unspecified: effectively unlimited for
/// in-memory use.
pub const DEFAULT_POOL_CAPACITY: u64 = u64::MAX / 2;

/// The root of a DAOS-like system: the set of pools.
#[derive(Default)]
pub struct DaosStore {
    pools: RwLock<HashMap<Uuid, Arc<Pool>>>,
}

impl DaosStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn pool_create(&self, uuid: Uuid, targets: u32, capacity: u64) -> Result<Arc<Pool>> {
        let mut pools = self.pools.write();
        if pools.contains_key(&uuid) {
            return Err(DaosError::InvalidArg("pool already exists"));
        }
        let p = Arc::new(Pool::new(uuid, targets, capacity));
        pools.insert(uuid, Arc::clone(&p));
        Ok(p)
    }

    pub fn pool_connect(&self, uuid: Uuid) -> Result<Arc<Pool>> {
        self.pools
            .read()
            .get(&uuid)
            .cloned()
            .ok_or(DaosError::PoolNotFound(uuid))
    }

    pub fn pool_destroy(&self, uuid: Uuid) -> Result<()> {
        self.pools
            .write()
            .remove(&uuid)
            .map(|_| ())
            .ok_or(DaosError::PoolNotFound(uuid))
    }

    pub fn pool_count(&self) -> usize {
        self.pools.read().len()
    }

    /// Convenience: a fresh single-pool store, returning `(store, pool)`.
    pub fn with_single_pool(targets: u32) -> (Arc<DaosStore>, Arc<Pool>) {
        let store = Arc::new(DaosStore::new());
        let pool = store
            .pool_create(
                Uuid::from_name(b"default-pool"),
                targets,
                DEFAULT_POOL_CAPACITY,
            )
            .expect("fresh store cannot have the pool already");
        (store, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_lifecycle() {
        let s = DaosStore::new();
        let u = Uuid::from_name(b"p");
        s.pool_create(u, 12, 1 << 40).unwrap();
        assert!(s.pool_create(u, 12, 1 << 40).is_err());
        assert_eq!(s.pool_connect(u).unwrap().targets(), 12);
        s.pool_destroy(u).unwrap();
        assert_eq!(s.pool_connect(u).err(), Some(DaosError::PoolNotFound(u)));
        assert_eq!(s.pool_count(), 0);
    }

    #[test]
    fn with_single_pool_works() {
        let (store, pool) = DaosStore::with_single_pool(24);
        assert_eq!(store.pool_count(), 1);
        assert_eq!(pool.targets(), 24);
        assert_eq!(store.pool_connect(pool.uuid()).unwrap().uuid(), pool.uuid());
    }
}
