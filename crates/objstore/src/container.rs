//! Containers: per-dataset object namespaces with their own id space.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::array::ArrayObject;
use crate::error::{DaosError, Result};
use crate::kv::KvObject;
use crate::oid::Oid;
use crate::uuid::Uuid;

/// Aggregate content statistics of a container.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContainerStats {
    pub objects: usize,
    pub kv_objects: usize,
    pub array_objects: usize,
    pub kv_entries: usize,
    /// Live array extent bytes (trimmed extents excluded).
    pub array_bytes: u64,
}

/// An object stored in a container.
#[derive(Debug, Clone)]
pub enum Object {
    Kv(KvObject),
    Array(ArrayObject),
}

/// Running operation totals of one container, kept with relaxed atomics
/// (the container is shared across threads in snapshot tooling). The
/// observability registry folds these into `objstore.*` counters.
#[derive(Default, Debug)]
struct OpTally {
    kv_updates: AtomicU64,
    kv_fetches: AtomicU64,
    array_updates: AtomicU64,
    array_fetches: AtomicU64,
}

/// Point-in-time copy of a container's operation totals. Updates count
/// `kv_put`/`kv_remove` and `array_write`/`array_set_parity`; fetches
/// count `kv_get`/`kv_list_keys` and `array_read`/`array_parity`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    pub kv_updates: u64,
    pub kv_fetches: u64,
    pub array_updates: u64,
    pub array_fetches: u64,
}

/// A transactional object namespace. Thread-safe: the object table takes a
/// read lock for lookups and individual objects have their own locks, so
/// concurrent operations on distinct objects do not serialize.
pub struct Container {
    uuid: Uuid,
    objects: RwLock<HashMap<Oid, Arc<RwLock<Object>>>>,
    ops: OpTally,
}

impl Container {
    pub fn new(uuid: Uuid) -> Self {
        Container {
            uuid,
            objects: RwLock::new(HashMap::new()),
            ops: OpTally::default(),
        }
    }

    /// Operation totals since creation.
    pub fn op_counts(&self) -> OpCounts {
        OpCounts {
            kv_updates: self.ops.kv_updates.load(Ordering::Relaxed),
            kv_fetches: self.ops.kv_fetches.load(Ordering::Relaxed),
            array_updates: self.ops.array_updates.load(Ordering::Relaxed),
            array_fetches: self.ops.array_fetches.load(Ordering::Relaxed),
        }
    }

    pub fn uuid(&self) -> Uuid {
        self.uuid
    }

    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    pub fn obj_exists(&self, oid: Oid) -> bool {
        self.objects.read().contains_key(&oid)
    }

    fn get_obj(&self, oid: Oid) -> Result<Arc<RwLock<Object>>> {
        self.objects
            .read()
            .get(&oid)
            .cloned()
            .ok_or(DaosError::ObjNotFound(oid))
    }

    /// Fetches or lazily creates the Key-Value object `oid` (DAOS KVs
    /// materialize on first update).
    fn get_or_create_kv(&self, oid: Oid) -> Result<Arc<RwLock<Object>>> {
        if let Some(o) = self.objects.read().get(&oid) {
            return Ok(Arc::clone(o));
        }
        let mut table = self.objects.write();
        Ok(Arc::clone(table.entry(oid).or_insert_with(|| {
            Arc::new(RwLock::new(Object::Kv(KvObject::new())))
        })))
    }

    // -- Key-Value API ----------------------------------------------------

    /// Inserts `key` into KV `oid`; returns the previous value, if any.
    pub fn kv_put(&self, oid: Oid, key: &[u8], value: Bytes) -> Result<Option<Bytes>> {
        self.ops.kv_updates.fetch_add(1, Ordering::Relaxed);
        let obj = self.get_or_create_kv(oid)?;
        let mut guard = obj.write();
        match &mut *guard {
            Object::Kv(kv) => Ok(kv.put(key, value)),
            Object::Array(_) => Err(DaosError::WrongType(oid)),
        }
    }

    /// Conditional insert into KV `oid`: writes `key` only if it is
    /// absent, returning the already-present value when the insert
    /// loses. Check and insert happen under one object-lock
    /// acquisition — the atomic dirent insert the DFS namespace's
    /// create/mkdir race-resolution relies on.
    pub fn kv_put_if_absent(&self, oid: Oid, key: &[u8], value: Bytes) -> Result<Option<Bytes>> {
        self.ops.kv_updates.fetch_add(1, Ordering::Relaxed);
        let obj = self.get_or_create_kv(oid)?;
        let mut guard = obj.write();
        match &mut *guard {
            Object::Kv(kv) => match kv.get(key) {
                Some(existing) => Ok(Some(existing)),
                None => {
                    kv.put(key, value);
                    Ok(None)
                }
            },
            Object::Array(_) => Err(DaosError::WrongType(oid)),
        }
    }

    /// Vectorized insert into KV `oid`: all pairs land under one object
    /// lock acquisition (the batch the event-queue layer ships as a
    /// single request). Equivalent to `kv_put` of each pair in order.
    pub fn kv_put_multi(&self, oid: Oid, pairs: Vec<(Bytes, Bytes)>) -> Result<()> {
        self.ops
            .kv_updates
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        let obj = self.get_or_create_kv(oid)?;
        let mut guard = obj.write();
        match &mut *guard {
            Object::Kv(kv) => {
                kv.put_many(pairs);
                Ok(())
            }
            Object::Array(_) => Err(DaosError::WrongType(oid)),
        }
    }

    pub fn kv_get(&self, oid: Oid, key: &[u8]) -> Result<Option<Bytes>> {
        self.ops.kv_fetches.fetch_add(1, Ordering::Relaxed);
        let obj = match self.get_obj(oid) {
            Ok(o) => o,
            // Reading a never-written KV behaves as an empty KV.
            Err(DaosError::ObjNotFound(_)) => return Ok(None),
            Err(e) => return Err(e),
        };
        let guard = obj.read();
        match &*guard {
            Object::Kv(kv) => Ok(kv.get(key)),
            Object::Array(_) => Err(DaosError::WrongType(oid)),
        }
    }

    pub fn kv_remove(&self, oid: Oid, key: &[u8]) -> Result<Option<Bytes>> {
        self.ops.kv_updates.fetch_add(1, Ordering::Relaxed);
        let obj = self.get_obj(oid)?;
        let mut guard = obj.write();
        match &mut *guard {
            Object::Kv(kv) => Ok(kv.remove(key)),
            Object::Array(_) => Err(DaosError::WrongType(oid)),
        }
    }

    pub fn kv_list_keys(&self, oid: Oid) -> Result<Vec<Bytes>> {
        self.kv_list_range(oid, b"", None)
    }

    /// Keys of KV `oid` in `[from, until)` (`until = None` means
    /// unbounded), ordered. A never-written KV lists as empty.
    pub fn kv_list_range(&self, oid: Oid, from: &[u8], until: Option<&[u8]>) -> Result<Vec<Bytes>> {
        self.ops.kv_fetches.fetch_add(1, Ordering::Relaxed);
        let obj = match self.get_obj(oid) {
            Ok(o) => o,
            Err(DaosError::ObjNotFound(_)) => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let guard = obj.read();
        match &*guard {
            Object::Kv(kv) => Ok(kv.list_range(from, until)),
            Object::Array(_) => Err(DaosError::WrongType(oid)),
        }
    }

    /// Keys of KV `oid` starting with `prefix`, ordered.
    pub fn kv_list_prefix(&self, oid: Oid, prefix: &[u8]) -> Result<Vec<Bytes>> {
        self.ops.kv_fetches.fetch_add(1, Ordering::Relaxed);
        let obj = match self.get_obj(oid) {
            Ok(o) => o,
            Err(DaosError::ObjNotFound(_)) => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let guard = obj.read();
        match &*guard {
            Object::Kv(kv) => Ok(kv.list_prefix(prefix)),
            Object::Array(_) => Err(DaosError::WrongType(oid)),
        }
    }

    // -- Array API ---------------------------------------------------------

    /// Creates Array `oid`; fails if an object with that id exists.
    pub fn array_create(&self, oid: Oid) -> Result<()> {
        let mut table = self.objects.write();
        if table.contains_key(&oid) {
            return Err(DaosError::ObjExists(oid));
        }
        table.insert(
            oid,
            Arc::new(RwLock::new(Object::Array(ArrayObject::new()))),
        );
        Ok(())
    }

    /// Opens Array `oid` — i.e. verifies existence and type.
    pub fn array_open(&self, oid: Oid) -> Result<()> {
        let obj = self.get_obj(oid)?;
        let guard = obj.read();
        match &*guard {
            Object::Array(_) => Ok(()),
            Object::Kv(_) => Err(DaosError::WrongType(oid)),
        }
    }

    /// Creates Array `oid` if absent (the `no-index` mode re-write path,
    /// where the md5-derived oid is stable across re-writes).
    pub fn array_open_or_create(&self, oid: Oid) -> Result<()> {
        match self.array_create(oid) {
            Ok(()) => Ok(()),
            Err(DaosError::ObjExists(_)) => self.array_open(oid),
            Err(e) => Err(e),
        }
    }

    pub fn array_write(&self, oid: Oid, offset: u64, data: Bytes) -> Result<()> {
        self.ops.array_updates.fetch_add(1, Ordering::Relaxed);
        let obj = self.get_obj(oid)?;
        let mut guard = obj.write();
        match &mut *guard {
            Object::Array(a) => {
                a.write(offset, data);
                Ok(())
            }
            Object::Kv(_) => Err(DaosError::WrongType(oid)),
        }
    }

    /// Scatter-gather write: every `(offset, data)` extent lands under
    /// one object lock acquisition. Equivalent to `array_write` of each
    /// extent in order.
    pub fn array_write_vec(&self, oid: Oid, iovs: Vec<(u64, Bytes)>) -> Result<()> {
        self.ops
            .array_updates
            .fetch_add(iovs.len() as u64, Ordering::Relaxed);
        let obj = self.get_obj(oid)?;
        let mut guard = obj.write();
        match &mut *guard {
            Object::Array(a) => {
                a.write_many(iovs);
                Ok(())
            }
            Object::Kv(_) => Err(DaosError::WrongType(oid)),
        }
    }

    pub fn array_read(&self, oid: Oid, offset: u64, len: u64) -> Result<Bytes> {
        self.ops.array_fetches.fetch_add(1, Ordering::Relaxed);
        let obj = self.get_obj(oid)?;
        let guard = obj.read();
        match &*guard {
            Object::Array(a) => Ok(a.read(offset, len)),
            Object::Kv(_) => Err(DaosError::WrongType(oid)),
        }
    }

    pub fn array_size(&self, oid: Oid) -> Result<u64> {
        let obj = self.get_obj(oid)?;
        let guard = obj.read();
        match &*guard {
            Object::Array(a) => Ok(a.size()),
            Object::Kv(_) => Err(DaosError::WrongType(oid)),
        }
    }

    /// Stores the EC parity cell of an Array object.
    pub fn array_set_parity(&self, oid: Oid, parity: Bytes) -> Result<()> {
        self.ops.array_updates.fetch_add(1, Ordering::Relaxed);
        let obj = self.get_obj(oid)?;
        let mut guard = obj.write();
        match &mut *guard {
            Object::Array(a) => {
                a.set_parity(parity);
                Ok(())
            }
            Object::Kv(_) => Err(DaosError::WrongType(oid)),
        }
    }

    /// Fetches the EC parity cell of an Array object.
    pub fn array_parity(&self, oid: Oid) -> Result<Option<Bytes>> {
        self.ops.array_fetches.fetch_add(1, Ordering::Relaxed);
        let obj = self.get_obj(oid)?;
        let guard = obj.read();
        match &*guard {
            Object::Array(a) => Ok(a.parity()),
            Object::Kv(_) => Err(DaosError::WrongType(oid)),
        }
    }

    /// Punches (drops the contents of) an object of either type.
    pub fn obj_punch(&self, oid: Oid) -> Result<()> {
        let removed = self.objects.write().remove(&oid);
        removed.map(|_| ()).ok_or(DaosError::ObjNotFound(oid))
    }

    /// Clones an object out of the container (snapshots, tooling).
    pub fn export_object(&self, oid: Oid) -> Result<Object> {
        let obj = self.get_obj(oid)?;
        let guard = obj.read();
        Ok(guard.clone())
    }

    /// Inserts a fully formed object (snapshot restore). Fails if the id
    /// is taken.
    pub fn import_object(&self, oid: Oid, object: Object) -> Result<()> {
        let mut table = self.objects.write();
        if table.contains_key(&oid) {
            return Err(DaosError::ObjExists(oid));
        }
        table.insert(oid, Arc::new(RwLock::new(object)));
        Ok(())
    }

    /// Walks the container and aggregates content statistics.
    pub fn stats(&self) -> ContainerStats {
        let table = self.objects.read();
        let mut s = ContainerStats {
            objects: table.len(),
            ..Default::default()
        };
        for obj in table.values() {
            match &*obj.read() {
                Object::Kv(kv) => {
                    s.kv_objects += 1;
                    s.kv_entries += kv.len();
                }
                Object::Array(a) => {
                    s.array_objects += 1;
                    s.array_bytes += a.stored_bytes();
                }
            }
        }
        s
    }

    /// All object ids, ordered (diagnostics and tooling).
    pub fn list_objects(&self) -> Vec<Oid> {
        let mut v: Vec<Oid> = self.objects.read().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// All Array object ids, ordered (reclamation passes).
    pub fn list_arrays(&self) -> Vec<Oid> {
        let table = self.objects.read();
        let mut v: Vec<Oid> = table
            .iter()
            .filter(|(_, o)| matches!(&*o.read(), Object::Array(_)))
            .map(|(oid, _)| *oid)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::ObjectClass;

    fn c() -> Container {
        Container::new(Uuid::from_name(b"test"))
    }

    fn oid(n: u64) -> Oid {
        Oid::generate(1, n, ObjectClass::S1)
    }

    #[test]
    fn kv_materializes_on_first_put() {
        let c = c();
        assert!(!c.obj_exists(oid(1)));
        c.kv_put(oid(1), b"k", Bytes::from_static(b"v")).unwrap();
        assert!(c.obj_exists(oid(1)));
        assert_eq!(c.kv_get(oid(1), b"k").unwrap().unwrap().as_ref(), b"v");
    }

    #[test]
    fn kv_get_on_missing_object_is_none() {
        let c = c();
        assert_eq!(c.kv_get(oid(9), b"k").unwrap(), None);
        assert!(c.kv_list_keys(oid(9)).unwrap().is_empty());
    }

    #[test]
    fn array_create_then_duplicate_fails() {
        let c = c();
        c.array_create(oid(2)).unwrap();
        assert_eq!(c.array_create(oid(2)), Err(DaosError::ObjExists(oid(2))));
        c.array_open_or_create(oid(2)).unwrap();
    }

    #[test]
    fn array_ops_require_existing_object() {
        let c = c();
        assert_eq!(
            c.array_write(oid(3), 0, Bytes::from_static(b"x")),
            Err(DaosError::ObjNotFound(oid(3)))
        );
        assert_eq!(c.array_open(oid(3)), Err(DaosError::ObjNotFound(oid(3))));
    }

    #[test]
    fn type_confusion_is_rejected() {
        let c = c();
        c.kv_put(oid(4), b"k", Bytes::new()).unwrap();
        assert_eq!(c.array_open(oid(4)), Err(DaosError::WrongType(oid(4))));
        assert_eq!(
            c.array_read(oid(4), 0, 1),
            Err(DaosError::WrongType(oid(4)))
        );
        c.array_create(oid(5)).unwrap();
        assert_eq!(
            c.kv_put(oid(5), b"k", Bytes::new()),
            Err(DaosError::WrongType(oid(5)))
        );
    }

    #[test]
    fn punch_removes_object() {
        let c = c();
        c.array_create(oid(6)).unwrap();
        c.obj_punch(oid(6)).unwrap();
        assert_eq!(c.obj_punch(oid(6)), Err(DaosError::ObjNotFound(oid(6))));
        assert_eq!(c.object_count(), 0);
    }

    #[test]
    fn stats_aggregate_contents() {
        let c = c();
        c.kv_put(oid(1), b"a", Bytes::from_static(b"x")).unwrap();
        c.kv_put(oid(1), b"b", Bytes::from_static(b"y")).unwrap();
        c.array_create(oid(2)).unwrap();
        c.array_write(oid(2), 0, Bytes::from(vec![0u8; 500]))
            .unwrap();
        let s = c.stats();
        assert_eq!(s.objects, 2);
        assert_eq!(s.kv_objects, 1);
        assert_eq!(s.array_objects, 1);
        assert_eq!(s.kv_entries, 2);
        assert_eq!(s.array_bytes, 500);
    }

    #[test]
    fn concurrent_distinct_objects() {
        use std::sync::Arc;
        let c = Arc::new(Container::new(Uuid::from_name(b"mt")));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let o = oid(t * 1000 + i);
                        c.array_create(o).unwrap();
                        c.array_write(o, 0, Bytes::from(vec![t as u8; 64])).unwrap();
                        assert_eq!(c.array_read(o, 0, 64).unwrap()[0], t as u8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.object_count(), 1600);
    }
}
