//! Deterministic object placement over pool targets.
//!
//! DAOS places object shards with a pseudo-random algebraic map over the
//! pool map. We reproduce the properties that matter for performance
//! modelling: placement is a pure function of `(oid, pool size)`, shards
//! of a striped object land on distinct targets, Key-Value distribution
//! keys spread over the stripe by hash, and Array chunks round-robin over
//! the stripe.

use crate::oid::Oid;

/// Chunk size used when striping Array data across targets. DAOS defaults
/// to 1 MiB chunks for the Array API, which the paper keeps.
pub const ARRAY_CHUNK: u64 = 1024 * 1024;

#[inline]
fn mix(mut x: u64) -> u64 {
    // SplitMix64 finalizer: cheap and well distributed.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string — used for distribution-key hashing.
#[inline]
pub fn hash_key(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn base_target(oid: Oid, pool_targets: u32) -> u32 {
    let v = oid.as_u128();
    (mix((v >> 64) as u64 ^ mix(v as u64)) % pool_targets as u64) as u32
}

/// The targets an object's stripe occupies, in shard order. Consecutive
/// ring slots starting at a hashed base, so shards are distinct whenever
/// the stripe width allows it.
pub fn stripe_targets(oid: Oid, pool_targets: u32) -> Vec<u32> {
    assert!(pool_targets > 0, "pool must have targets");
    let width = oid.class().stripe_width(pool_targets);
    let base = base_target(oid, pool_targets);
    (0..width).map(|i| (base + i) % pool_targets).collect()
}

/// The target serving a Key-Value distribution key: keys hash over the
/// object's stripe.
pub fn kv_target(oid: Oid, key: &[u8], pool_targets: u32) -> u32 {
    let stripe = stripe_targets(oid, pool_targets);
    stripe[(hash_key(key) % stripe.len() as u64) as usize]
}

/// The "leader" target of an object — where object-level bookkeeping
/// (open, punch, update ordering) is served.
pub fn leader_target(oid: Oid, pool_targets: u32) -> u32 {
    stripe_targets(oid, pool_targets)[0]
}

/// The replica targets of an object's (single) data shard, leader first.
/// Replicas stride `pool/replicas` apart so they fall into different
/// fault domains (different engines/nodes), as DAOS's placement does —
/// adjacent slots would usually share an engine and defeat redundancy.
pub fn replica_targets(oid: Oid, pool_targets: u32) -> Vec<u32> {
    assert!(pool_targets > 0, "pool must have targets");
    let n = oid.class().replicas(pool_targets);
    let base = base_target(oid, pool_targets);
    let stride = (pool_targets / n).max(1);
    (0..n).map(|i| (base + i * stride) % pool_targets).collect()
}

/// The EC layout of an object: two data-cell targets plus the parity
/// target, spread across fault domains like replicas are.
pub fn ec_targets(oid: Oid, pool_targets: u32) -> (Vec<u32>, u32) {
    assert!(pool_targets > 0, "pool must have targets");
    let base = base_target(oid, pool_targets);
    let stride = (pool_targets / 3).max(1);
    let d0 = base;
    let d1 = (base + stride) % pool_targets;
    let parity = (base + 2 * stride) % pool_targets;
    (vec![d0, d1], parity)
}

/// Splits a byte extent into per-target chunks for an Array object.
/// Returns `(target, bytes)` pairs in chunk order; consecutive chunks
/// round-robin over the stripe.
pub fn array_extent_shards(oid: Oid, offset: u64, len: u64, pool_targets: u32) -> Vec<(u32, u64)> {
    let stripe = stripe_targets(oid, pool_targets);
    let mut shards: Vec<(u32, u64)> = Vec::new();
    let mut off = offset;
    let end = offset + len;
    while off < end {
        let chunk_idx = off / ARRAY_CHUNK;
        let chunk_end = (chunk_idx + 1) * ARRAY_CHUNK;
        let take = chunk_end.min(end) - off;
        let tgt = stripe[(chunk_idx % stripe.len() as u64) as usize];
        // Merge with previous shard when the same target serves
        // consecutive chunks (e.g. S1 objects).
        match shards.last_mut() {
            Some((t, b)) if *t == tgt => *b += take,
            _ => shards.push((tgt, take)),
        }
        off += take;
    }
    shards
}

/// Splits a byte extent into **one shard per target** (chunks grouped by
/// owning target), in first-touch order — one bulk RPC per target, as the
/// DAOS client aggregates scatter-gather I/O. `S2` at 20 MiB therefore
/// issues 2 RPCs of 10 MiB while `SX` issues one per stripe target.
pub fn array_target_shards(oid: Oid, offset: u64, len: u64, pool_targets: u32) -> Vec<(u32, u64)> {
    let chunks = array_extent_shards(oid, offset, len, pool_targets);
    let mut out: Vec<(u32, u64)> = Vec::new();
    for (t, b) in chunks {
        match out.iter_mut().find(|(ot, _)| *ot == t) {
            Some((_, ob)) => *ob += b,
            None => out.push((t, b)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::{ObjectClass, Oid};

    fn oid(n: u64, class: ObjectClass) -> Oid {
        Oid::generate(7, n, class)
    }

    #[test]
    fn stripe_widths_match_class() {
        assert_eq!(stripe_targets(oid(1, ObjectClass::S1), 24).len(), 1);
        assert_eq!(stripe_targets(oid(1, ObjectClass::S2), 24).len(), 2);
        assert_eq!(stripe_targets(oid(1, ObjectClass::SX), 24).len(), 24);
    }

    #[test]
    fn stripe_targets_are_distinct() {
        let s = stripe_targets(oid(9, ObjectClass::SX), 24);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 24);
    }

    #[test]
    fn placement_is_deterministic() {
        for n in 0..50 {
            let a = stripe_targets(oid(n, ObjectClass::S2), 24);
            let b = stripe_targets(oid(n, ObjectClass::S2), 24);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn s1_objects_spread_over_targets() {
        // Many distinct S1 objects should land on many distinct targets.
        let used: std::collections::HashSet<u32> = (0..200)
            .map(|n| stripe_targets(oid(n, ObjectClass::S1), 24)[0])
            .collect();
        assert!(used.len() >= 20, "only {} targets used", used.len());
    }

    #[test]
    fn kv_keys_spread_over_sx_stripe() {
        let o = oid(3, ObjectClass::SX);
        let used: std::collections::HashSet<u32> = (0..200)
            .map(|i| kv_target(o, format!("key-{i}").as_bytes(), 24))
            .collect();
        assert!(used.len() >= 20, "only {} targets used", used.len());
    }

    #[test]
    fn kv_on_s1_always_same_target() {
        let o = oid(3, ObjectClass::S1);
        let t0 = kv_target(o, b"a", 24);
        for i in 0..50 {
            assert_eq!(kv_target(o, format!("k{i}").as_bytes(), 24), t0);
        }
    }

    #[test]
    fn array_shards_cover_extent_exactly() {
        let o = oid(5, ObjectClass::SX);
        let shards = array_extent_shards(o, 500_000, 5 * ARRAY_CHUNK + 123, 24);
        let total: u64 = shards.iter().map(|(_, b)| b).sum();
        assert_eq!(total, 5 * ARRAY_CHUNK + 123);
    }

    #[test]
    fn s1_array_is_single_shard() {
        let o = oid(5, ObjectClass::S1);
        let shards = array_extent_shards(o, 0, 20 * ARRAY_CHUNK, 24);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].1, 20 * ARRAY_CHUNK);
    }

    #[test]
    fn sx_array_round_robins_chunks() {
        let o = oid(5, ObjectClass::SX);
        let shards = array_extent_shards(o, 0, 4 * ARRAY_CHUNK, 24);
        assert_eq!(shards.len(), 4);
        let stripe = stripe_targets(o, 24);
        for (i, (t, b)) in shards.iter().enumerate() {
            assert_eq!(*t, stripe[i]);
            assert_eq!(*b, ARRAY_CHUNK);
        }
    }

    #[test]
    fn replica_targets_distinct_and_led_by_leader() {
        let o = oid(8, ObjectClass::RP2);
        let reps = replica_targets(o, 24);
        assert_eq!(reps.len(), 2);
        assert_ne!(reps[0], reps[1]);
        assert_eq!(reps[0], leader_target(o, 24));
        // Fault-domain spread: with 2 engines x 12 targets, the replicas
        // must land in different engines.
        assert_ne!(reps[0] / 12, reps[1] / 12, "replicas share an engine");
        // Unreplicated classes have a single "replica".
        assert_eq!(replica_targets(oid(8, ObjectClass::S1), 24).len(), 1);
        // A one-target pool degenerates gracefully.
        assert_eq!(replica_targets(o, 1), vec![0]);
    }

    #[test]
    fn ec_targets_are_spread_across_fault_domains() {
        let o = oid(12, ObjectClass::EC2P1);
        let (data, parity) = ec_targets(o, 24);
        let mut all = data.clone();
        all.push(parity);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "cells must land on distinct targets");
        // With 2 engines x 12 targets, at least two engines are involved.
        let engines: std::collections::HashSet<u32> = all.iter().map(|t| t / 12).collect();
        assert!(engines.len() >= 2, "EC cells all in one engine: {all:?}");
    }

    #[test]
    fn target_shards_group_by_target() {
        let o = oid(6, ObjectClass::S2);
        // 20 chunks alternate over 2 targets -> exactly 2 shards of 10.
        let shards = array_target_shards(o, 0, 20 * ARRAY_CHUNK, 24);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].1, 10 * ARRAY_CHUNK);
        assert_eq!(shards[1].1, 10 * ARRAY_CHUNK);
        let total: u64 = array_target_shards(o, 123, 5 * ARRAY_CHUNK + 7, 24)
            .iter()
            .map(|(_, b)| b)
            .sum();
        assert_eq!(total, 5 * ARRAY_CHUNK + 7);
    }

    #[test]
    fn leader_is_first_stripe_target() {
        let o = oid(11, ObjectClass::S2);
        assert_eq!(leader_target(o, 24), stripe_targets(o, 24)[0]);
    }
}
