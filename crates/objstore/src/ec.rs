//! Erasure-coding math for `EC_2P1`-style objects: two data cells plus
//! one XOR parity cell.
//!
//! An object's payload splits into two halves placed on distinct targets;
//! the parity cell is their byte-wise XOR (the shorter half zero-padded).
//! Any single lost cell is reconstructible from the other two:
//!
//! * lost first half:  `h0 = parity ⊕ pad(h1)`
//! * lost second half: `h1 = parity ⊕ pad(h0)`
//!
//! The math is deliberately tiny and total — no unsafe, no SIMD — because
//! the simulator charges reconstruction *time* separately; these functions
//! provide the *correctness* (degraded reads return real reconstructed
//! bytes, not copies of the logical data).

use bytes::Bytes;

/// Splits a payload into its two data cells: the first gets
/// `ceil(len/2)` bytes. Either cell may be empty for tiny payloads.
pub fn split_halves(data: &Bytes) -> (Bytes, Bytes) {
    let mid = data.len().div_ceil(2);
    (data.slice(0..mid), data.slice(mid..))
}

/// Byte-wise XOR of two cells, zero-padding the shorter: the parity cell.
/// Its length is the longer input's.
pub fn xor_parity(a: &[u8], b: &[u8]) -> Vec<u8> {
    let n = a.len().max(b.len());
    let mut out = vec![0u8; n];
    for (i, o) in out.iter_mut().enumerate() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        *o = x ^ y;
    }
    out
}

/// Reconstructs a lost cell of `lost_len` bytes from the surviving cell
/// and the parity cell. XOR is its own inverse, so this is `xor_parity`
/// truncated to the lost cell's length.
pub fn reconstruct_cell(survivor: &[u8], parity: &[u8], lost_len: usize) -> Vec<u8> {
    let mut out = xor_parity(survivor, parity);
    out.truncate(lost_len);
    out
}

/// Reassembles the payload from both halves.
pub fn join_halves(h0: &[u8], h1: &[u8]) -> Bytes {
    let mut v = Vec::with_capacity(h0.len() + h1.len());
    v.extend_from_slice(h0);
    v.extend_from_slice(h1);
    Bytes::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i * 31 % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn split_is_lossless() {
        for n in [0usize, 1, 2, 3, 100, 101] {
            let data = payload(n);
            let (h0, h1) = split_halves(&data);
            assert_eq!(h0.len(), n.div_ceil(2));
            assert_eq!(join_halves(&h0, &h1), data, "n={n}");
        }
    }

    #[test]
    fn either_lost_half_reconstructs() {
        for n in [1usize, 2, 7, 64, 1023, 4096] {
            let data = payload(n);
            let (h0, h1) = split_halves(&data);
            let parity = xor_parity(&h0, &h1);
            assert_eq!(parity.len(), h0.len().max(h1.len()));
            let r0 = reconstruct_cell(&h1, &parity, h0.len());
            assert_eq!(r0, h0.as_ref(), "first half, n={n}");
            let r1 = reconstruct_cell(&h0, &parity, h1.len());
            assert_eq!(r1, h1.as_ref(), "second half, n={n}");
        }
    }

    #[test]
    fn corrupt_parity_is_detectable_as_wrong_bytes() {
        let data = payload(64);
        let (h0, h1) = split_halves(&data);
        let mut parity = xor_parity(&h0, &h1);
        parity[3] ^= 0xFF;
        let r0 = reconstruct_cell(&h1, &parity, h0.len());
        assert_ne!(r0, h0.as_ref());
    }
}
