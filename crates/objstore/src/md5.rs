//! MD5 (RFC 1321), implemented from scratch.
//!
//! The paper's field I/O scheme derives DAOS container UUIDs and (in
//! `no-index` mode) Array object IDs from the md5 sum of field-key text,
//! so that concurrent processes racing to create the same container
//! deterministically agree on its identity. We need the same digest; md5's
//! cryptographic weakness is irrelevant for this naming use.

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

fn process_block(state: &mut [u32; 4], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut m = [0u32; 16];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        m[i] = u32::from_le_bytes(chunk.try_into().unwrap());
    }
    let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
    for i in 0..64 {
        let (f, g) = match i / 16 {
            0 => ((b & c) | (!b & d), i),
            1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
            2 => (b ^ c ^ d, (3 * i + 5) % 16),
            _ => (c ^ (b | !d), (7 * i) % 16),
        };
        let tmp = d;
        d = c;
        c = b;
        b = b.wrapping_add(
            a.wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]),
        );
        a = tmp;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
}

/// Computes the MD5 digest of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut state: [u32; 4] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476];
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        process_block(&mut state, block);
    }
    // Padding: 0x80, zeros, then the bit length as a little-endian u64.
    let rem = chunks.remainder();
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    let bit_len = (data.len() as u64).wrapping_mul(8);
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_le_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        process_block(&mut state, block);
    }
    let mut out = [0u8; 16];
    for (i, s) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&s.to_le_bytes());
    }
    out
}

/// Hex rendering of a digest.
pub fn hex(digest: &[u8; 16]) -> String {
    let mut s = String::with_capacity(32);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(&hex(&md5(input.as_bytes())), want, "input {input:?}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths around the 56/64-byte padding edge all hash distinctly.
        let mut seen = std::collections::HashSet::new();
        for len in 50..=70 {
            let data = vec![0xabu8; len];
            assert!(seen.insert(md5(&data)), "collision at len {len}");
        }
    }

    #[test]
    fn long_input() {
        // "million a's" classic vector.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&md5(&data)), "7707d6ae4e027c70eea2a935c2296f21");
    }
}
