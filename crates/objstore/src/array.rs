//! Array objects — byte-addressable extents, like the DAOS Array API.
//!
//! Storage is extent-based (as DAOS's versioned object store is): a write
//! records a reference-counted segment; overlapping older segments are
//! trimmed. Reading a range that one segment covers entirely is zero-copy.
//! This matters beyond fidelity: benchmarks write millions of fields that
//! all share one payload buffer, and extent storage keeps memory flat.

use std::collections::BTreeMap;

use bytes::{Bytes, BytesMut};

/// An in-memory Array object.
#[derive(Default, Debug, Clone)]
pub struct ArrayObject {
    /// Non-overlapping segments keyed by start offset.
    segments: BTreeMap<u64, Bytes>,
    /// Highest written offset + 1 (DAOS array "size").
    size: u64,
    /// Erasure-coding parity cell, kept out of the byte address space so
    /// `size`/`read` semantics stay clean (DAOS likewise keeps parity in
    /// shadow extents).
    parity: Option<Bytes>,
}

impl ArrayObject {
    pub fn new() -> Self {
        Self::default()
    }

    /// Logical size: one past the highest byte ever written.
    pub fn size(&self) -> u64 {
        self.size
    }

    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Writes `data` at `offset`, trimming any overlapped older extents.
    pub fn write(&mut self, offset: u64, data: Bytes) {
        if data.is_empty() {
            return;
        }
        let end = offset
            .checked_add(data.len() as u64)
            .expect("array extent overflows u64");
        // Find every existing segment that overlaps [offset, end).
        let overlapping: Vec<u64> = self
            .segments
            .range(..end)
            .rev()
            .take_while(|(s, d)| **s + d.len() as u64 > offset)
            .map(|(s, _)| *s)
            .collect();
        for s in overlapping {
            let d = self.segments.remove(&s).expect("segment vanished");
            let d_end = s + d.len() as u64;
            if s < offset {
                // Keep the head that precedes the new write.
                self.segments.insert(s, d.slice(0..(offset - s) as usize));
            }
            if d_end > end {
                // Keep the tail that follows the new write.
                self.segments.insert(end, d.slice((end - s) as usize..));
            }
        }
        self.segments.insert(offset, data);
        self.size = self.size.max(end);
    }

    /// Writes every `(offset, data)` extent, in order (scatter-gather).
    pub fn write_many(&mut self, iovs: Vec<(u64, Bytes)>) {
        for (offset, data) in iovs {
            self.write(offset, data);
        }
    }

    /// Reads `len` bytes at `offset`. Unwritten holes read as zero, as in
    /// DAOS. A range covered by a single segment is returned zero-copy.
    pub fn read(&self, offset: u64, len: u64) -> Bytes {
        if len == 0 {
            return Bytes::new();
        }
        let end = offset.checked_add(len).expect("array extent overflows u64");
        // Fast path: one segment covers everything.
        if let Some((s, d)) = self.segments.range(..=offset).next_back() {
            let d_end = s + d.len() as u64;
            if *s <= offset && d_end >= end {
                return d.slice((offset - s) as usize..(end - s) as usize);
            }
        }
        // Slow path: assemble with zero fill.
        let mut out = BytesMut::zeroed(len as usize);
        for (s, d) in self.segments.range(..end) {
            let d_end = s + d.len() as u64;
            if d_end <= offset {
                continue;
            }
            let copy_start = offset.max(*s);
            let copy_end = end.min(d_end);
            let dst = (copy_start - offset) as usize..(copy_end - offset) as usize;
            let src = (copy_start - s) as usize..(copy_end - s) as usize;
            out[dst].copy_from_slice(&d[src]);
        }
        out.freeze()
    }

    /// Bytes of live extent data (capacity accounting).
    pub fn stored_bytes(&self) -> u64 {
        self.segments.values().map(|d| d.len() as u64).sum()
    }

    /// Stores the erasure-coding parity cell for this object.
    pub fn set_parity(&mut self, parity: Bytes) {
        self.parity = Some(parity);
    }

    /// The stored parity cell, if any.
    pub fn parity(&self) -> Option<Bytes> {
        self.parity.clone()
    }

    /// Iterates live extents as `(offset, data)` in offset order.
    pub fn segments(&self) -> impl Iterator<Item = (u64, Bytes)> + '_ {
        self.segments.iter().map(|(o, d)| (*o, d.clone()))
    }

    /// Drops all extents (punch).
    pub fn punch(&mut self) {
        self.segments.clear();
        self.size = 0;
        self.parity = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = ArrayObject::new();
        a.write(0, b(b"hello world"));
        assert_eq!(a.read(0, 11).as_ref(), b"hello world");
        assert_eq!(a.size(), 11);
    }

    #[test]
    fn read_at_offset_within_segment_is_zero_copy_consistent() {
        let mut a = ArrayObject::new();
        a.write(100, b(b"abcdef"));
        assert_eq!(a.read(102, 3).as_ref(), b"cde");
    }

    #[test]
    fn holes_read_as_zero() {
        let mut a = ArrayObject::new();
        a.write(4, b(b"xy"));
        assert_eq!(a.read(0, 8).as_ref(), b"\0\0\0\0xy\0\0");
        assert_eq!(a.size(), 6);
    }

    #[test]
    fn overwrite_middle_trims_old_segment() {
        let mut a = ArrayObject::new();
        a.write(0, b(b"aaaaaaaaaa"));
        a.write(3, b(b"BBB"));
        assert_eq!(a.read(0, 10).as_ref(), b"aaaBBBaaaa");
        assert_eq!(a.segment_count(), 3);
    }

    #[test]
    fn overwrite_spanning_multiple_segments() {
        let mut a = ArrayObject::new();
        a.write(0, b(b"111"));
        a.write(3, b(b"222"));
        a.write(6, b(b"333"));
        a.write(1, b(b"XXXXXXX"));
        assert_eq!(a.read(0, 9).as_ref(), b"1XXXXXXX3");
    }

    #[test]
    fn overwrite_exact_is_single_segment() {
        let mut a = ArrayObject::new();
        a.write(0, b(b"old-old-"));
        a.write(0, b(b"new-new-"));
        assert_eq!(a.segment_count(), 1);
        assert_eq!(a.read(0, 8).as_ref(), b"new-new-");
    }

    #[test]
    fn stored_bytes_tracks_live_extents() {
        let mut a = ArrayObject::new();
        a.write(0, b(&[1u8; 100]));
        a.write(50, b(&[2u8; 100]));
        // 50 bytes of the first extent survive plus 100 new.
        assert_eq!(a.stored_bytes(), 150);
    }

    #[test]
    fn punch_clears() {
        let mut a = ArrayObject::new();
        a.write(0, b(b"data"));
        a.punch();
        assert_eq!(a.size(), 0);
        assert_eq!(a.read(0, 4).as_ref(), b"\0\0\0\0");
    }

    #[test]
    fn parity_side_channel_is_separate_from_data() {
        let mut a = ArrayObject::new();
        a.write(0, b(b"data"));
        assert!(a.parity().is_none());
        a.set_parity(b(b"pppp"));
        assert_eq!(a.parity().unwrap().as_ref(), b"pppp");
        // Parity does not affect size or reads.
        assert_eq!(a.size(), 4);
        assert_eq!(a.read(0, 4).as_ref(), b"data");
        a.punch();
        assert!(a.parity().is_none());
    }

    #[test]
    fn zero_length_ops_are_noops() {
        let mut a = ArrayObject::new();
        a.write(10, Bytes::new());
        assert_eq!(a.size(), 0);
        assert!(a.read(0, 0).is_empty());
    }

    #[test]
    fn large_shared_payload_is_not_copied() {
        // Many arrays sharing one payload keep a single allocation alive.
        let payload = Bytes::from(vec![7u8; 1024 * 1024]);
        let mut arrays: Vec<ArrayObject> = Vec::new();
        for _ in 0..64 {
            let mut a = ArrayObject::new();
            a.write(0, payload.clone());
            arrays.push(a);
        }
        for a in &arrays {
            // Full-cover read returns a slice of the same buffer.
            let r = a.read(0, payload.len() as u64);
            assert_eq!(r.as_ptr(), payload.as_ptr());
        }
    }
}
