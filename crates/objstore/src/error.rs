//! Error type shared by the embedded store and the simulated cluster.

use std::fmt;

use crate::oid::Oid;
use crate::uuid::Uuid;

/// Errors surfaced by DAOS-like operations (a compact analogue of the
/// `-DER_*` space actually used by the field I/O functions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DaosError {
    PoolNotFound(Uuid),
    ContNotFound(Uuid),
    ContExists(Uuid),
    ObjNotFound(Oid),
    ObjExists(Oid),
    /// Object exists but has the wrong type for the attempted operation
    /// (e.g. Array API on a Key-Value object).
    WrongType(Oid),
    KeyNotFound(String),
    /// Capacity accounting rejected an allocation.
    NoSpace,
    /// The engine owning the object is down (failure injection).
    EngineUnavailable(u32),
    /// A placement query was handed an empty candidate set (e.g. a
    /// replica read with no live copies left).
    NoTargets,
    /// A per-operation deadline elapsed before the engine answered;
    /// carries the name of the operation that timed out.
    Timeout(&'static str),
    /// The event queue the operation was launched on was destroyed
    /// before the operation completed (`daos_eq_destroy` semantics).
    Cancelled,
    InvalidArg(&'static str),
}

impl DaosError {
    /// Whether a retry of the same operation could plausibly succeed.
    /// Engine unavailability and deadline expiry are transient (engines
    /// restart, brownouts pass); everything else is a property of the
    /// request or the store state and will fail identically on retry.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DaosError::EngineUnavailable(_) | DaosError::Timeout(_)
        )
    }
}

impl fmt::Display for DaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaosError::PoolNotFound(u) => write!(f, "pool {u} not found"),
            DaosError::ContNotFound(u) => write!(f, "container {u} not found"),
            DaosError::ContExists(u) => write!(f, "container {u} already exists"),
            DaosError::ObjNotFound(o) => write!(f, "object {o} not found"),
            DaosError::ObjExists(o) => write!(f, "object {o} already exists"),
            DaosError::WrongType(o) => write!(f, "object {o} has the wrong type"),
            DaosError::KeyNotFound(k) => write!(f, "key {k:?} not found"),
            DaosError::NoSpace => write!(f, "out of space"),
            DaosError::EngineUnavailable(e) => write!(f, "engine {e} unavailable"),
            DaosError::NoTargets => write!(f, "no candidate targets"),
            DaosError::Timeout(op) => write!(f, "operation {op} timed out"),
            DaosError::Cancelled => write!(f, "operation cancelled (event queue destroyed)"),
            DaosError::InvalidArg(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for DaosError {}

pub type Result<T> = std::result::Result<T, DaosError>;
