//! Pools: reserved storage spanning targets, hosting containers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::container::{Container, ContainerStats, OpCounts};
use crate::error::{DaosError, Result};
use crate::uuid::Uuid;

/// A pool: a fixed-size slice of cluster storage, distributed over
/// `targets` targets, hosting any number of containers.
pub struct Pool {
    uuid: Uuid,
    targets: u32,
    capacity: u64,
    used: AtomicU64,
    containers: RwLock<HashMap<Uuid, Arc<Container>>>,
}

impl Pool {
    pub fn new(uuid: Uuid, targets: u32, capacity: u64) -> Self {
        assert!(targets > 0, "pool needs at least one target");
        Pool {
            uuid,
            targets,
            capacity,
            used: AtomicU64::new(0),
            containers: RwLock::new(HashMap::new()),
        }
    }

    pub fn uuid(&self) -> Uuid {
        self.uuid
    }

    pub fn targets(&self) -> u32 {
        self.targets
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Charges an allocation against pool space. The store never refunds
    /// trimmed extents — matching the paper's field I/O design, which
    /// de-references but deliberately never deletes overwritten arrays.
    pub fn charge(&self, bytes: u64) -> Result<()> {
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        if prev + bytes > self.capacity {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(DaosError::NoSpace);
        }
        Ok(())
    }

    pub fn cont_create(&self, uuid: Uuid) -> Result<Arc<Container>> {
        let mut table = self.containers.write();
        if table.contains_key(&uuid) {
            return Err(DaosError::ContExists(uuid));
        }
        let c = Arc::new(Container::new(uuid));
        table.insert(uuid, Arc::clone(&c));
        Ok(c)
    }

    pub fn cont_open(&self, uuid: Uuid) -> Result<Arc<Container>> {
        self.containers
            .read()
            .get(&uuid)
            .cloned()
            .ok_or(DaosError::ContNotFound(uuid))
    }

    /// The create-then-open-on-race pattern the field I/O functions use
    /// with md5-derived container ids.
    pub fn cont_open_or_create(&self, uuid: Uuid) -> Result<Arc<Container>> {
        match self.cont_create(uuid) {
            Ok(c) => Ok(c),
            Err(DaosError::ContExists(_)) => self.cont_open(uuid),
            Err(e) => Err(e),
        }
    }

    pub fn cont_destroy(&self, uuid: Uuid) -> Result<()> {
        self.containers
            .write()
            .remove(&uuid)
            .map(|_| ())
            .ok_or(DaosError::ContNotFound(uuid))
    }

    pub fn cont_count(&self) -> usize {
        self.containers.read().len()
    }

    /// Aggregates statistics over every container.
    pub fn stats(&self) -> ContainerStats {
        let mut total = ContainerStats::default();
        for (_, c) in self.containers.read().iter() {
            let s = c.stats();
            total.objects += s.objects;
            total.kv_objects += s.kv_objects;
            total.array_objects += s.array_objects;
            total.kv_entries += s.kv_entries;
            total.array_bytes += s.array_bytes;
        }
        total
    }

    pub fn cont_list(&self) -> Vec<Uuid> {
        let mut v: Vec<Uuid> = self.containers.read().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Aggregates operation totals over every container (feeds the
    /// `objstore.*` metrics of the observability registry).
    pub fn op_counts(&self) -> OpCounts {
        let mut total = OpCounts::default();
        for (_, c) in self.containers.read().iter() {
            let o = c.op_counts();
            total.kv_updates += o.kv_updates;
            total.kv_fetches += o.kv_fetches;
            total.array_updates += o.array_updates;
            total.array_fetches += o.array_fetches;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Pool {
        Pool::new(Uuid::from_name(b"pool"), 24, 1 << 30)
    }

    #[test]
    fn create_open_destroy() {
        let p = pool();
        let u = Uuid::from_name(b"c1");
        p.cont_create(u).unwrap();
        assert_eq!(p.cont_create(u).err(), Some(DaosError::ContExists(u)));
        assert_eq!(p.cont_open(u).unwrap().uuid(), u);
        p.cont_destroy(u).unwrap();
        assert_eq!(p.cont_open(u).err(), Some(DaosError::ContNotFound(u)));
    }

    #[test]
    fn open_or_create_survives_races() {
        let p = Arc::new(pool());
        let u = Uuid::from_name(b"shared");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || p.cont_open_or_create(u).unwrap().uuid())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), u);
        }
        assert_eq!(p.cont_count(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let p = Pool::new(Uuid::NIL, 1, 100);
        p.charge(60).unwrap();
        p.charge(40).unwrap();
        assert_eq!(p.charge(1), Err(DaosError::NoSpace));
        assert_eq!(p.used(), 100);
    }

    #[test]
    fn pool_stats_sum_containers() {
        let p = pool();
        let c1 = p.cont_create(Uuid::from_u64_pair(0, 1)).unwrap();
        let c2 = p.cont_create(Uuid::from_u64_pair(0, 2)).unwrap();
        use crate::oid::{ObjectClass, Oid};
        use bytes::Bytes;
        c1.kv_put(
            Oid::generate(1, 1, ObjectClass::SX),
            b"k",
            Bytes::from_static(b"v"),
        )
        .unwrap();
        c2.array_create(Oid::generate(1, 2, ObjectClass::S1))
            .unwrap();
        c2.array_write(
            Oid::generate(1, 2, ObjectClass::S1),
            0,
            Bytes::from(vec![0u8; 64]),
        )
        .unwrap();
        let s = p.stats();
        assert_eq!(s.objects, 2);
        assert_eq!(s.kv_entries, 1);
        assert_eq!(s.array_bytes, 64);
    }

    #[test]
    fn cont_list_sorted() {
        let p = pool();
        let mut uuids: Vec<Uuid> = (0..5).map(|i| Uuid::from_u64_pair(0, i)).collect();
        for u in uuids.iter().rev() {
            p.cont_create(*u).unwrap();
        }
        uuids.sort_unstable();
        assert_eq!(p.cont_list(), uuids);
    }
}
