//! # daosim-objstore — an embeddable object store with DAOS semantics
//!
//! A from-scratch Rust reimplementation of the DAOS storage abstractions
//! the paper's field I/O layer is built on:
//!
//! * [`pool::Pool`] — reserved storage spanning *targets*, hosting
//!   containers, with capacity accounting;
//! * [`container::Container`] — a transactional object namespace;
//! * [`kv::KvObject`] — Key-Value objects (the paper's indexes);
//! * [`array::ArrayObject`] — byte-extent Array objects (field payloads),
//!   stored extent-based and zero-copy where possible;
//! * [`oid::Oid`] / [`oid::ObjectClass`] — 128-bit object ids with 96
//!   user-managed bits and S1/S2/SX striping classes;
//! * [`placement`] — deterministic shard/key/chunk → target mapping;
//! * [`md5`] / [`uuid::Uuid`] — the md5-derived deterministic container
//!   naming the paper uses for race-free concurrent creation;
//! * [`api::DaosApi`] — the async client trait implemented both by the
//!   embedded store ([`api::EmbeddedClient`]) and by the simulated
//!   cluster in `daosim-cluster`.
//!
//! The store is thread-safe (sharded `parking_lot` locks) and can be used
//! directly as an in-process object store, independent of the simulator.

pub mod api;
pub mod array;
pub mod container;
pub mod ec;
pub mod error;
pub mod kv;
pub mod md5;
pub mod oid;
pub mod placement;
pub mod pool;
pub mod snapshot;
pub mod store;
pub mod uuid;

pub use api::{
    ArrayHandle, DaosApi, EmbeddedClient, EqCapacity, EqWait, Event, EventQueue, OidAllocator,
    OpFuture, OpOutput,
};

/// The blessed client-facing surface, in one import: the [`api::DaosApi`]
/// trait, the event-queue machinery, handles, ids and error types every
/// frontend (field I/O, IOR, DFS, future backends) builds on. Frontends
/// import from here; store internals (placement, EC, snapshots, pools)
/// stay at their crate paths.
pub mod prelude {
    pub use crate::api::{
        ArrayHandle, DaosApi, EmbeddedClient, EqCapacity, EqWait, Event, EventQueue, OidAllocator,
        OpFuture, OpOutput,
    };
    pub use crate::error::{DaosError, Result};
    pub use crate::oid::{ObjectClass, Oid};
    pub use crate::uuid::Uuid;
}
pub use array::ArrayObject;
pub use container::{Container, ContainerStats, Object, OpCounts};
pub use error::{DaosError, Result};
pub use kv::KvObject;
pub use oid::{ObjectClass, Oid};
pub use pool::Pool;
pub use snapshot::{load_pool, save_pool, SnapshotError};
pub use store::DaosStore;
pub use uuid::Uuid;
