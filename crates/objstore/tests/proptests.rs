//! Property-based tests: the store against reference models.

use bytes::Bytes;
use daosim_objstore::placement::{array_target_shards, stripe_targets};
use daosim_objstore::{ArrayObject, KvObject, ObjectClass, Oid};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// ArrayObject vs a flat Vec<u8> reference model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ArrayOp {
    Write { offset: u64, data: Vec<u8> },
    Read { offset: u64, len: u64 },
    Punch,
}

fn array_op() -> impl Strategy<Value = ArrayOp> {
    prop_oneof![
        4 => (0u64..2000, proptest::collection::vec(any::<u8>(), 1..300))
            .prop_map(|(offset, data)| ArrayOp::Write { offset, data }),
        4 => (0u64..2500, 0u64..600).prop_map(|(offset, len)| ArrayOp::Read { offset, len }),
        1 => Just(ArrayOp::Punch),
    ]
}

proptest! {
    #[test]
    fn array_matches_flat_buffer_model(ops in proptest::collection::vec(array_op(), 1..60)) {
        let mut a = ArrayObject::new();
        let mut model: Vec<u8> = Vec::new();
        for op in ops {
            match op {
                ArrayOp::Write { offset, data } => {
                    let end = offset as usize + data.len();
                    if model.len() < end {
                        model.resize(end, 0);
                    }
                    model[offset as usize..end].copy_from_slice(&data);
                    a.write(offset, Bytes::from(data));
                }
                ArrayOp::Read { offset, len } => {
                    let got = a.read(offset, len);
                    let mut want = vec![0u8; len as usize];
                    let start = (offset as usize).min(model.len());
                    let end = ((offset + len) as usize).min(model.len());
                    if start < end {
                        want[..end - start].copy_from_slice(&model[start..end]);
                    }
                    prop_assert_eq!(got.as_ref(), want.as_slice());
                }
                ArrayOp::Punch => {
                    a.punch();
                    model.clear();
                }
            }
            prop_assert_eq!(a.size(), model.len() as u64);
        }
    }

    #[test]
    fn array_stored_bytes_never_exceeds_written(
        writes in proptest::collection::vec((0u64..5000, 1usize..500), 1..40)
    ) {
        let mut a = ArrayObject::new();
        let mut total = 0u64;
        for (offset, len) in writes {
            a.write(offset, Bytes::from(vec![1u8; len]));
            total += len as u64;
            prop_assert!(a.stored_bytes() <= total);
            prop_assert!(a.stored_bytes() >= len as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// KvObject vs a BTreeMap reference model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum KvOp {
    Put(Vec<u8>, Vec<u8>),
    Get(Vec<u8>),
    Remove(Vec<u8>),
}

fn kv_op() -> impl Strategy<Value = KvOp> {
    let key = proptest::collection::vec(any::<u8>(), 0..12);
    let val = proptest::collection::vec(any::<u8>(), 0..24);
    prop_oneof![
        3 => (key.clone(), val).prop_map(|(k, v)| KvOp::Put(k, v)),
        2 => key.clone().prop_map(KvOp::Get),
        1 => key.prop_map(KvOp::Remove),
    ]
}

proptest! {
    #[test]
    fn kv_matches_btreemap_model(ops in proptest::collection::vec(kv_op(), 1..80)) {
        let mut kv = KvObject::new();
        let mut model = std::collections::BTreeMap::<Vec<u8>, Vec<u8>>::new();
        for op in ops {
            match op {
                KvOp::Put(k, v) => {
                    let prev = kv.put(&k, Bytes::from(v.clone()));
                    let mprev = model.insert(k, v);
                    prop_assert_eq!(prev.map(|b| b.to_vec()), mprev);
                }
                KvOp::Get(k) => {
                    prop_assert_eq!(
                        kv.get(&k).map(|b| b.to_vec()),
                        model.get(&k).cloned()
                    );
                }
                KvOp::Remove(k) => {
                    prop_assert_eq!(
                        kv.remove(&k).map(|b| b.to_vec()),
                        model.remove(&k)
                    );
                }
            }
            prop_assert_eq!(kv.len(), model.len());
        }
        let keys: Vec<Vec<u8>> = model.keys().cloned().collect();
        prop_assert_eq!(kv.list_keys(), keys);
        // Range and prefix listings agree with the model's view.
        let from_mid: Vec<Vec<u8>> = model.range(vec![0x40u8]..).map(|(k, _)| k.clone()).collect();
        prop_assert_eq!(kv.list_range(&[0x40], None), from_mid);
        let below_mid: Vec<Vec<u8>> =
            model.range(..vec![0x40u8]).map(|(k, _)| k.clone()).collect();
        prop_assert_eq!(kv.list_range(b"", Some(&[0x40])), below_mid);
        let prefixed: Vec<Vec<u8>> = model
            .keys()
            .filter(|k| k.starts_with(&[0x40]))
            .cloned()
            .collect();
        prop_assert_eq!(kv.list_prefix(&[0x40]), prefixed);
    }
}

// ---------------------------------------------------------------------------
// Range/prefix listing boundary semantics vs the list_keys oracle
// ---------------------------------------------------------------------------

/// Keys drawn from a deliberately nasty alphabet: the bytes around the
/// fieldio `FIELD_KEYS_FROM` sentinel (`b"_\x60"`), plus `0xfe`/`0xff`
/// so ranges and prefixes hit the top of the byte order, with short
/// lengths to force boundary collisions.
fn boundary_key() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(0x5eu8),
            Just(0x5f),
            Just(0x60),
            Just(0x61),
            Just(0xfe),
            Just(0xff)
        ],
        0..4,
    )
}

proptest! {
    /// `list_range`/`list_prefix` agree with filtering the naive
    /// `list_keys` oracle for arbitrary bounds — including empty ranges
    /// (start == end), bounds equal to the `b"_\x60"` sentinel, and keys
    /// containing 0xff.
    #[test]
    fn kv_listings_match_list_keys_oracle(
        keys in proptest::collection::vec(boundary_key(), 0..24),
        from in boundary_key(),
        until_key in boundary_key(),
        bounded in any::<bool>(),
        prefix in boundary_key(),
    ) {
        let until = bounded.then_some(until_key);
        let mut kv = KvObject::new();
        for k in &keys {
            kv.put(k, Bytes::new());
        }
        let oracle = kv.list_keys();
        // The oracle itself is the deduplicated, sorted key set.
        let sorted: Vec<Vec<u8>> = keys
            .iter()
            .cloned()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        prop_assert_eq!(
            oracle.iter().map(|b| b.to_vec()).collect::<Vec<_>>(),
            sorted
        );

        let want_range: Vec<Bytes> = oracle
            .iter()
            .filter(|k| {
                k.as_ref() >= from.as_slice()
                    && until.as_ref().is_none_or(|u| k.as_ref() < u.as_slice())
            })
            .cloned()
            .collect();
        prop_assert_eq!(kv.list_range(&from, until.as_deref()), want_range);

        // start == end is always the empty half-open range, even when a
        // key sits exactly on the bound.
        prop_assert!(kv.list_range(&from, Some(&from)).is_empty());

        let want_prefix: Vec<Bytes> = oracle
            .iter()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        prop_assert_eq!(kv.list_prefix(&prefix), want_prefix);

        // An unbounded scan from the empty key IS the oracle.
        prop_assert_eq!(kv.list_range(b"", None), oracle);
    }
}

// ---------------------------------------------------------------------------
// Placement invariants
// ---------------------------------------------------------------------------

fn any_class() -> impl Strategy<Value = ObjectClass> {
    prop_oneof![
        Just(ObjectClass::S1),
        Just(ObjectClass::S2),
        Just(ObjectClass::SX),
        Just(ObjectClass::RP2)
    ]
}

proptest! {
    #[test]
    fn stripe_targets_valid_and_distinct(
        hi in any::<u32>(), lo in any::<u64>(), class in any_class(), targets in 1u32..256
    ) {
        let oid = Oid::generate(hi, lo, class);
        let stripe = stripe_targets(oid, targets);
        prop_assert_eq!(stripe.len() as u32, class.stripe_width(targets));
        let mut sorted = stripe.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), stripe.len(), "stripe shards must be distinct");
        for t in stripe {
            prop_assert!(t < targets);
        }
    }

    #[test]
    fn target_shards_conserve_bytes_and_respect_stripe(
        hi in any::<u32>(), lo in any::<u64>(), class in any_class(),
        offset in 0u64..(64 << 20), len in 1u64..(64 << 20), targets in 1u32..256
    ) {
        let oid = Oid::generate(hi, lo, class);
        let shards = array_target_shards(oid, offset, len, targets);
        let total: u64 = shards.iter().map(|(_, b)| b).sum();
        prop_assert_eq!(total, len);
        let stripe = stripe_targets(oid, targets);
        for (t, b) in &shards {
            prop_assert!(stripe.contains(t), "shard target outside stripe");
            prop_assert!(*b > 0);
        }
        // Grouped: each target appears at most once.
        let mut ts: Vec<u32> = shards.iter().map(|(t, _)| *t).collect();
        ts.sort_unstable();
        ts.dedup();
        prop_assert_eq!(ts.len(), shards.len());
    }

    #[test]
    fn replica_targets_distinct_when_pool_allows(
        hi in any::<u32>(), lo in any::<u64>(), targets in 2u32..256
    ) {
        use daosim_objstore::placement::replica_targets;
        let oid = Oid::generate(hi, lo, ObjectClass::RP2);
        let reps = replica_targets(oid, targets);
        prop_assert_eq!(reps.len(), 2);
        prop_assert_ne!(reps[0], reps[1]);
        for t in reps {
            prop_assert!(t < targets);
        }
    }

    #[test]
    fn oid_roundtrip(hi in any::<u32>(), lo in any::<u64>(), class in any_class()) {
        let oid = Oid::generate(hi, lo, class);
        prop_assert_eq!(oid.class(), class);
        prop_assert_eq!(oid.user_bits(), (hi, lo));
    }
}

// ---------------------------------------------------------------------------
// Erasure-coding math
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn ec_reconstruction_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        use daosim_objstore::ec;
        let payload = Bytes::from(data);
        let (h0, h1) = ec::split_halves(&payload);
        prop_assert_eq!(ec::join_halves(&h0, &h1), payload.clone());
        let parity = ec::xor_parity(&h0, &h1);
        prop_assert_eq!(parity.len(), h0.len().max(h1.len()));
        // Either lost cell reconstructs exactly.
        prop_assert_eq!(
            ec::reconstruct_cell(&h1, &parity, h0.len()),
            h0.to_vec()
        );
        prop_assert_eq!(
            ec::reconstruct_cell(&h0, &parity, h1.len()),
            h1.to_vec()
        );
    }

    #[test]
    fn ec_parity_is_symmetric(a in proptest::collection::vec(any::<u8>(), 0..512),
                              b in proptest::collection::vec(any::<u8>(), 0..512)) {
        use daosim_objstore::ec::xor_parity;
        prop_assert_eq!(xor_parity(&a, &b), xor_parity(&b, &a));
        // XOR with self is zero.
        let z = xor_parity(&a, &a);
        prop_assert!(z.iter().all(|&x| x == 0));
    }
}

// ---------------------------------------------------------------------------
// md5 basic properties (correctness vectors live in unit tests)
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn md5_is_deterministic_and_input_sensitive(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        use daosim_objstore::md5::md5;
        let a = md5(&data);
        let b = md5(&data);
        prop_assert_eq!(a, b);
        let mut flipped = data.clone();
        if !flipped.is_empty() {
            flipped[0] ^= 1;
            prop_assert_ne!(md5(&flipped), a);
        }
    }
}
