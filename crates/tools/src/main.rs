//! `daosctl` — manage snapshot-backed weather-field archives.
//!
//! ```text
//! daosctl init     <archive> [--targets N]
//! daosctl put      <archive> <key> [--file PATH | --text STRING]
//! daosctl get      <archive> <key> [--out PATH]
//! daosctl list     <archive> <forecast-key>
//! daosctl retrieve <archive> <request>     # e.g. param=t/u,step=0/24
//! daosctl info     <archive>
//! ```

use std::path::PathBuf;
use std::process::exit;

use daosim_tools::{
    cmd_failure_drill, cmd_fuzz, cmd_get, cmd_info, cmd_init, cmd_ior_interfaces, cmd_list,
    cmd_nwp_cycle, cmd_put, cmd_retrieve, cmd_simulate, cmd_synth_trace, cmd_tiering, cmd_trace,
    cmd_wipe, Outcome,
};

fn usage() -> ! {
    eprintln!(
        "usage: daosctl <init|put|get|list|retrieve|wipe|info|synth-trace|simulate|trace|failure-drill> <archive> [args...]\n\
         \n\
         init     <archive> [--targets N]\n\
         put      <archive> <key> [--file PATH | --text STRING]\n\
         get      <archive> <key> [--out PATH]\n\
         list     <archive> <forecast-key>\n\
         retrieve <archive> <request>\n\
         wipe     <archive> <forecast-key>\n\
         info     <archive>\n\
         synth-trace <out.csv> [--procs N] [--steps N] [--fields N] [--mib N] [--interval-ms N]\n\
         simulate    <trace.csv> [--servers N] [--clients N] [--paced] [--mode full|no-containers|no-index] [--window W]\n\
         trace       <trace.csv> [--servers N] [--clients N] [--paced] [--mode M] [--window W] [--out trace.json] [--metrics metrics.csv]\n\
         failure-drill <trace.csv> [--servers N] [--clients N] [--kill-ms N] [--restart-ms N]\n\
         fuzz        [--seeds N] [--start S] [--policy all|fifo|lifo|random|wake-delay] [--jobs N]\n\
         nwp-cycle   [--writers N] [--readers N] [--steps N] [--fields N] [--kib N]\n\
                     [--interval-ms N] [--layout shared|per-process|both]\n\
                     [--admission fifo|writer-priority|both] [--seed S] [--faults]\n\
         ior-interfaces [--segments N] [--ppn N] [--transfer-kib A,B,...]\n\
         tiering     [--writers N] [--readers N] [--steps N] [--fields N] [--kib N]\n\
                     [--interval-ms N] [--scm-mib N] [--threshold-kib N] [--seed S]"
    );
    exit(2);
}

/// Parses a numeric flag at its destination width, so an out-of-range
/// value (`--servers 70000`) is a usage error instead of a silent
/// truncation. Parse failures name the offending flag before the usage.
fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("daosctl: bad value for {flag}: {v:?}");
            usage()
        }),
        None => default,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `fuzz` takes no archive argument; handle it before the archive parse.
    if args.first().map(String::as_str) == Some("fuzz") {
        let rest = &args[1..];
        let policy = flag_value(rest, "--policy").unwrap_or_else(|| "all".to_string());
        let result = cmd_fuzz(
            parse_flag(rest, "--seeds", 64),
            parse_flag(rest, "--start", 0),
            &policy,
            parse_flag::<usize>(rest, "--jobs", 8),
        );
        match result {
            Ok(Outcome::Fuzzed {
                seeds_run,
                policies_per_seed,
                failures,
            }) => {
                for f in &failures {
                    eprintln!("FAIL: {f}");
                }
                println!(
                    "fuzzed {seeds_run} seed(s) x {policies_per_seed} policies: {}",
                    if failures.is_empty() {
                        "schedule-invariant".to_string()
                    } else {
                        format!("{} divergence(s)", failures.len())
                    }
                );
                exit(if failures.is_empty() { 0 } else { 1 });
            }
            Ok(_) => unreachable!("cmd_fuzz returns Outcome::Fuzzed"),
            Err(e) => {
                eprintln!("daosctl: {e}");
                exit(1);
            }
        }
    }
    // `nwp-cycle` also takes no archive: it runs purely in the simulator.
    if args.first().map(String::as_str) == Some("nwp-cycle") {
        let rest = &args[1..];
        let layout = flag_value(rest, "--layout").unwrap_or_else(|| "both".to_string());
        let admission = flag_value(rest, "--admission").unwrap_or_else(|| "fifo".to_string());
        let result = cmd_nwp_cycle(
            parse_flag(rest, "--writers", 4u32),
            parse_flag(rest, "--readers", 8u32),
            parse_flag(rest, "--steps", 2u32),
            parse_flag(rest, "--fields", 3u32),
            parse_flag(rest, "--kib", 256),
            parse_flag(rest, "--interval-ms", 40),
            &layout,
            &admission,
            parse_flag(rest, "--seed", 7),
            rest.iter().any(|a| a == "--faults"),
        );
        match result {
            Ok(Outcome::Cycled { outcomes, faults }) => {
                println!(
                    "{:<18} {:<15} {:>4} {:>6} {:>13} {:>13} {:>13} {:>11} {:>12} {:>8}",
                    "layout",
                    "admission",
                    "met",
                    "missed",
                    "worst-late-ms",
                    "writer-p99-us",
                    "reader-p99-us",
                    "aged-grants",
                    "backlog-peak",
                    "secs"
                );
                for o in &outcomes {
                    println!(
                        "{:<18} {:<15} {:>4} {:>6} {:>13.2} {:>13.1} {:>13.1} {:>11} {:>12} {:>8.4}",
                        o.layout.name(),
                        o.admission.name(),
                        o.deadlines_met,
                        o.deadlines_missed,
                        o.worst_lateness_ms,
                        o.writer_p99_us,
                        o.reader_p99_us,
                        o.aged_grants,
                        o.backlog_peak,
                        o.end_secs
                    );
                }
                if faults {
                    for o in &outcomes {
                        let r = &o.resilience;
                        println!(
                            "{} ({}): {} retries, {} timeouts, {} failovers, {} gave up, \
                             {} faults injected; failed ops: {} writes, {} reads",
                            o.layout.name(),
                            o.admission.name(),
                            r.retries,
                            r.timeouts,
                            r.failovers,
                            r.gave_up,
                            r.faults_injected,
                            r.failed_writes,
                            r.failed_reads
                        );
                    }
                }
                exit(0);
            }
            Ok(_) => unreachable!("cmd_nwp_cycle returns Outcome::Cycled"),
            Err(e) => {
                eprintln!("daosctl: {e}");
                exit(1);
            }
        }
    }
    // `tiering` also takes no archive: it sweeps the two-tier media grid
    // on the simulated cluster.
    if args.first().map(String::as_str) == Some("tiering") {
        let rest = &args[1..];
        let result = cmd_tiering(
            parse_flag(rest, "--writers", 4u32),
            parse_flag(rest, "--readers", 8u32),
            parse_flag(rest, "--steps", 2u32),
            parse_flag(rest, "--fields", 3u32),
            parse_flag(rest, "--kib", 512),
            parse_flag(rest, "--interval-ms", 16),
            parse_flag(rest, "--scm-mib", 12),
            parse_flag(rest, "--threshold-kib", 1024),
            parse_flag(rest, "--seed", 7),
        );
        match result {
            Ok(Outcome::Tiered { rows }) => {
                println!(
                    "{:<9} {:<11} {:>13} {:>13} {:>6} {:>12} {:>13} {:>14} {:>8}",
                    "media",
                    "aggregation",
                    "writer-p99-us",
                    "reader-p99-us",
                    "missed",
                    "scm-used-kib",
                    "nvme-used-kib",
                    "aggregated-kib",
                    "secs"
                );
                for r in &rows {
                    let o = &r.outcome;
                    println!(
                        "{:<9} {:<11} {:>13.1} {:>13.1} {:>6} {:>12} {:>13} {:>14} {:>8.4}",
                        r.media,
                        r.aggregation,
                        o.writer_p99_us,
                        o.reader_p99_us,
                        o.deadlines_missed,
                        o.scm_used / 1024,
                        o.nvme_used / 1024,
                        o.aggregated_bytes / 1024,
                        o.end_secs
                    );
                }
                exit(0);
            }
            Ok(_) => unreachable!("cmd_tiering returns Outcome::Tiered"),
            Err(e) => {
                eprintln!("daosctl: {e}");
                exit(1);
            }
        }
    }
    // `ior-interfaces` also takes no archive: it compares the two IOR
    // APIs (raw DAOS vs the DFS namespace) on the simulated cluster.
    if args.first().map(String::as_str) == Some("ior-interfaces") {
        let rest = &args[1..];
        let transfers: Vec<u64> = match flag_value(rest, "--transfer-kib") {
            Some(list) => list
                .split(',')
                .map(|t| {
                    t.trim().parse().unwrap_or_else(|_| {
                        eprintln!("daosctl: bad value for --transfer-kib: {t:?}");
                        usage()
                    })
                })
                .collect(),
            None => vec![16, 64, 256, 1024, 4096],
        };
        let result = cmd_ior_interfaces(
            &transfers,
            parse_flag(rest, "--segments", 4u32),
            parse_flag(rest, "--ppn", 4u32),
        );
        match result {
            Ok(Outcome::Interfaces { rows }) => {
                println!(
                    "{:>12} {:>12} {:>11} {:>14} {:>11} {:>10} {:>13}",
                    "transfer-KiB",
                    "daos-w-GiB/s",
                    "dfs-w-GiB/s",
                    "write-overhead",
                    "daos-r-GiB/s",
                    "dfs-r-GiB/s",
                    "read-overhead"
                );
                for r in &rows {
                    println!(
                        "{:>12} {:>12.2} {:>11.2} {:>14.3} {:>11.2} {:>10.2} {:>13.3}",
                        r.transfer_kib,
                        r.daos_write_bw,
                        r.dfs_write_bw,
                        r.write_overhead(),
                        r.daos_read_bw,
                        r.dfs_read_bw,
                        r.read_overhead()
                    );
                }
                exit(0);
            }
            Ok(_) => unreachable!("cmd_ior_interfaces returns Outcome::Interfaces"),
            Err(e) => {
                eprintln!("daosctl: {e}");
                exit(1);
            }
        }
    }
    if args.len() < 2 {
        usage();
    }
    let cmd = args[0].as_str();
    let archive = PathBuf::from(&args[1]);
    let rest = &args[2..];

    let result = match cmd {
        "init" => cmd_init(&archive, parse_flag(rest, "--targets", 24)),
        "put" => {
            let key = rest.first().unwrap_or_else(|| usage());
            let data = if let Some(path) = flag_value(rest, "--file") {
                std::fs::read(path).unwrap_or_else(|e| {
                    eprintln!("cannot read payload: {e}");
                    exit(1);
                })
            } else if let Some(text) = flag_value(rest, "--text") {
                text.into_bytes()
            } else {
                usage();
            };
            cmd_put(&archive, key, data)
        }
        "get" => {
            let key = rest.first().unwrap_or_else(|| usage());
            cmd_get(&archive, key)
        }
        "list" => {
            let key = rest.first().unwrap_or_else(|| usage());
            cmd_list(&archive, key)
        }
        "retrieve" => {
            let req = rest.first().unwrap_or_else(|| usage());
            cmd_retrieve(&archive, req)
        }
        "wipe" => {
            let key = rest.first().unwrap_or_else(|| usage());
            cmd_wipe(&archive, key)
        }
        "info" => cmd_info(&archive),
        "synth-trace" => cmd_synth_trace(
            &archive,
            parse_flag(rest, "--procs", 16u32),
            parse_flag(rest, "--steps", 4u32),
            parse_flag(rest, "--fields", 12u32),
            parse_flag(rest, "--mib", 1),
            parse_flag(rest, "--interval-ms", 100),
        ),
        "simulate" => {
            let mode = flag_value(rest, "--mode").unwrap_or_else(|| "full".to_string());
            cmd_simulate(
                &archive,
                parse_flag(rest, "--servers", 1u16),
                parse_flag(rest, "--clients", 2u16),
                rest.iter().any(|a| a == "--paced"),
                &mode,
                parse_flag(rest, "--window", 1u32),
            )
        }
        "trace" => {
            let mode = flag_value(rest, "--mode").unwrap_or_else(|| "full".to_string());
            let json_out =
                PathBuf::from(flag_value(rest, "--out").unwrap_or_else(|| "trace.json".into()));
            let metrics_out = PathBuf::from(
                flag_value(rest, "--metrics").unwrap_or_else(|| "metrics.csv".into()),
            );
            cmd_trace(
                &archive,
                parse_flag(rest, "--servers", 1u16),
                parse_flag(rest, "--clients", 2u16),
                rest.iter().any(|a| a == "--paced"),
                &mode,
                parse_flag(rest, "--window", 1u32),
                &json_out,
                &metrics_out,
            )
        }
        "failure-drill" => cmd_failure_drill(
            &archive,
            parse_flag(rest, "--servers", 1u16),
            parse_flag(rest, "--clients", 2u16),
            parse_flag(rest, "--kill-ms", 59),
            parse_flag(rest, "--restart-ms", 170),
        ),
        _ => usage(),
    };

    match result {
        Ok(Outcome::Created { targets }) => {
            println!("created {} ({} targets)", archive.display(), targets)
        }
        Ok(Outcome::Put { key, bytes }) => println!("archived {key} ({bytes} bytes)"),
        Ok(Outcome::Got { key, data }) => {
            if let Some(out) = flag_value(&args[2..], "--out") {
                std::fs::write(&out, &data).unwrap_or_else(|e| {
                    eprintln!("cannot write output: {e}");
                    exit(1);
                });
                println!("retrieved {key} -> {out} ({} bytes)", data.len());
            } else {
                use std::io::Write;
                std::io::stdout().write_all(&data).ok();
            }
        }
        Ok(Outcome::Listing(entries)) => {
            for e in &entries {
                println!("{e}");
            }
            eprintln!("{} field(s)", entries.len());
        }
        Ok(Outcome::Retrieved {
            found,
            missing,
            bytes,
        }) => {
            println!("retrieved {found} field(s), {bytes} bytes; {missing} missing")
        }
        Ok(Outcome::Wiped { removed }) => println!("wiped {removed} field(s)"),
        Ok(Outcome::TraceWritten { path, ops, gib }) => {
            println!("trace written: {path} ({ops} ops, {gib:.2} GiB of writes)")
        }
        Ok(Outcome::Simulated(stats)) => {
            println!(
                "writes: {:.2} GiB/s ({} ops)",
                stats.writes.global_bw_gib, stats.writes.io_count
            );
            println!(
                "reads : {:.2} GiB/s ({} ops)",
                stats.reads.global_bw_gib, stats.reads.io_count
            );
            println!(
                "tardiness: mean {:.2} ms, max {:.2} ms; total {:.3} s",
                stats.mean_tardiness_ms, stats.max_tardiness_ms, stats.end_secs
            );
        }
        Ok(Outcome::Traced {
            json_path,
            metrics_path,
            spans,
            instants,
            categories,
        }) => {
            println!(
                "trace written: {json_path} ({spans} spans, {instants} instants; \
                 categories: {})",
                categories.join(", ")
            );
            println!("metrics written: {metrics_path}");
            println!("open {json_path} in https://ui.perfetto.dev or chrome://tracing");
        }
        Ok(Outcome::Drilled { stats, timeline }) => {
            println!(" t_ms  write GiB/s  read GiB/s");
            for (t, w, r) in &timeline {
                println!("{t:>5}  {w:>11.2}  {r:>10.2}");
            }
            let res = stats.resilience;
            println!(
                "resilience: {} retries, {} timeouts, {} failovers, {} gave up, {} faults injected",
                res.retries, res.timeouts, res.failovers, res.gave_up, res.faults_injected
            );
            println!(
                "failed ops: {} writes, {} reads",
                res.failed_writes, res.failed_reads
            );
            println!(
                "tardiness: mean {:.2} ms, max {:.2} ms; total {:.3} s",
                stats.mean_tardiness_ms, stats.max_tardiness_ms, stats.end_secs
            );
        }
        Ok(Outcome::Info {
            containers,
            used,
            targets,
            arrays,
            kv_entries,
            array_bytes,
        }) => {
            println!("targets:     {targets}");
            println!("containers:  {containers}");
            println!("arrays:      {arrays} ({array_bytes} live bytes)");
            println!("index keys:  {kv_entries}");
            println!("used bytes:  {used}");
        }
        Ok(Outcome::Fuzzed { .. }) => unreachable!("fuzz is handled before the archive parse"),
        Ok(Outcome::Cycled { .. }) => {
            unreachable!("nwp-cycle is handled before the archive parse")
        }
        Ok(Outcome::Interfaces { .. }) => {
            unreachable!("ior-interfaces is handled before the archive parse")
        }
        Ok(Outcome::Tiered { .. }) => {
            unreachable!("tiering is handled before the archive parse")
        }
        Err(e) => {
            eprintln!("daosctl: {e}");
            exit(1);
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}
