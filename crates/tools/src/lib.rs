//! # daosim-tools — `daosctl`, a snapshot-backed archive tool
//!
//! Command implementations for a small field-archive CLI over the
//! embedded object store and the field I/O layer. Archives persist as
//! pool snapshot files ([`daosim_objstore::snapshot`]); each command
//! loads the archive, operates through the same field I/O functions the
//! benchmarks exercise, and (for mutations) writes the snapshot back.
//!
//! The command layer is a library so it is directly testable; `main.rs`
//! is a thin argv adapter.

use std::fs;
use std::path::Path;
use std::sync::Arc;

use bytes::Bytes;

use daosim_cluster::fuzz::{fuzz_corpus, FuzzReport};
use daosim_cluster::{
    AggregationConfig, ClusterSpec, FaultPlan, NvmeSpec, RetryPolicy, ScmSpec, TierPolicy,
};
use daosim_core::cycle::{run_nwp_cycle, CycleConfig, CycleOutcome, IndexLayout};
use daosim_core::fieldio::{FieldIoConfig, FieldIoMode, FieldStore};
use daosim_core::key::FieldKey;
use daosim_core::metrics::anchored_bandwidth_timeline;
use daosim_core::obs::{chrome_trace_json, json_is_wellformed, validate_spans};
use daosim_core::request::{retrieve, Request};
use daosim_core::trace::{replay, replay_detailed, replay_traced, Pacing, ReplayStats, Trace};
use daosim_ior::{run_ior, Api, FileMode, IorParams};
use daosim_kernel::SchedPolicy;
use daosim_kernel::{AdmissionPolicy, Sim, SimDuration, SimTime};
use daosim_objstore::api::EmbeddedClient;
use daosim_objstore::{load_pool, save_pool, ObjectClass, Pool, Uuid};

/// Everything a command can report back.
#[derive(Debug)]
pub enum Outcome {
    Created {
        targets: u32,
    },
    Put {
        key: String,
        bytes: u64,
    },
    Got {
        key: String,
        data: Vec<u8>,
    },
    Listing(Vec<String>),
    Retrieved {
        found: usize,
        missing: usize,
        bytes: u64,
    },
    Wiped {
        removed: usize,
    },
    Info {
        containers: usize,
        used: u64,
        targets: u32,
        arrays: usize,
        kv_entries: usize,
        array_bytes: u64,
    },
    TraceWritten {
        path: String,
        ops: usize,
        gib: f64,
    },
    Simulated(Box<ReplayStats>),
    Traced {
        /// Where the Chrome trace-event JSON landed.
        json_path: String,
        /// Where the metrics CSV landed.
        metrics_path: String,
        spans: usize,
        instants: usize,
        categories: Vec<String>,
    },
    Drilled {
        stats: Box<ReplayStats>,
        /// `(t_ms, write_gib_s, read_gib_s)` per bucket.
        timeline: Vec<(u64, f64, f64)>,
    },
    Fuzzed {
        seeds_run: usize,
        policies_per_seed: usize,
        /// Pre-formatted failure reports (empty on a clean corpus).
        failures: Vec<String>,
    },
    Cycled {
        /// One outcome per (index layout, admission policy) pair, in the
        /// order requested (layout-major). Each outcome records its own
        /// layout and admission policy.
        outcomes: Vec<CycleOutcome>,
        /// Whether a fault campaign rode on the cycle.
        faults: bool,
    },
    Interfaces {
        /// One row per swept transfer size, in the order requested.
        rows: Vec<InterfaceRow>,
    },
    Tiered {
        /// One row per {scm-only, tiered} × {aggregation off, on} grid
        /// point, media-major.
        rows: Vec<TieringRow>,
    },
}

/// One grid point from [`cmd_tiering`].
#[derive(Debug)]
pub struct TieringRow {
    /// `"scm-only"` or `"tiered"`.
    pub media: &'static str,
    /// Whether the background aggregation service ran.
    pub aggregation: bool,
    pub outcome: CycleOutcome,
}

/// One `api=DAOS` vs `api=DFS` comparison point from
/// [`cmd_ior_interfaces`]. Bandwidths are GiB/s; the overhead ratios
/// are `daos_bw / dfs_bw` (>= 1 when the namespace costs anything).
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceRow {
    pub transfer_kib: u64,
    pub daos_write_bw: f64,
    pub dfs_write_bw: f64,
    pub daos_read_bw: f64,
    pub dfs_read_bw: f64,
}

impl InterfaceRow {
    pub fn write_overhead(&self) -> f64 {
        self.daos_write_bw / self.dfs_write_bw
    }
    pub fn read_overhead(&self) -> f64 {
        self.daos_read_bw / self.dfs_read_bw
    }
}

/// Errors from archive commands.
#[derive(Debug)]
pub enum ToolError {
    Io(std::io::Error),
    Snapshot(daosim_objstore::SnapshotError),
    Field(daosim_core::fieldio::FieldIoError),
    BadArgs(String),
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolError::Io(e) => write!(f, "i/o error: {e}"),
            ToolError::Snapshot(e) => write!(f, "{e}"),
            ToolError::Field(e) => write!(f, "{e}"),
            ToolError::BadArgs(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ToolError {}

impl From<std::io::Error> for ToolError {
    fn from(e: std::io::Error) -> Self {
        ToolError::Io(e)
    }
}

impl From<daosim_objstore::SnapshotError> for ToolError {
    fn from(e: daosim_objstore::SnapshotError) -> Self {
        ToolError::Snapshot(e)
    }
}

impl From<daosim_core::fieldio::FieldIoError> for ToolError {
    fn from(e: daosim_core::fieldio::FieldIoError) -> Self {
        ToolError::Field(e)
    }
}

pub type ToolResult = Result<Outcome, ToolError>;

fn load(path: &Path) -> Result<Arc<Pool>, ToolError> {
    let mut f = fs::File::open(path)?;
    Ok(load_pool(&mut f)?)
}

fn store(path: &Path, pool: &Pool) -> Result<(), ToolError> {
    // Write-then-rename so a crash never corrupts the archive.
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        save_pool(pool, &mut f)?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Distinct oid namespace per mutation so successive tool invocations
/// never collide: derived from the archive's current usage counter.
fn client_id(pool: &Pool) -> u32 {
    (pool.used() as u32) ^ ((pool.cont_count() as u32) << 16) | 0x8000_0000
}

fn with_fieldstore<T>(
    pool: Arc<Pool>,
    f: impl FnOnce(&FieldStore<EmbeddedClient>) -> Result<T, ToolError> + 'static,
) -> Result<T, ToolError>
where
    T: 'static,
{
    let sim = Sim::new();
    let id = client_id(&pool);
    let result: std::rc::Rc<std::cell::RefCell<Option<Result<T, ToolError>>>> =
        std::rc::Rc::default();
    let r2 = std::rc::Rc::clone(&result);
    sim.block_on(async move {
        let fs = FieldStore::connect(EmbeddedClient::new(pool), FieldIoConfig::default(), id)
            .await
            .map_err(ToolError::from);
        let out = match fs {
            Ok(fs) => f(&fs),
            Err(e) => Err(e),
        };
        *r2.borrow_mut() = Some(out);
    });
    std::rc::Rc::try_unwrap(result)
        .ok()
        .expect("executor done")
        .into_inner()
        .expect("command ran")
}

/// `daosctl init <archive> [targets]`
pub fn cmd_init(path: &Path, targets: u32) -> ToolResult {
    if path.exists() {
        return Err(ToolError::BadArgs(format!(
            "{} already exists",
            path.display()
        )));
    }
    let pool = Pool::new(
        Uuid::from_name(path.to_string_lossy().as_bytes()),
        targets,
        daosim_objstore::store::DEFAULT_POOL_CAPACITY,
    );
    store(path, &pool)?;
    Ok(Outcome::Created { targets })
}

/// `daosctl put <archive> <key> <data...>`
pub fn cmd_put(path: &Path, key_text: &str, data: Vec<u8>) -> ToolResult {
    let key = FieldKey::parse(key_text).map_err(ToolError::BadArgs)?;
    let pool = load(path)?;
    let bytes = data.len() as u64;
    let kc = key.canonical();
    {
        let key = key.clone();
        with_fieldstore(Arc::clone(&pool), move |fs| {
            block_here(fs.write_field(&key, Bytes::from(data)))?;
            Ok(())
        })?;
    }
    store(path, &pool)?;
    Ok(Outcome::Put { key: kc, bytes })
}

/// `daosctl get <archive> <key>`
pub fn cmd_get(path: &Path, key_text: &str) -> ToolResult {
    let key = FieldKey::parse(key_text).map_err(ToolError::BadArgs)?;
    let pool = load(path)?;
    let kc = key.canonical();
    let data = with_fieldstore(
        pool,
        move |fs| Ok(block_here(fs.read_field(&key))?.to_vec()),
    )?;
    Ok(Outcome::Got { key: kc, data })
}

/// `daosctl list <archive> <forecast-key>`
pub fn cmd_list(path: &Path, forecast_text: &str) -> ToolResult {
    let key = FieldKey::parse(forecast_text).map_err(ToolError::BadArgs)?;
    let pool = load(path)?;
    let listing = with_fieldstore(pool, move |fs| Ok(block_here(fs.list_fields(&key))?))?;
    Ok(Outcome::Listing(listing))
}

/// `daosctl retrieve <archive> <request>`
pub fn cmd_retrieve(path: &Path, request_text: &str) -> ToolResult {
    let req = Request::parse(request_text).map_err(ToolError::BadArgs)?;
    let pool = load(path)?;
    let (found, missing, bytes) = with_fieldstore(pool, move |fs| {
        let r = block_here(retrieve(fs, &req))?;
        Ok((r.fields.len(), r.missing.len(), r.total_bytes()))
    })?;
    Ok(Outcome::Retrieved {
        found,
        missing,
        bytes,
    })
}

/// `daosctl wipe <archive> <forecast-key>`
pub fn cmd_wipe(path: &Path, forecast_text: &str) -> ToolResult {
    let key = FieldKey::parse(forecast_text).map_err(ToolError::BadArgs)?;
    let pool = load(path)?;
    let removed = {
        let pool = Arc::clone(&pool);
        with_fieldstore(pool, move |fs| Ok(block_here(fs.wipe_forecast(&key))?))?
    };
    store(path, &pool)?;
    Ok(Outcome::Wiped { removed })
}

/// `daosctl synth-trace <out.csv> [procs steps fields_per_step mib interval_ms]`
#[allow(clippy::too_many_arguments)]
pub fn cmd_synth_trace(
    path: &Path,
    procs: u32,
    steps: u32,
    fields_per_step: u32,
    field_mib: u64,
    interval_ms: u64,
) -> ToolResult {
    if procs == 0 || steps == 0 || fields_per_step == 0 || field_mib == 0 {
        return Err(ToolError::BadArgs(
            "all trace parameters must be positive".into(),
        ));
    }
    let trace = Trace::synthesize_operational(
        procs,
        steps,
        fields_per_step,
        field_mib * 1024 * 1024,
        SimDuration::from_millis(interval_ms),
    );
    fs::write(path, trace.to_csv())?;
    Ok(Outcome::TraceWritten {
        path: path.display().to_string(),
        ops: trace.len(),
        gib: trace.total_write_bytes() as f64 / (1u64 << 30) as f64,
    })
}

/// Builds the replay field I/O config from the CLI's `--mode` and
/// `--window` arguments.
fn fieldio_for(mode: &str, window: u32) -> Result<FieldIoConfig, ToolError> {
    let mode = match mode {
        "full" => FieldIoMode::Full,
        "no-containers" => FieldIoMode::NoContainers,
        "no-index" => FieldIoMode::NoIndex,
        other => return Err(ToolError::BadArgs(format!("unknown mode {other:?}"))),
    };
    Ok(FieldIoConfig::builder().mode(mode).window(window).build())
}

/// `daosctl simulate <trace.csv> [--servers N] [--clients N] [--paced]
/// [--mode M] [--window W]`
pub fn cmd_simulate(
    trace_path: &Path,
    servers: u16,
    clients: u16,
    paced: bool,
    mode: &str,
    window: u32,
) -> ToolResult {
    let text = fs::read_to_string(trace_path)?;
    let trace = Trace::from_csv(&text).map_err(ToolError::BadArgs)?;
    if trace.is_empty() {
        return Err(ToolError::BadArgs("trace holds no operations".into()));
    }
    let stats = replay(
        ClusterSpec::tcp(servers.max(1), clients.max(1)),
        fieldio_for(mode, window)?,
        &trace,
        if paced { Pacing::Paced } else { Pacing::AsFast },
    );
    Ok(Outcome::Simulated(Box::new(stats)))
}

/// `daosctl trace <trace.csv> [--servers N] [--clients N] [--paced]
/// [--mode M] [--window W] [--out trace.json] [--metrics metrics.csv]`
///
/// Replays the schedule with span tracing enabled and writes a Chrome
/// trace-event JSON (loadable in Perfetto or `chrome://tracing`) plus a
/// metrics CSV. The span stream is validated (balanced ends, parents
/// closing after children) before anything is written; replays are
/// deterministic, so re-running the command reproduces both artifacts
/// byte for byte.
#[allow(clippy::too_many_arguments)]
pub fn cmd_trace(
    trace_path: &Path,
    servers: u16,
    clients: u16,
    paced: bool,
    mode: &str,
    window: u32,
    json_out: &Path,
    metrics_out: &Path,
) -> ToolResult {
    let text = fs::read_to_string(trace_path)?;
    let trace = Trace::from_csv(&text).map_err(ToolError::BadArgs)?;
    if trace.is_empty() {
        return Err(ToolError::BadArgs("trace holds no operations".into()));
    }
    let traced = replay_traced(
        ClusterSpec::tcp(servers.max(1), clients.max(1)),
        fieldio_for(mode, window)?,
        &trace,
        if paced { Pacing::Paced } else { Pacing::AsFast },
        None,
    );
    let summary = validate_spans(&traced.spans)
        .map_err(|e| ToolError::BadArgs(format!("recorded trace is malformed: {e}")))?;
    if summary.unclosed > 0 {
        return Err(ToolError::BadArgs(format!(
            "recorded trace left {} span(s) unclosed",
            summary.unclosed
        )));
    }
    let json = chrome_trace_json(&traced.spans);
    debug_assert!(json_is_wellformed(&json));
    fs::write(json_out, &json)?;
    fs::write(metrics_out, traced.metrics.to_csv())?;
    Ok(Outcome::Traced {
        json_path: json_out.display().to_string(),
        metrics_path: metrics_out.display().to_string(),
        spans: summary.spans,
        instants: summary.instants,
        categories: summary.categories,
    })
}

/// `daosctl failure-drill <trace.csv> [--servers N] [--clients N]
/// [--kill-ms N] [--restart-ms N]`
///
/// Replays the trace *paced* with replicated fields (RP2 arrays and
/// index) and the operational retry policy while engine 0 is killed,
/// rebuilt, and later restarted. Reports the availability timeline and
/// the resilience counters; failed operations are counted, not fatal.
pub fn cmd_failure_drill(
    trace_path: &Path,
    servers: u16,
    clients: u16,
    kill_ms: u64,
    restart_ms: u64,
) -> ToolResult {
    let text = fs::read_to_string(trace_path)?;
    let trace = Trace::from_csv(&text).map_err(ToolError::BadArgs)?;
    if trace.is_empty() {
        return Err(ToolError::BadArgs("trace holds no operations".into()));
    }
    if restart_ms <= kill_ms {
        return Err(ToolError::BadArgs(
            "--restart-ms must come after --kill-ms".into(),
        ));
    }
    let mut spec = ClusterSpec::tcp(servers.max(1), clients.max(1));
    spec.retry = RetryPolicy::builder().operational().build();
    let fieldio = FieldIoConfig {
        array_class: ObjectClass::RP2,
        kv_class: ObjectClass::RP2,
        ..Default::default()
    };
    let plan = FaultPlan::new()
        .kill_and_rebuild(SimDuration::from_millis(kill_ms), 0)
        .restart(SimDuration::from_millis(restart_ms), 0);
    let out = replay_detailed(spec, fieldio, &trace, Pacing::Paced, Some(&plan));
    let bucket = SimDuration::from_millis(50);
    let end = SimTime::from_nanos((out.stats.end_secs * 1e9) as u64);
    let writes = anchored_bandwidth_timeline(&out.write_events, bucket, end);
    let reads = anchored_bandwidth_timeline(&out.read_events, bucket, end);
    let timeline = writes
        .iter()
        .zip(&reads)
        .map(|(w, r)| (w.t_ns / 1_000_000, w.bw_gib, r.bw_gib))
        .collect();
    Ok(Outcome::Drilled {
        stats: Box::new(out.stats),
        timeline,
    })
}

/// `daosctl fuzz --seeds N [--start S] [--policy all|lifo|random|wake-delay|fifo]`
///
/// Differential schedule-perturbation fuzzing (see
/// [`daosim_cluster::fuzz`]): every seed in `start..start + seeds` is run
/// under FIFO (the reference) plus the selected perturbed policies, and
/// any divergence in per-event outcomes, final pool state, byte
/// conservation or quiescence is reported with a shrunk repro. Seeds are
/// fanned out over `jobs` threads; the report order is deterministic, so
/// reruns of the same corpus print byte-identical output.
pub fn cmd_fuzz(seeds: u64, start: u64, policy: &str, jobs: usize) -> ToolResult {
    fn sel_all(_: &SchedPolicy) -> bool {
        true
    }
    fn sel_none(_: &SchedPolicy) -> bool {
        false
    }
    fn sel_lifo(p: &SchedPolicy) -> bool {
        matches!(p, SchedPolicy::Lifo)
    }
    fn sel_random(p: &SchedPolicy) -> bool {
        matches!(p, SchedPolicy::Random { .. })
    }
    fn sel_wake_delay(p: &SchedPolicy) -> bool {
        matches!(p, SchedPolicy::WakeDelay { .. })
    }
    let select: fn(&SchedPolicy) -> bool = match policy {
        "all" => sel_all,
        "fifo" => sel_none,
        "lifo" => sel_lifo,
        "random" => sel_random,
        "wake-delay" => sel_wake_delay,
        other => {
            return Err(ToolError::BadArgs(format!(
                "unknown --policy {other} (expected all|fifo|lifo|random|wake-delay)"
            )))
        }
    };
    if seeds == 0 {
        return Err(ToolError::BadArgs("--seeds must be positive".into()));
    }

    let corpus: Vec<u64> = (start..start.saturating_add(seeds)).collect();
    let jobs = jobs
        .max(1)
        .min(corpus.len())
        .min(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let per_chunk = corpus.len().div_ceil(jobs);
    let reports: Vec<FuzzReport> = std::thread::scope(|s| {
        let handles: Vec<_> = corpus
            .chunks(per_chunk)
            .map(|chunk| s.spawn(move || fuzz_corpus(chunk.iter().copied(), select)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fuzz worker panicked"))
            .collect()
    });

    let mut seeds_run = 0;
    let mut policies_per_seed = 0;
    let mut failures = Vec::new();
    for r in reports {
        seeds_run += r.seeds_run;
        policies_per_seed = policies_per_seed.max(r.policies_per_seed);
        for f in &r.failures {
            failures.push(format!(
                "seed {} diverged under {:?} (admission {}): {}\n  minimized to {} op(s): {:?}\n  repro: {}",
                f.seed,
                f.policy,
                f.admission.name(),
                f.detail,
                f.minimized.ops.len(),
                f.minimized.ops,
                f.repro()
            ));
        }
    }
    Ok(Outcome::Fuzzed {
        seeds_run,
        policies_per_seed,
        failures,
    })
}

/// `daosctl nwp-cycle [--writers N] [--readers N] [--steps N] [--fields N]
/// [--kib N] [--interval-ms N] [--layout shared|per-process|both]
/// [--admission fifo|writer-priority|both] [--seed S] [--faults]`
///
/// Runs the operational contention cycle ([`daosim_core::cycle`]) on a
/// simulated `tcp(1, 2)` cluster: deadline-carrying writers stream
/// fields each step while a reader fleet fetches the previous step's
/// fields from the same pool. With `--layout both` the shared-index and
/// index-per-process runs share every other parameter, so the printed
/// rows are directly comparable; `--admission both` likewise crosses
/// FIFO against writer-priority admission at the target queues.
/// `--faults` seeds a random engine-fault campaign over the first half
/// of the cycle (with the operational retry policy, so the cycle
/// degrades instead of failing).
#[allow(clippy::too_many_arguments)]
pub fn cmd_nwp_cycle(
    writers: u32,
    readers: u32,
    steps: u32,
    fields: u32,
    kib: u64,
    interval_ms: u64,
    layout: &str,
    admission: &str,
    seed: u64,
    faults: bool,
) -> ToolResult {
    let layouts: Vec<IndexLayout> = match layout {
        "shared" => vec![IndexLayout::Shared],
        "per-process" => vec![IndexLayout::PerProcess],
        "both" => IndexLayout::all().to_vec(),
        other => {
            return Err(ToolError::BadArgs(format!(
                "unknown --layout {other} (expected shared|per-process|both)"
            )))
        }
    };
    let admissions: Vec<AdmissionPolicy> = match admission {
        "both" => vec![AdmissionPolicy::Fifo, AdmissionPolicy::writer_priority()],
        one => match AdmissionPolicy::parse(one) {
            Some(p) => vec![p],
            None => {
                return Err(ToolError::BadArgs(format!(
                    "unknown --admission {one} (expected fifo|writer-priority|both)"
                )))
            }
        },
    };
    let mut outcomes = Vec::with_capacity(layouts.len() * admissions.len());
    for l in layouts {
        for &adm in &admissions {
            // The builder's build() validates the shape: any zero flag
            // comes back as a typed CycleConfigError instead of a panic
            // deep inside the cycle.
            let cfg = CycleConfig::builder(l)
                .writers(writers)
                .readers(readers)
                .steps(steps)
                .fields_per_step(fields)
                .field_bytes(kib * 1024)
                .step_interval(SimDuration::from_millis(interval_ms))
                .seed(seed)
                .admission(adm)
                .build()
                .map_err(|e| ToolError::BadArgs(e.to_string()))?;
            let mut spec = ClusterSpec::tcp(1, 2);
            let plan = faults.then(|| {
                spec.retry = RetryPolicy::builder().operational().build();
                let horizon =
                    SimDuration::from_nanos(cfg.step_interval.as_nanos() * cfg.steps as u64 / 2);
                FaultPlan::random_campaign(seed, spec.engines(), horizon)
            });
            let outcome = run_nwp_cycle(spec, &cfg, plan.as_ref())
                .map_err(|e| ToolError::BadArgs(e.to_string()))?;
            outcomes.push(outcome);
        }
    }
    Ok(Outcome::Cycled { outcomes, faults })
}

/// `daosctl tiering [--writers N] [--readers N] [--steps N] [--fields N]
/// [--kib N] [--interval-ms N] [--scm-mib N] [--threshold-kib N] [--seed S]`
///
/// Runs the shared-index NWP cycle over the {scm-only, tiered} ×
/// {aggregation off, on} media grid on a simulated `tcp(1, 2)` cluster.
/// Tiered points shrink the per-socket SCM write buffer to `--scm-mib`
/// and add the `NvmeSpec::p4510_gen1()` capacity tier (30%/10%
/// watermarks, placement threshold `--threshold-kib`), so spill and
/// background aggregation actually engage; scm-only points keep the
/// paper's NEXTGenIO media. Purely sim-driven and seed-fixed: reruns
/// print byte-identical output.
#[allow(clippy::too_many_arguments)]
pub fn cmd_tiering(
    writers: u32,
    readers: u32,
    steps: u32,
    fields: u32,
    kib: u64,
    interval_ms: u64,
    scm_mib: u64,
    threshold_kib: u64,
    seed: u64,
) -> ToolResult {
    if scm_mib == 0 {
        return Err(ToolError::BadArgs("--scm-mib must be positive".into()));
    }
    if threshold_kib == 0 {
        return Err(ToolError::BadArgs(
            "--threshold-kib must be positive".into(),
        ));
    }
    let base = CycleConfig::builder(IndexLayout::Shared)
        .writers(writers)
        .readers(readers)
        .steps(steps)
        .fields_per_step(fields)
        .field_bytes(kib * 1024)
        .step_interval(SimDuration::from_millis(interval_ms))
        .seed(seed)
        .admission(AdmissionPolicy::Fifo)
        .build()
        .map_err(|e| ToolError::BadArgs(e.to_string()))?;
    // The cycle is backlogged under contention; the aggregation horizon
    // runs 4x the nominal span so the service outlives the congested
    // tail where most writes are actually serviced.
    let horizon =
        SimDuration::from_nanos(base.step_interval.as_nanos() * (base.steps as u64 + 1) * 4);
    let mut rows = Vec::with_capacity(4);
    for tiered in [false, true] {
        for aggregation in [false, true] {
            let mut spec = ClusterSpec::tcp(1, 2);
            if tiered {
                spec.calibration.scm = ScmSpec {
                    capacity: scm_mib * 1024 * 1024,
                    ..spec.calibration.scm
                };
                spec.tiering = TierPolicy {
                    nvme: Some(NvmeSpec::p4510_gen1()),
                    scm_threshold: threshold_kib * 1024,
                    high_watermark: 0.30,
                    low_watermark: 0.10,
                };
            }
            let cfg = CycleConfig {
                aggregation: aggregation.then(|| AggregationConfig::operational(horizon, seed)),
                ..base
            };
            let outcome =
                run_nwp_cycle(spec, &cfg, None).map_err(|e| ToolError::BadArgs(e.to_string()))?;
            rows.push(TieringRow {
                media: if tiered { "tiered" } else { "scm-only" },
                aggregation,
                outcome,
            });
        }
    }
    Ok(Outcome::Tiered { rows })
}

/// `daosctl ior-interfaces [--segments N] [--ppn N] [--transfer-kib A,B,...]`
///
/// Runs the IOR interface comparison on a simulated `tcp(1, 2)` cluster:
/// each swept transfer size is written and read twice — once against raw
/// DAOS Arrays (`api=DAOS`), once through the `daosim-dfs` POSIX
/// namespace (`api=DFS`) — with every other parameter shared, so the
/// `daos_bw / dfs_bw` ratio isolates the namespace overhead (dirent
/// create, path walk, size update per file). Files use the SX class so
/// both runs share one data-path shape. Purely sim-driven: reruns print
/// byte-identical output.
pub fn cmd_ior_interfaces(transfers_kib: &[u64], segments: u32, ppn: u32) -> ToolResult {
    if transfers_kib.is_empty() {
        return Err(ToolError::BadArgs("--transfer-kib list is empty".into()));
    }
    if let Some(zero) = transfers_kib.iter().find(|&&t| t == 0) {
        return Err(ToolError::BadArgs(format!(
            "--transfer-kib {zero} must be positive"
        )));
    }
    if segments == 0 {
        return Err(ToolError::BadArgs("--segments must be positive".into()));
    }
    if ppn == 0 {
        return Err(ToolError::BadArgs("--ppn must be positive".into()));
    }
    let spec = ClusterSpec::tcp(1, 2);
    let point = |transfer_kib: u64, api: Api| IorParams {
        transfer_bytes: transfer_kib * 1024,
        segments,
        procs_per_node: ppn,
        class: ObjectClass::SX,
        iterations: 1,
        file_mode: FileMode::FilePerProcess,
        inflight: 1,
        api,
    };
    let rows = transfers_kib
        .iter()
        .map(|&t| {
            let daos = run_ior(spec, point(t, Api::Daos));
            let dfs = run_ior(spec, point(t, Api::Dfs));
            InterfaceRow {
                transfer_kib: t,
                daos_write_bw: daos.write_bw(),
                dfs_write_bw: dfs.write_bw(),
                daos_read_bw: daos.read_bw(),
                dfs_read_bw: dfs.read_bw(),
            }
        })
        .collect();
    Ok(Outcome::Interfaces { rows })
}

/// `daosctl info <archive>`
pub fn cmd_info(path: &Path) -> ToolResult {
    let pool = load(path)?;
    let stats = pool.stats();
    Ok(Outcome::Info {
        containers: pool.cont_count(),
        used: pool.used(),
        targets: pool.targets(),
        arrays: stats.array_objects,
        kv_entries: stats.kv_entries,
        array_bytes: stats.array_bytes,
    })
}

/// The embedded backend never suspends; poll the future to completion in
/// place (panics if it ever pends, which would be a bug).
fn block_here<F: std::future::Future>(fut: F) -> F::Output {
    let waker = std::task::Waker::noop();
    let mut cx = std::task::Context::from_waker(waker);
    let mut fut = std::pin::pin!(fut);
    match fut.as_mut().poll(&mut cx) {
        std::task::Poll::Ready(v) => v,
        std::task::Poll::Pending => unreachable!("embedded backend suspended"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempArchive(std::path::PathBuf);
    impl TempArchive {
        fn new(name: &str) -> Self {
            let p =
                std::env::temp_dir().join(format!("daosctl-test-{name}-{}", std::process::id()));
            let _ = fs::remove_file(&p);
            TempArchive(p)
        }
    }
    impl Drop for TempArchive {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
        }
    }

    const KEY: &str = "class=od,date=20290101,expver=0001,param=t,step=24";

    #[test]
    fn full_cli_lifecycle() {
        let a = TempArchive::new("lifecycle");
        assert!(matches!(
            cmd_init(&a.0, 24).unwrap(),
            Outcome::Created { targets: 24 }
        ));

        let put = cmd_put(&a.0, KEY, b"grib-payload".to_vec()).unwrap();
        match put {
            Outcome::Put { bytes, .. } => assert_eq!(bytes, 12),
            other => panic!("{other:?}"),
        }

        match cmd_get(&a.0, KEY).unwrap() {
            Outcome::Got { data, .. } => assert_eq!(data, b"grib-payload"),
            other => panic!("{other:?}"),
        }

        match cmd_list(&a.0, "class=od,date=20290101,expver=0001").unwrap() {
            Outcome::Listing(l) => assert_eq!(l, vec!["param=t,step=24"]),
            other => panic!("{other:?}"),
        }

        match cmd_info(&a.0).unwrap() {
            Outcome::Info {
                containers,
                used,
                targets,
                arrays,
                kv_entries,
                array_bytes,
            } => {
                assert_eq!(containers, 3);
                assert!(used > 0);
                assert_eq!(targets, 24);
                assert_eq!(arrays, 1);
                assert!(kv_entries >= 2, "main + forecast index entries");
                assert_eq!(array_bytes, 12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn puts_across_invocations_do_not_collide() {
        let a = TempArchive::new("multi-put");
        cmd_init(&a.0, 8).unwrap();
        for step in 0..5 {
            let key = format!("class=od,date=20290101,param=t,step={step}");
            cmd_put(&a.0, &key, format!("v{step}").into_bytes()).unwrap();
        }
        for step in 0..5 {
            let key = format!("class=od,date=20290101,param=t,step={step}");
            match cmd_get(&a.0, &key).unwrap() {
                Outcome::Got { data, .. } => assert_eq!(data, format!("v{step}").into_bytes()),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn rewrite_returns_latest_across_invocations() {
        let a = TempArchive::new("rewrite");
        cmd_init(&a.0, 8).unwrap();
        cmd_put(&a.0, KEY, b"one".to_vec()).unwrap();
        cmd_put(&a.0, KEY, b"two".to_vec()).unwrap();
        match cmd_get(&a.0, KEY).unwrap() {
            Outcome::Got { data, .. } => assert_eq!(data, b"two"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn retrieve_reports_partial_hits() {
        let a = TempArchive::new("retrieve");
        cmd_init(&a.0, 8).unwrap();
        cmd_put(&a.0, "class=od,date=20290101,param=t,step=0", b"x".to_vec()).unwrap();
        match cmd_retrieve(&a.0, "class=od,date=20290101,param=t,step=0/24").unwrap() {
            Outcome::Retrieved {
                found,
                missing,
                bytes,
            } => {
                assert_eq!((found, missing, bytes), (1, 1, 1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wipe_clears_a_forecast_from_the_archive() {
        let a = TempArchive::new("wipe");
        cmd_init(&a.0, 8).unwrap();
        cmd_put(&a.0, KEY, b"x".to_vec()).unwrap();
        match cmd_wipe(&a.0, "class=od,date=20290101,expver=0001").unwrap() {
            Outcome::Wiped { removed } => assert_eq!(removed, 1),
            other => panic!("{other:?}"),
        }
        // Wipe persisted: a fresh invocation no longer finds the field.
        assert!(matches!(cmd_get(&a.0, KEY), Err(ToolError::Field(_))));
        match cmd_list(&a.0, "class=od,date=20290101,expver=0001").unwrap() {
            Outcome::Listing(l) => assert!(l.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn synth_trace_and_simulate_roundtrip() {
        let a = TempArchive::new("trace");
        match cmd_synth_trace(&a.0, 4, 2, 3, 1, 40).unwrap() {
            Outcome::TraceWritten { ops, gib, .. } => {
                assert_eq!(ops, 4 * 2 * 3 * 2);
                assert!(gib > 0.0);
            }
            other => panic!("{other:?}"),
        }
        match cmd_simulate(&a.0, 1, 1, true, "no-containers", 1).unwrap() {
            Outcome::Simulated(stats) => {
                assert_eq!(stats.writes.io_count, 24);
                assert_eq!(stats.reads.io_count, 24);
                assert!(stats.end_secs > 0.0);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            cmd_simulate(&a.0, 1, 1, false, "bogus", 1),
            Err(ToolError::BadArgs(_))
        ));
    }

    #[test]
    fn simulate_with_window_pipelines_deterministically() {
        let a = TempArchive::new("window");
        cmd_synth_trace(&a.0, 4, 2, 3, 1, 40).unwrap();
        let run = |window| match cmd_simulate(&a.0, 1, 1, false, "full", window).unwrap() {
            Outcome::Simulated(stats) => *stats,
            other => panic!("{other:?}"),
        };
        let sequential = run(1);
        let pipelined = run(8);
        assert_eq!(pipelined.writes.io_count, sequential.writes.io_count);
        assert_eq!(pipelined.reads.io_count, sequential.reads.io_count);
        assert!(pipelined.end_secs <= sequential.end_secs);
        let again = run(8);
        assert_eq!(pipelined.end_secs.to_bits(), again.end_secs.to_bits());
    }

    #[test]
    fn trace_command_writes_validated_byte_identical_artifacts() {
        let a = TempArchive::new("chrome");
        cmd_synth_trace(&a.0, 4, 1, 2, 1, 40).unwrap();
        let json1 = TempArchive::new("chrome-json1");
        let json2 = TempArchive::new("chrome-json2");
        let met1 = TempArchive::new("chrome-met1");
        let met2 = TempArchive::new("chrome-met2");
        let run = |json: &Path, met: &Path| {
            match cmd_trace(&a.0, 1, 1, false, "no-containers", 1, json, met).unwrap() {
                Outcome::Traced {
                    spans, categories, ..
                } => {
                    assert!(spans > 0);
                    // The acceptance bar: at least 4 distinct categories.
                    assert!(categories.len() >= 4, "categories: {categories:?}");
                }
                other => panic!("{other:?}"),
            }
        };
        run(&json1.0, &met1.0);
        run(&json2.0, &met2.0);
        let j1 = fs::read(&json1.0).unwrap();
        assert_eq!(
            j1,
            fs::read(&json2.0).unwrap(),
            "trace JSON must be byte-identical"
        );
        assert_eq!(
            fs::read(&met1.0).unwrap(),
            fs::read(&met2.0).unwrap(),
            "metrics CSV must be byte-identical"
        );
        let text = String::from_utf8(j1).unwrap();
        assert!(json_is_wellformed(&text));
        assert!(text.contains("\"ph\":\"X\""));
    }

    #[test]
    fn failure_drill_rides_out_a_kill_and_rebuild() {
        let a = TempArchive::new("drill");
        cmd_synth_trace(&a.0, 4, 3, 2, 1, 60).unwrap();
        match cmd_failure_drill(&a.0, 1, 2, 59, 170).unwrap() {
            Outcome::Drilled { stats, timeline } => {
                let r = stats.resilience;
                assert_eq!(r.faults_injected, 2, "kill+rebuild and restart");
                assert_eq!(
                    (r.failed_writes, r.failed_reads),
                    (0, 0),
                    "replicated fields must survive the drill: {r:?}"
                );
                assert!(r.retries > 0, "the kill must force retries: {r:?}");
                assert!(!timeline.is_empty());
                assert_eq!(stats.writes.io_count, 4 * 3 * 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            cmd_failure_drill(&a.0, 1, 2, 170, 59),
            Err(ToolError::BadArgs(_))
        ));
    }

    #[test]
    fn synth_trace_rejects_zero_parameters() {
        let a = TempArchive::new("trace-zero");
        assert!(matches!(
            cmd_synth_trace(&a.0, 0, 2, 3, 1, 40),
            Err(ToolError::BadArgs(_))
        ));
    }

    #[test]
    fn init_refuses_to_clobber() {
        let a = TempArchive::new("clobber");
        cmd_init(&a.0, 8).unwrap();
        assert!(matches!(cmd_init(&a.0, 8), Err(ToolError::BadArgs(_))));
    }

    #[test]
    fn get_missing_field_is_a_field_error() {
        let a = TempArchive::new("missing");
        cmd_init(&a.0, 8).unwrap();
        assert!(matches!(cmd_get(&a.0, KEY), Err(ToolError::Field(_))));
    }

    #[test]
    fn bad_key_is_bad_args() {
        let a = TempArchive::new("badkey");
        cmd_init(&a.0, 8).unwrap();
        assert!(matches!(
            cmd_put(&a.0, "no-equals", vec![]),
            Err(ToolError::BadArgs(_))
        ));
    }

    #[test]
    fn nwp_cycle_runs_both_layouts_with_closed_accounting() {
        let out = cmd_nwp_cycle(2, 4, 2, 2, 64, 40, "both", "fifo", 7, false).unwrap();
        match out {
            Outcome::Cycled { outcomes, faults } => {
                assert!(!faults);
                assert_eq!(outcomes.len(), 2);
                for o in &outcomes {
                    assert_eq!(o.admission, AdmissionPolicy::Fifo);
                    assert_eq!(o.deadlines_met + o.deadlines_missed, 2 * 2);
                    assert_eq!(o.fields_written, 2 * 2 * 2);
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nwp_cycle_crosses_layouts_with_admission_policies() {
        let out = cmd_nwp_cycle(2, 4, 2, 2, 64, 40, "both", "both", 7, false).unwrap();
        match out {
            Outcome::Cycled { outcomes, .. } => {
                // Layout-major, admission-minor ordering.
                let want = [
                    (IndexLayout::Shared, AdmissionPolicy::Fifo),
                    (IndexLayout::Shared, AdmissionPolicy::writer_priority()),
                    (IndexLayout::PerProcess, AdmissionPolicy::Fifo),
                    (IndexLayout::PerProcess, AdmissionPolicy::writer_priority()),
                ];
                assert_eq!(outcomes.len(), want.len());
                for (o, (layout, adm)) in outcomes.iter().zip(want) {
                    assert_eq!(o.layout, layout);
                    assert_eq!(o.admission, adm);
                    assert_eq!(o.deadlines_met + o.deadlines_missed, 2 * 2);
                    assert_eq!(o.fields_written, 2 * 2 * 2);
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nwp_cycle_rejects_bad_layout_bad_admission_and_zero_shapes() {
        assert!(matches!(
            cmd_nwp_cycle(2, 4, 2, 2, 64, 40, "triple", "fifo", 7, false),
            Err(ToolError::BadArgs(_))
        ));
        assert!(matches!(
            cmd_nwp_cycle(2, 4, 2, 2, 64, 40, "both", "lifo", 7, false),
            Err(ToolError::BadArgs(_))
        ));
        // Every numeric shape flag is validated, not just the fleet.
        for zeroed in [
            cmd_nwp_cycle(0, 4, 2, 2, 64, 40, "both", "fifo", 7, false),
            cmd_nwp_cycle(2, 0, 2, 2, 64, 40, "both", "fifo", 7, false),
            cmd_nwp_cycle(2, 4, 0, 2, 64, 40, "both", "fifo", 7, false),
            cmd_nwp_cycle(2, 4, 2, 0, 64, 40, "both", "fifo", 7, false),
            cmd_nwp_cycle(2, 4, 2, 2, 0, 40, "both", "fifo", 7, false),
            cmd_nwp_cycle(2, 4, 2, 2, 64, 0, "both", "fifo", 7, false),
        ] {
            assert!(matches!(zeroed, Err(ToolError::BadArgs(_))), "{zeroed:?}");
        }
    }

    #[test]
    fn tiering_covers_the_media_grid_with_closed_accounting() {
        let out = cmd_tiering(2, 4, 2, 3, 512, 16, 12, 1024, 7).unwrap();
        match out {
            Outcome::Tiered { rows } => {
                let want = [
                    ("scm-only", false),
                    ("scm-only", true),
                    ("tiered", false),
                    ("tiered", true),
                ];
                assert_eq!(rows.len(), want.len());
                for (r, (media, agg)) in rows.iter().zip(want) {
                    assert_eq!(r.media, media);
                    assert_eq!(r.aggregation, agg);
                    assert_eq!(r.outcome.fields_written, 2 * 2 * 3);
                    assert!(r.outcome.scm_used > 0);
                }
                // The paper's SCM-only media never touches a capacity
                // tier, with or without the (inert) service running.
                for r in &rows[..2] {
                    assert_eq!(r.outcome.nvme_used, 0, "{r:?}");
                    assert_eq!(r.outcome.aggregated_bytes, 0, "{r:?}");
                }
                // With the service off nothing migrates; on, it moves
                // real bytes and leaves the write buffer no fuller.
                assert_eq!(rows[2].outcome.aggregated_bytes, 0);
                assert!(rows[3].outcome.aggregated_bytes > 0, "{:?}", rows[3]);
                assert!(rows[3].outcome.scm_used <= rows[2].outcome.scm_used);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tiering_is_deterministic() {
        let run = || match cmd_tiering(2, 4, 2, 3, 512, 16, 12, 1024, 7).unwrap() {
            Outcome::Tiered { rows } => rows
                .into_iter()
                .map(|r| {
                    (
                        r.media,
                        r.aggregation,
                        r.outcome.end_secs.to_bits(),
                        r.outcome.scm_used,
                        r.outcome.nvme_used,
                        r.outcome.aggregated_bytes,
                    )
                })
                .collect::<Vec<_>>(),
            other => panic!("{other:?}"),
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tiering_rejects_zero_shapes() {
        // Cycle-shape zeros come back typed from the builder; the
        // media knobs are validated in the command itself.
        for zeroed in [
            cmd_tiering(0, 4, 2, 3, 512, 16, 12, 1024, 7),
            cmd_tiering(2, 0, 2, 3, 512, 16, 12, 1024, 7),
            cmd_tiering(2, 4, 0, 3, 512, 16, 12, 1024, 7),
            cmd_tiering(2, 4, 2, 0, 512, 16, 12, 1024, 7),
            cmd_tiering(2, 4, 2, 3, 0, 16, 12, 1024, 7),
            cmd_tiering(2, 4, 2, 3, 512, 0, 12, 1024, 7),
            cmd_tiering(2, 4, 2, 3, 512, 16, 0, 1024, 7),
            cmd_tiering(2, 4, 2, 3, 512, 16, 12, 0, 7),
        ] {
            assert!(matches!(zeroed, Err(ToolError::BadArgs(_))), "{zeroed:?}");
        }
    }

    #[test]
    fn ior_interfaces_reports_positive_overhead_and_is_deterministic() {
        let out = cmd_ior_interfaces(&[16, 1024], 2, 2).unwrap();
        match &out {
            Outcome::Interfaces { rows } => {
                assert_eq!(rows.len(), 2);
                for r in rows {
                    assert!(r.daos_write_bw > 0.0 && r.dfs_write_bw > 0.0);
                    // Same data path plus extra dirent traffic: the DFS
                    // run never beats the raw-array run.
                    assert!(r.write_overhead() >= 1.0, "{r:?}");
                    assert!(r.read_overhead() >= 1.0, "{r:?}");
                }
                // Small transfers pay more of the namespace tax.
                assert!(rows[0].write_overhead() > rows[1].write_overhead());
            }
            other => panic!("{other:?}"),
        }
        let again = cmd_ior_interfaces(&[16, 1024], 2, 2).unwrap();
        match (out, again) {
            (Outcome::Interfaces { rows: a }, Outcome::Interfaces { rows: b }) => {
                assert_eq!(a, b)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ior_interfaces_rejects_empty_and_zero_shapes() {
        for bad in [
            cmd_ior_interfaces(&[], 2, 2),
            cmd_ior_interfaces(&[16, 0], 2, 2),
            cmd_ior_interfaces(&[16], 0, 2),
            cmd_ior_interfaces(&[16], 2, 0),
        ] {
            assert!(matches!(bad, Err(ToolError::BadArgs(_))), "{bad:?}");
        }
    }

    #[test]
    fn nwp_cycle_with_faults_still_accounts_every_step() {
        let out = cmd_nwp_cycle(2, 2, 2, 2, 64, 40, "shared", "writer-priority", 3, true).unwrap();
        match out {
            Outcome::Cycled { outcomes, faults } => {
                assert!(faults);
                assert_eq!(outcomes.len(), 1);
                let o = &outcomes[0];
                assert_eq!(o.admission, AdmissionPolicy::writer_priority());
                assert_eq!(o.deadlines_met + o.deadlines_missed, 2 * 2);
            }
            other => panic!("{other:?}"),
        }
    }
}
