//! The simulated DAOS client: `DaosApi` with modelled time.
//!
//! Every operation decomposes the way the wire protocol does:
//!
//! * a request message (provider latency),
//! * engine-serial metadata work (container-handle validation — the cost
//!   that grows with the pool's container population),
//! * per-target service: FIFO queue, per-RPC CPU, media time,
//! * bulk data as fabric flows through the software-stack links (writes
//!   client→engine, reads engine→client), pipelined with media service,
//! * a response message (provider latency),
//!
//! plus per-object *update locks* serializing conflicting updates (the
//! DTX-leader surrogate that shared-index contention binds on).
//!
//! Data is applied to the backing [`daosim_objstore`] store at the
//! modelled completion point, so reads return real bytes and correctness
//! is testable end-to-end under the timing model.

use std::rc::Rc;
use std::sync::Arc;

use bytes::Bytes;
use daosim_kernel::sync::{join_all, timeout, AdmissionClass, Elapsed};
use daosim_kernel::{CounterHandle, HistogramHandle, MetricsRegistry, SimDuration};
use daosim_net::Endpoint;
use daosim_objstore::ec;
use daosim_objstore::placement::{
    array_target_shards, ec_targets, kv_target, leader_target, replica_targets, ARRAY_CHUNK,
};
use daosim_objstore::prelude::{ArrayHandle, DaosApi, DaosError, ObjectClass, Oid, Result, Uuid};
use daosim_objstore::Container;

use crate::deploy::{Deployment, Engine};
use crate::fault::jitter_salt;

/// Bucket bounds (ns) for the `client.op_ns` latency histogram:
/// 10 µs .. 10 s in decades, plus the implicit overflow bucket.
const OP_NS_BOUNDS: [u64; 7] = [
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// The client operations that run under [`SimClient::retrying`]. Each op
/// owns a completion counter (`client.<op>.ops`) and shares the
/// `client.op_ns` latency histogram; [`ClientMetrics`] resolves the
/// handles once per deployment so completing an op is two `Cell` bumps,
/// not a `format!` plus string-keyed map lookups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientOp {
    KvPut,
    KvGet,
    KvPutIfAbsent,
    KvRemove,
    KvListKeys,
    KvListRange,
    KvPutMulti,
    ArrayCreate,
    ArrayOpen,
    ArrayOpenOrCreate,
    ArrayWrite,
    ArrayWriteVec,
    ArrayRead,
    ArraySize,
    ObjPunch,
}

impl ClientOp {
    pub const ALL: [ClientOp; 15] = [
        ClientOp::KvPut,
        ClientOp::KvGet,
        ClientOp::KvPutIfAbsent,
        ClientOp::KvRemove,
        ClientOp::KvListKeys,
        ClientOp::KvListRange,
        ClientOp::KvPutMulti,
        ClientOp::ArrayCreate,
        ClientOp::ArrayOpen,
        ClientOp::ArrayOpenOrCreate,
        ClientOp::ArrayWrite,
        ClientOp::ArrayWriteVec,
        ClientOp::ArrayRead,
        ClientOp::ArraySize,
        ClientOp::ObjPunch,
    ];

    /// Wire name: span label and the tag inside `DaosError::Timeout`.
    pub fn name(self) -> &'static str {
        match self {
            ClientOp::KvPut => "kv_put",
            ClientOp::KvGet => "kv_get",
            ClientOp::KvPutIfAbsent => "kv_put_if_absent",
            ClientOp::KvRemove => "kv_remove",
            ClientOp::KvListKeys => "kv_list_keys",
            ClientOp::KvListRange => "kv_list_range",
            ClientOp::KvPutMulti => "kv_put_multi",
            ClientOp::ArrayCreate => "array_create",
            ClientOp::ArrayOpen => "array_open",
            ClientOp::ArrayOpenOrCreate => "array_open_or_create",
            ClientOp::ArrayWrite => "array_write",
            ClientOp::ArrayWriteVec => "array_write_vec",
            ClientOp::ArrayRead => "array_read",
            ClientOp::ArraySize => "array_size",
            ClientOp::ObjPunch => "obj_punch",
        }
    }

    /// Name of this op's completion counter in the metrics registry.
    fn ops_metric(self) -> &'static str {
        match self {
            ClientOp::KvPut => "client.kv_put.ops",
            ClientOp::KvGet => "client.kv_get.ops",
            ClientOp::KvPutIfAbsent => "client.kv_put_if_absent.ops",
            ClientOp::KvRemove => "client.kv_remove.ops",
            ClientOp::KvListKeys => "client.kv_list_keys.ops",
            ClientOp::KvListRange => "client.kv_list_range.ops",
            ClientOp::KvPutMulti => "client.kv_put_multi.ops",
            ClientOp::ArrayCreate => "client.array_create.ops",
            ClientOp::ArrayOpen => "client.array_open.ops",
            ClientOp::ArrayOpenOrCreate => "client.array_open_or_create.ops",
            ClientOp::ArrayWrite => "client.array_write.ops",
            ClientOp::ArrayWriteVec => "client.array_write_vec.ops",
            ClientOp::ArrayRead => "client.array_read.ops",
            ClientOp::ArraySize => "client.array_size.ops",
            ClientOp::ObjPunch => "client.obj_punch.ops",
        }
    }
}

/// Workload class a client belongs to, for QoS accounting. Classified
/// clients record their op latencies into a per-class histogram
/// (`client.writer.op_ns` / `client.reader.op_ns`) on top of the shared
/// `client.op_ns`, so time-critical model output and bulk product
/// generation can be told apart in one registry snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QosClass {
    /// No class: only the shared histogram is fed (the default).
    #[default]
    Unclassified,
    /// Deadline-carrying model-output writer.
    Writer,
    /// Product-generation reader.
    Reader,
}

impl QosClass {
    pub fn name(self) -> &'static str {
        match self {
            QosClass::Unclassified => "unclassified",
            QosClass::Writer => "writer",
            QosClass::Reader => "reader",
        }
    }

    /// The admission lane this class queues in at every deployment
    /// service queue: writers carry deadlines and go urgent, everything
    /// else (readers, unclassified IOR-style clients) queues normal.
    pub fn admission_class(self) -> AdmissionClass {
        match self {
            QosClass::Writer => AdmissionClass::Urgent,
            QosClass::Reader | QosClass::Unclassified => AdmissionClass::Normal,
        }
    }
}

/// Pre-resolved `client.*` metric handles, one set per deployment (the
/// same interning pattern as [`crate::fault::ResilienceStats`]).
pub struct ClientMetrics {
    ops: [CounterHandle; ClientOp::ALL.len()],
    op_ns: HistogramHandle,
    writer_op_ns: HistogramHandle,
    reader_op_ns: HistogramHandle,
}

impl ClientMetrics {
    /// Registers every per-op counter and the latency histograms in
    /// `metrics`, so they appear in snapshots from time zero.
    pub fn new(metrics: &MetricsRegistry) -> Self {
        ClientMetrics {
            ops: ClientOp::ALL.map(|op| metrics.counter(op.ops_metric())),
            op_ns: metrics.histogram("client.op_ns", &OP_NS_BOUNDS),
            writer_op_ns: metrics.histogram("client.writer.op_ns", &OP_NS_BOUNDS),
            reader_op_ns: metrics.histogram("client.reader.op_ns", &OP_NS_BOUNDS),
        }
    }

    /// Records one completed op and its end-to-end latency, splitting it
    /// by the issuing client's QoS class.
    fn note_op(&self, op: ClientOp, class: QosClass, dur_ns: u64) {
        self.ops[op as usize].inc();
        self.op_ns.observe(dur_ns);
        match class {
            QosClass::Unclassified => {}
            QosClass::Writer => self.writer_op_ns.observe(dur_ns),
            QosClass::Reader => self.reader_op_ns.observe(dur_ns),
        }
    }
}

/// Open-container handle for the simulated backend.
#[derive(Clone)]
pub struct SimCont {
    pub uuid: Uuid,
    cont: Arc<Container>,
}

impl SimCont {
    pub fn container(&self) -> &Arc<Container> {
        &self.cont
    }
}

/// A client process's connection to the simulated cluster, pinned to one
/// client-node socket.
#[derive(Clone)]
pub struct SimClient {
    d: Rc<Deployment>,
    ep: Endpoint,
    qos: QosClass,
}

impl SimClient {
    pub fn new(d: Rc<Deployment>, ep: Endpoint) -> Self {
        SimClient {
            d,
            ep,
            qos: QosClass::Unclassified,
        }
    }

    /// Convenience: the client for process `rank_on_node` of `client_node`.
    pub fn for_process(d: &Rc<Deployment>, client_node: u16, rank_on_node: u32) -> Self {
        let ep = d.client_endpoint(client_node, rank_on_node);
        SimClient::new(Rc::clone(d), ep)
    }

    /// Tags this client with a QoS class; every completed op's latency is
    /// then also recorded into the class's own histogram.
    pub fn with_qos(mut self, class: QosClass) -> Self {
        self.qos = class;
        self
    }

    pub fn qos(&self) -> QosClass {
        self.qos
    }

    /// The admission lane this client's ops queue in (see
    /// [`QosClass::admission_class`]).
    fn lane(&self) -> AdmissionClass {
        self.qos.admission_class()
    }

    pub fn endpoint(&self) -> Endpoint {
        self.ep
    }

    pub fn deployment(&self) -> &Rc<Deployment> {
        &self.d
    }

    async fn latency(&self) {
        self.d.sim.sleep(self.d.fabric.msg_latency()).await;
    }

    /// Applies the pool map (rebuild remaps) to a placement target.
    fn live_target(&self, t: u32) -> u32 {
        self.d.resolve_target(t)
    }

    fn engine_for(&self, target: u32) -> Result<&Engine> {
        let e = self.d.engine_of_target(target);
        if e.is_alive() {
            Ok(e)
        } else {
            Err(DaosError::EngineUnavailable(
                self.d.engine_index_of_target(target),
            ))
        }
    }

    /// Engine-serial container-handle work; zero-cost when the pool holds
    /// few containers.
    async fn engine_meta(&self, engine: &Engine) {
        let cost = self
            .d
            .spec
            .calibration
            .cont_table_cost(self.d.pool.cont_count());
        if cost > SimDuration::ZERO {
            let _p = engine.meta.acquire_one(self.lane()).await;
            self.d.sim.sleep(cost).await;
        }
    }

    /// Occupies target `t` for `service` time, FIFO behind earlier work.
    async fn target_service(&self, t: u32, service: SimDuration) {
        let tgt = self.d.target(t);
        // Leaf spans: shard RPCs run concurrently under `join_all`, so
        // these must not adopt children on the shared task stack.
        let q = self.d.sim.span_leaf("media", "queue");
        // The backlog token covers exactly the queue wait; its Drop makes
        // the gauge exact even when an attempt timeout cancels the wait.
        let backlog = self.d.backlog().enter();
        let _p = tgt.sem.acquire_one(self.lane()).await;
        drop(backlog);
        q.end();
        let _s = self.d.sim.span_leaf("media", "service");
        self.d.sim.sleep(service).await;
        tgt.charge_busy(service.as_nanos());
    }

    /// One small (metadata-sized) RPC to the target owning `t`.
    async fn small_rpc(&self, t: u32, service: SimDuration) -> Result<()> {
        let engine = self.engine_for(t)?;
        self.latency().await;
        self.engine_meta(engine).await;
        self.target_service(t, service).await;
        self.latency().await;
        Ok(())
    }

    /// The first replica target whose engine is alive; errors with the
    /// last replica's engine when every one is down, and with
    /// [`DaosError::NoTargets`] when handed no candidates at all (so an
    /// empty slice never blames target 0's engine). Degraded reads and
    /// metadata operations on replicated objects fail over through this.
    fn first_alive(&self, targets: &[u32]) -> Result<u32> {
        let Some(&last) = targets.last() else {
            return Err(DaosError::NoTargets);
        };
        for &t in targets {
            if self.d.engine_of_target(t).is_alive() {
                return Ok(t);
            }
        }
        Err(DaosError::EngineUnavailable(
            self.d.engine_index_of_target(last),
        ))
    }

    /// Metadata target for `oid`: the leader, failing over across the
    /// redundancy group (replicas, or EC data+parity cells).
    fn meta_target(&self, oid: Oid) -> Result<u32> {
        let mut candidates = if oid.class() == ObjectClass::EC2P1 {
            let (mut dts, pt) = ec_targets(oid, self.pool_targets());
            dts.push(pt);
            dts
        } else {
            replica_targets(oid, self.pool_targets())
        };
        for t in &mut candidates {
            *t = self.live_target(*t);
        }
        self.first_alive(&candidates)
    }

    /// Engine-serial dispatch work per bulk shard RPC.
    async fn shard_dispatch(&self, engine: &Engine) {
        let cost = self.d.spec.calibration.shard_dispatch_cost;
        if cost > SimDuration::ZERO {
            let _p = engine.meta.acquire_one(self.lane()).await;
            self.d.sim.sleep(cost).await;
        }
    }

    /// Bulk write of one shard: the wire flow and the media reservation
    /// run concurrently (streamed I/O pipelines them in reality).
    async fn shard_write(&self, t: u32, bytes: u64) -> Result<()> {
        let engine = self.engine_for(t)?;
        self.shard_dispatch(engine).await;
        let cal = &self.d.spec.calibration;
        let route = self.d.write_route(self.ep, engine);
        let cap = self.d.fabric.flow_cap(self.ep, engine.endpoint);
        let flow = self.d.fabric.net().transfer(&route, bytes, cap);
        // Tier placement charges occupancy and prices the write at the
        // receiving tier's rates; both tiers full is the permanent
        // out-of-space error (DESIGN.md §14).
        let charge = self
            .d
            .target(t)
            .media
            .charge_write(bytes)
            .map_err(|_| DaosError::NoSpace)?;
        let media = cal.rpc_cpu_cost + charge.time;
        self.d.target(t).tally.note_write(bytes);
        let service = self.target_service(t, media);
        let mut both = join_all(vec![
            Box::pin(async move {
                flow.await;
            }) as std::pin::Pin<Box<dyn std::future::Future<Output = ()>>>,
            Box::pin(service),
        ]);
        (&mut both).await;
        Ok(())
    }

    /// Bulk read of one shard, symmetric to [`Self::shard_write`].
    async fn shard_read(&self, t: u32, bytes: u64) -> Result<()> {
        let engine = self.engine_for(t)?;
        self.shard_dispatch(engine).await;
        let cal = &self.d.spec.calibration;
        let route = self.d.read_route(engine, self.ep);
        let cap = self.d.fabric.flow_cap(engine.endpoint, self.ep);
        let flow = self.d.fabric.net().transfer(&route, bytes, cap);
        let media = cal.rpc_cpu_cost + self.d.target(t).media.read_time(bytes);
        self.d.target(t).tally.note_read(bytes);
        let service = self.target_service(t, media);
        let mut both = join_all(vec![
            Box::pin(async move {
                flow.await;
            }) as std::pin::Pin<Box<dyn std::future::Future<Output = ()>>>,
            Box::pin(service),
        ]);
        (&mut both).await;
        Ok(())
    }

    /// Runs `attempt` under the deployment's [`RetryPolicy`]: each
    /// attempt is deadline-bounded (when configured); transient failures
    /// (engine unavailable, attempt timeout) back off exponentially with
    /// deterministic jitter and re-run — re-computing placement, so
    /// pool-map changes installed by a rebuild and engines revived in the
    /// meantime are picked up (failover); permanent errors return
    /// immediately. With the default fail-fast policy this is a plain
    /// pass-through. Safe to re-run attempts: store mutations and pool
    /// charges land only at an attempt's completion, so a timed-out
    /// (dropped) attempt leaves no partial state.
    async fn retrying<T, Fut>(&self, op: ClientOp, mut attempt: impl FnMut() -> Fut) -> Result<T>
    where
        Fut: std::future::Future<Output = Result<T>>,
    {
        let sim = self.d.sim.clone();
        let op_span = sim.span("client", op.name());
        let start = sim.now();
        let result = {
            let sim = &sim;
            async move {
                let policy = self.d.spec.retry;
                if !policy.enabled() {
                    let _a = sim.span("client", "attempt");
                    return attempt().await;
                }
                let stats = self.d.resilience();
                let mut saw_unavailable = false;
                let mut n = 0u32;
                loop {
                    n += 1;
                    let result = {
                        let _a = sim.span("client", "attempt");
                        if policy.attempt_timeout > SimDuration::ZERO {
                            match timeout(sim, policy.attempt_timeout, attempt()).await {
                                Ok(r) => r,
                                Err(Elapsed) => {
                                    stats.note_timeout();
                                    Err(DaosError::Timeout(op.name()))
                                }
                            }
                        } else {
                            attempt().await
                        }
                    };
                    match result {
                        Ok(v) => {
                            if saw_unavailable {
                                stats.note_failover();
                            }
                            return Ok(v);
                        }
                        Err(e) if e.is_transient() => {
                            saw_unavailable |= matches!(e, DaosError::EngineUnavailable(_));
                            let deadline_hit = policy.op_deadline > SimDuration::ZERO
                                && sim.now() - start >= policy.op_deadline;
                            if n >= policy.max_attempts || deadline_hit {
                                stats.note_gave_up();
                                return Err(e);
                            }
                            stats.note_retry();
                            let salt = jitter_salt(self.ep, sim.now().as_nanos(), n);
                            sim.sleep(policy.backoff_delay(n, salt)).await;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            .await
        };
        self.d
            .client_metrics()
            .note_op(op, self.qos, (sim.now() - start).as_nanos());
        op_span.end();
        result
    }
}

/// Single-attempt operation bodies: one placement computation plus one
/// wire exchange each. The [`DaosApi`] impl re-runs these through
/// [`SimClient::retrying`], which is how failover re-consults the pool
/// map — placement happens inside the attempt.
impl SimClient {
    async fn cont_open_or_create_once(&self, uuid: Uuid) -> Result<SimCont> {
        self.latency().await;
        let cal = &self.d.spec.calibration;
        let exists = self.d.pool.cont_open(uuid).is_ok();
        {
            let _p = self.d.pool_md.acquire_one(self.lane()).await;
            let cost = if exists {
                cal.cont_open_cost
            } else {
                cal.cont_create_cost
            };
            self.d.sim.sleep(cost).await;
        }
        let cont = self.d.pool.cont_open_or_create(uuid)?;
        self.latency().await;
        Ok(SimCont { uuid, cont })
    }

    async fn cont_open_once(&self, uuid: Uuid) -> Result<SimCont> {
        self.latency().await;
        {
            let _p = self.d.pool_md.acquire_one(self.lane()).await;
            self.d
                .sim
                .sleep(self.d.spec.calibration.cont_open_cost)
                .await;
        }
        let cont = self.d.pool.cont_open(uuid)?;
        self.latency().await;
        Ok(SimCont { uuid, cont })
    }

    async fn kv_put_once(&self, cont: &SimCont, oid: Oid, key: &[u8], value: Bytes) -> Result<()> {
        let cal = self.d.spec.calibration;
        // Updates land on every replica of the key's home target;
        // unreplicated classes have exactly one.
        let targets: Vec<u32> = if oid.class().replicas(self.pool_targets()) > 1 {
            replica_targets(oid, self.pool_targets())
        } else {
            vec![kv_target(oid, key, self.pool_targets())]
        };
        let targets: Vec<u32> = targets.into_iter().map(|t| self.live_target(t)).collect();
        for &t in &targets {
            self.engine_for(t)?;
        }
        // Placement can legitimately come back empty mid-fault-campaign
        // (a just-killed pool can remap every candidate away); error like
        // `first_alive` does instead of indexing into nothing.
        let Some(&primary) = targets.first() else {
            return Err(DaosError::NoTargets);
        };
        let engine = self.engine_for(primary)?;
        self.latency().await;
        self.engine_meta(engine).await;
        // Conflicting updates to one object serialize on its update lock
        // for the leader-serialization cost plus the target service.
        let lock = self.d.obj_lock(cont.uuid, oid, 0);
        {
            let _g = lock.acquire_one(self.lane()).await;
            let _os = self.d.sim.span("objstore", "kv_update");
            self.d.sim.sleep(cal.kv_update_serial_cost).await;
            let bytes = (key.len() + value.len()) as u64;
            let updates: Vec<_> = targets
                .iter()
                .map(|&t| {
                    let this = self.clone();
                    async move {
                        let charge = this
                            .d
                            .target(t)
                            .media
                            .charge_write(bytes)
                            .map_err(|_| DaosError::NoSpace)?;
                        let service = cal.kv_op_cost + charge.time;
                        this.d.target(t).tally.note_write(bytes);
                        this.target_service(t, service).await;
                        Ok::<(), DaosError>(())
                    }
                })
                .collect();
            for r in join_all(updates).await {
                r?;
            }
            self.d.pool.charge(bytes)?;
            cont.cont.kv_put(oid, key, value)?;
        }
        self.latency().await;
        Ok(())
    }

    /// Conditional KV insert: same placement, round trip and leader
    /// serial section as `kv_put_once`, but the presence check happens
    /// *inside* the serial section, so racing inserts on one key resolve
    /// to exactly one winner. A losing insert pays the round trip and a
    /// leader read, not the replica writes.
    async fn kv_put_if_absent_once(
        &self,
        cont: &SimCont,
        oid: Oid,
        key: &[u8],
        value: Bytes,
    ) -> Result<Option<Bytes>> {
        let cal = self.d.spec.calibration;
        let targets: Vec<u32> = if oid.class().replicas(self.pool_targets()) > 1 {
            replica_targets(oid, self.pool_targets())
        } else {
            vec![kv_target(oid, key, self.pool_targets())]
        };
        let targets: Vec<u32> = targets.into_iter().map(|t| self.live_target(t)).collect();
        for &t in &targets {
            self.engine_for(t)?;
        }
        let Some(&primary) = targets.first() else {
            return Err(DaosError::NoTargets);
        };
        let engine = self.engine_for(primary)?;
        self.latency().await;
        self.engine_meta(engine).await;
        let lock = self.d.obj_lock(cont.uuid, oid, 0);
        let out;
        {
            let _g = lock.acquire_one(self.lane()).await;
            let _os = self.d.sim.span("objstore", "kv_update");
            self.d.sim.sleep(cal.kv_update_serial_cost).await;
            if let Some(existing) = cont.cont.kv_get(oid, key)? {
                let service =
                    cal.kv_op_cost + self.d.target(primary).media.read_time(cal.kv_entry_bytes);
                self.d.target(primary).tally.note_read(cal.kv_entry_bytes);
                self.target_service(primary, service).await;
                out = Some(existing);
            } else {
                let bytes = (key.len() + value.len()) as u64;
                let updates: Vec<_> = targets
                    .iter()
                    .map(|&t| {
                        let this = self.clone();
                        async move {
                            let charge = this
                                .d
                                .target(t)
                                .media
                                .charge_write(bytes)
                                .map_err(|_| DaosError::NoSpace)?;
                            let service = cal.kv_op_cost + charge.time;
                            this.d.target(t).tally.note_write(bytes);
                            this.target_service(t, service).await;
                            Ok::<(), DaosError>(())
                        }
                    })
                    .collect();
                for r in join_all(updates).await {
                    r?;
                }
                self.d.pool.charge(bytes)?;
                cont.cont.kv_put(oid, key, value)?;
                out = None;
            }
        }
        self.latency().await;
        Ok(out)
    }

    /// KV key removal: the update path of `kv_put_once` (every replica of
    /// the key's home target services the tombstone write). Removing an
    /// absent key is a successful no-op, per the `DaosApi` contract.
    async fn kv_remove_once(&self, cont: &SimCont, oid: Oid, key: &[u8]) -> Result<()> {
        let cal = self.d.spec.calibration;
        let targets: Vec<u32> = if oid.class().replicas(self.pool_targets()) > 1 {
            replica_targets(oid, self.pool_targets())
        } else {
            vec![kv_target(oid, key, self.pool_targets())]
        };
        let targets: Vec<u32> = targets.into_iter().map(|t| self.live_target(t)).collect();
        for &t in &targets {
            self.engine_for(t)?;
        }
        let Some(&primary) = targets.first() else {
            return Err(DaosError::NoTargets);
        };
        let engine = self.engine_for(primary)?;
        self.latency().await;
        self.engine_meta(engine).await;
        let lock = self.d.obj_lock(cont.uuid, oid, 0);
        {
            let _g = lock.acquire_one(self.lane()).await;
            let _os = self.d.sim.span("objstore", "kv_update");
            self.d.sim.sleep(cal.kv_update_serial_cost).await;
            let bytes = key.len() as u64;
            let updates: Vec<_> = targets
                .iter()
                .map(|&t| {
                    let this = self.clone();
                    async move {
                        let charge = this
                            .d
                            .target(t)
                            .media
                            .charge_write(bytes)
                            .map_err(|_| DaosError::NoSpace)?;
                        let service = cal.kv_op_cost + charge.time;
                        this.d.target(t).tally.note_write(bytes);
                        this.target_service(t, service).await;
                        Ok::<(), DaosError>(())
                    }
                })
                .collect();
            for r in join_all(updates).await {
                r?;
            }
            match cont.cont.kv_remove(oid, key) {
                Ok(_) | Err(DaosError::ObjNotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        self.latency().await;
        Ok(())
    }

    /// Vectorized KV update: the whole batch rides one request — one
    /// latency round trip, one container-handle validation and one
    /// leader serial section — then every pair's replica services run
    /// concurrently. This is where batching beats N sequential puts.
    async fn kv_put_multi_once(
        &self,
        cont: &SimCont,
        oid: Oid,
        pairs: Vec<(Bytes, Bytes)>,
    ) -> Result<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        let cal = self.d.spec.calibration;
        let replicated = oid.class().replicas(self.pool_targets()) > 1;
        // Per-pair destinations, exactly as each pair's own kv_put would
        // place it.
        let dests: Vec<(Vec<u32>, u64)> = pairs
            .iter()
            .map(|(key, value)| {
                let targets: Vec<u32> = if replicated {
                    replica_targets(oid, self.pool_targets())
                } else {
                    vec![kv_target(oid, key, self.pool_targets())]
                };
                let targets: Vec<u32> = targets.into_iter().map(|t| self.live_target(t)).collect();
                (targets, (key.len() + value.len()) as u64)
            })
            .collect();
        for (targets, _) in &dests {
            for &t in targets {
                self.engine_for(t)?;
            }
        }
        // `pairs` is non-empty here, but a pair's target list can still be
        // empty under a hostile pool map — fail like `first_alive`, don't
        // index.
        let primary = dests
            .first()
            .and_then(|(targets, _)| targets.first().copied())
            .ok_or(DaosError::NoTargets)?;
        let engine = self.engine_for(primary)?;
        self.latency().await;
        self.engine_meta(engine).await;
        let lock = self.d.obj_lock(cont.uuid, oid, 0);
        {
            let _g = lock.acquire_one(self.lane()).await;
            let _os = self.d.sim.span("objstore", "kv_update");
            self.d.sim.sleep(cal.kv_update_serial_cost).await;
            let updates: Vec<_> = dests
                .iter()
                .flat_map(|(targets, bytes)| targets.iter().map(move |&t| (t, *bytes)))
                .map(|(t, bytes)| {
                    let this = self.clone();
                    async move {
                        let charge = this
                            .d
                            .target(t)
                            .media
                            .charge_write(bytes)
                            .map_err(|_| DaosError::NoSpace)?;
                        let service = cal.kv_op_cost + charge.time;
                        this.d.target(t).tally.note_write(bytes);
                        this.target_service(t, service).await;
                        Ok::<(), DaosError>(())
                    }
                })
                .collect();
            for r in join_all(updates).await {
                r?;
            }
            let total: u64 = dests.iter().map(|(_, b)| *b).sum();
            self.d.pool.charge(total)?;
            cont.cont.kv_put_multi(oid, pairs)?;
        }
        self.latency().await;
        Ok(())
    }

    async fn kv_get_once(&self, cont: &SimCont, oid: Oid, key: &[u8]) -> Result<Option<Bytes>> {
        let cal = self.d.spec.calibration;
        let t = if oid.class().replicas(self.pool_targets()) > 1 {
            let reps: Vec<u32> = replica_targets(oid, self.pool_targets())
                .into_iter()
                .map(|t| self.live_target(t))
                .collect();
            self.first_alive(&reps)?
        } else {
            self.live_target(kv_target(oid, key, self.pool_targets()))
        };
        let engine = self.engine_for(t)?;
        self.latency().await;
        self.engine_meta(engine).await;
        let lock = self.d.obj_lock(cont.uuid, oid, 0);
        let out;
        {
            let _g = lock.acquire_one(self.lane()).await;
            let _os = self.d.sim.span("objstore", "kv_fetch");
            self.d.sim.sleep(cal.kv_fetch_serial_cost).await;
            let service = cal.kv_op_cost + self.d.target(t).media.read_time(cal.kv_entry_bytes);
            self.d.target(t).tally.note_read(cal.kv_entry_bytes);
            self.target_service(t, service).await;
            out = cont.cont.kv_get(oid, key)?;
        }
        self.latency().await;
        Ok(out)
    }

    async fn kv_list_keys_once(&self, cont: &SimCont, oid: Oid) -> Result<Vec<Bytes>> {
        let cal = self.d.spec.calibration;
        let t = self.meta_target(oid)?;
        self.small_rpc(t, cal.kv_op_cost).await?;
        cont.cont.kv_list_keys(oid)
    }

    /// Range listing: same RPC shape and cost as a full listing — the
    /// server walks less of the key space, not more.
    async fn kv_list_range_once(
        &self,
        cont: &SimCont,
        oid: Oid,
        from: &[u8],
        until: Option<&[u8]>,
    ) -> Result<Vec<Bytes>> {
        let cal = self.d.spec.calibration;
        let t = self.meta_target(oid)?;
        self.small_rpc(t, cal.kv_op_cost).await?;
        cont.cont.kv_list_range(oid, from, until)
    }

    async fn array_create_once(&self, cont: &SimCont, oid: Oid) -> Result<()> {
        let cal = self.d.spec.calibration;
        // Creation installs metadata on every replica, concurrently.
        let reps: Vec<u32> = replica_targets(oid, self.pool_targets())
            .into_iter()
            .map(|t| self.live_target(t))
            .collect();
        for &t in &reps {
            self.engine_for(t)?;
        }
        let creates: Vec<_> = reps
            .iter()
            .map(|&t| {
                let this = self.clone();
                async move {
                    let charge = this
                        .d
                        .target(t)
                        .media
                        .charge_write(128)
                        .map_err(|_| DaosError::NoSpace)?;
                    let service = cal.array_create_cost + charge.time;
                    this.small_rpc(t, service).await
                }
            })
            .collect();
        for r in join_all(creates).await {
            r?;
        }
        cont.cont.array_create(oid)
    }

    async fn array_open_once(&self, cont: &SimCont, oid: Oid) -> Result<()> {
        let cal = self.d.spec.calibration;
        let t = self.meta_target(oid)?;
        let service = cal.array_open_cost + self.d.target(t).media.read_time(128);
        self.small_rpc(t, service).await?;
        cont.cont.array_open(oid)
    }

    async fn array_open_or_create_once(&self, cont: &SimCont, oid: Oid) -> Result<()> {
        let cal = self.d.spec.calibration;
        let t = self.live_target(leader_target(oid, self.pool_targets()));
        self.engine_for(t)?;
        let charge = self
            .d
            .target(t)
            .media
            .charge_write(128)
            .map_err(|_| DaosError::NoSpace)?;
        let service = cal.array_create_cost + charge.time;
        self.small_rpc(t, service).await?;
        cont.cont.array_open_or_create(oid)
    }

    async fn array_write_once(
        &self,
        cont: &SimCont,
        oid: Oid,
        offset: u64,
        data: Bytes,
    ) -> Result<()> {
        let len = data.len() as u64;
        // Replicated classes write every replica synchronously; erasure-
        // coded objects write two data cells plus the XOR parity cell;
        // striped classes write one shard per stripe target.
        let is_ec =
            oid.class() == ObjectClass::EC2P1 && oid.class().parity_cells(self.pool_targets()) > 0;
        let mut ec_parity: Option<Bytes> = None;
        let shards: Vec<(u32, u64)> = if is_ec {
            if offset != 0 {
                return Err(DaosError::InvalidArg(
                    "EC objects support whole-object writes at offset 0",
                ));
            }
            let (h0, h1) = ec::split_halves(&data);
            let parity = Bytes::from(ec::xor_parity(&h0, &h1));
            // EC2P1 placement always yields two data cells; destructure
            // instead of indexing so a malformed layout errors rather
            // than panicking mid-campaign.
            let (dts, pt) = ec_targets(oid, self.pool_targets());
            let &[d0, d1] = &dts[..] else {
                return Err(DaosError::NoTargets);
            };
            let shards = vec![
                (d0, h0.len() as u64),
                (d1, h1.len() as u64),
                (pt, parity.len() as u64),
            ];
            ec_parity = Some(parity);
            shards
        } else if oid.class().replicas(self.pool_targets()) > 1 {
            replica_targets(oid, self.pool_targets())
                .into_iter()
                .map(|t| (t, len))
                .collect()
        } else {
            array_target_shards(oid, offset, len, self.pool_targets())
        };
        let shards: Vec<(u32, u64)> = shards
            .into_iter()
            .map(|(t, b)| (self.live_target(t), b))
            .collect();
        // The attempt fails fast if any owning engine is down — writes
        // require the full redundancy group; transient recovery (retry,
        // backoff, pool-map re-consultation) lives in the `retrying`
        // wrapper around this body.
        for (t, _) in &shards {
            self.engine_for(*t)?;
        }
        self.latency().await;
        let lock = self.d.obj_lock(cont.uuid, oid, offset / ARRAY_CHUNK);
        {
            let _g = lock.acquire_one(self.lane()).await;
            let _os = self.d.sim.span("objstore", "array_update");
            let writes: Vec<_> = shards
                .iter()
                .map(|&(t, bytes)| {
                    let this = self.clone();
                    async move { this.shard_write(t, bytes).await }
                })
                .collect();
            for r in join_all(writes).await {
                r?;
            }
            self.d.pool.charge(len)?;
            cont.cont.array_write(oid, offset, data)?;
            if let Some(parity) = ec_parity {
                self.d.pool.charge(parity.len() as u64)?;
                cont.cont.array_set_parity(oid, parity)?;
            }
        }
        self.latency().await;
        Ok(())
    }

    /// Scatter-gather write: all extents ride one request and one lock
    /// acquisition pass, their shard flows and media services running
    /// concurrently. EC objects only support their whole-object write
    /// shape, so multi-extent EC batches are rejected up front.
    async fn array_write_vec_once(
        &self,
        cont: &SimCont,
        oid: Oid,
        iovs: Vec<(u64, Bytes)>,
    ) -> Result<()> {
        if iovs.is_empty() {
            return Ok(());
        }
        let is_ec =
            oid.class() == ObjectClass::EC2P1 && oid.class().parity_cells(self.pool_targets()) > 0;
        if iovs.len() == 1 || is_ec {
            if iovs.len() > 1 {
                return Err(DaosError::InvalidArg(
                    "EC objects support a single whole-object extent per write",
                ));
            }
            let Some((offset, data)) = iovs.into_iter().next() else {
                return Ok(());
            };
            return self.array_write_once(cont, oid, offset, data).await;
        }
        let replicated = oid.class().replicas(self.pool_targets()) > 1;
        // Shards of every extent, as its own array_write would place them.
        let mut shards: Vec<(u32, u64)> = Vec::new();
        for (offset, data) in &iovs {
            let len = data.len() as u64;
            let per_iov: Vec<(u32, u64)> = if replicated {
                replica_targets(oid, self.pool_targets())
                    .into_iter()
                    .map(|t| (t, len))
                    .collect()
            } else {
                array_target_shards(oid, *offset, len, self.pool_targets())
            };
            shards.extend(per_iov.into_iter().map(|(t, b)| (self.live_target(t), b)));
        }
        for (t, _) in &shards {
            self.engine_for(*t)?;
        }
        self.latency().await;
        // Take the distinct chunk locks in ascending order (the global
        // order every batch uses, so concurrent batches cannot deadlock).
        let mut chunks: Vec<u64> = iovs.iter().map(|(off, _)| off / ARRAY_CHUNK).collect();
        chunks.sort_unstable();
        chunks.dedup();
        let locks: Vec<_> = chunks
            .iter()
            .map(|&c| self.d.obj_lock(cont.uuid, oid, c))
            .collect();
        {
            let mut guards = Vec::with_capacity(locks.len());
            for lock in &locks {
                guards.push(lock.acquire_one(self.lane()).await);
            }
            let _os = self.d.sim.span("objstore", "array_update");
            let writes: Vec<_> = shards
                .iter()
                .map(|&(t, bytes)| {
                    let this = self.clone();
                    async move { this.shard_write(t, bytes).await }
                })
                .collect();
            for r in join_all(writes).await {
                r?;
            }
            let total: u64 = iovs.iter().map(|(_, d)| d.len() as u64).sum();
            self.d.pool.charge(total)?;
            cont.cont.array_write_vec(oid, iovs)?;
        }
        self.latency().await;
        Ok(())
    }

    async fn array_read_once(
        &self,
        cont: &SimCont,
        oid: Oid,
        offset: u64,
        len: u64,
    ) -> Result<Bytes> {
        let is_ec =
            oid.class() == ObjectClass::EC2P1 && oid.class().parity_cells(self.pool_targets()) > 0;
        let mut ec_reconstruct: Option<u32> = None; // index of the dead data cell
        let shards: Vec<(u32, u64)> = if is_ec {
            let (dts, pt) = ec_targets(oid, self.pool_targets());
            let dts: Vec<u32> = dts.into_iter().map(|t| self.live_target(t)).collect();
            let &[d0, d1] = &dts[..] else {
                return Err(DaosError::NoTargets);
            };
            let pt = self.live_target(pt);
            let size = cont.cont.array_size(oid)?;
            let h0_len = size.div_ceil(2);
            let h1_len = size - h0_len;
            let alive0 = self.d.engine_of_target(d0).is_alive();
            let alive1 = self.d.engine_of_target(d1).is_alive();
            match (alive0, alive1) {
                (true, true) => vec![(d0, h0_len.min(len)), (d1, h1_len.min(len))],
                (false, true) => {
                    // Reconstruct cell 0 from cell 1 + parity.
                    self.engine_for(pt)?;
                    ec_reconstruct = Some(0);
                    vec![(d1, h1_len), (pt, h0_len)]
                }
                (true, false) => {
                    self.engine_for(pt)?;
                    ec_reconstruct = Some(1);
                    vec![(d0, h0_len), (pt, h0_len)]
                }
                (false, false) => {
                    return Err(DaosError::EngineUnavailable(
                        self.d.engine_index_of_target(d0),
                    ))
                }
            }
        } else if oid.class().replicas(self.pool_targets()) > 1 {
            // Degraded-capable read: any alive replica serves the extent.
            let reps: Vec<u32> = replica_targets(oid, self.pool_targets())
                .into_iter()
                .map(|t| self.live_target(t))
                .collect();
            vec![(self.first_alive(&reps)?, len)]
        } else {
            array_target_shards(oid, offset, len, self.pool_targets())
                .into_iter()
                .map(|(t, b)| (self.live_target(t), b))
                .collect()
        };
        for (t, _) in &shards {
            self.engine_for(*t)?;
        }
        self.latency().await;
        let lock = self.d.obj_lock(cont.uuid, oid, offset / ARRAY_CHUNK);
        let out;
        {
            let _g = lock.acquire_one(self.lane()).await;
            let _os = self.d.sim.span("objstore", "array_fetch");
            let reads: Vec<_> = shards
                .iter()
                .map(|&(t, bytes)| {
                    let this = self.clone();
                    async move { this.shard_read(t, bytes).await }
                })
                .collect();
            for r in join_all(reads).await {
                r?;
            }
            out = if let Some(lost) = ec_reconstruct {
                // Genuinely reconstruct from the surviving cell plus the
                // stored parity, charging XOR time; the logical extent is
                // NOT consulted for the lost cell.
                let size = cont.cont.array_size(oid)?;
                let h0_len = size.div_ceil(2) as usize;
                let parity = cont
                    .cont
                    .array_parity(oid)?
                    .ok_or(DaosError::InvalidArg("EC object without parity"))?;
                let cal = &self.d.spec.calibration;
                self.d
                    .sim
                    .sleep(SimDuration::from_secs_f64(
                        size as f64 / (cal.ec_reconstruct_gib * daosim_net::GIB),
                    ))
                    .await;
                let full = if lost == 0 {
                    let h1 = cont
                        .cont
                        .array_read(oid, h0_len as u64, size - h0_len as u64)?;
                    let h0 = ec::reconstruct_cell(&h1, &parity, h0_len);
                    ec::join_halves(&h0, &h1)
                } else {
                    let h0 = cont.cont.array_read(oid, 0, h0_len as u64)?;
                    let h1 = ec::reconstruct_cell(&h0, &parity, size as usize - h0_len);
                    ec::join_halves(&h0, &h1)
                };
                let end = ((offset + len) as usize).min(full.len());
                let start = (offset as usize).min(end);
                full.slice(start..end)
            } else {
                cont.cont.array_read(oid, offset, len)?
            };
        }
        self.latency().await;
        Ok(out)
    }

    async fn array_size_once(&self, cont: &SimCont, oid: Oid) -> Result<u64> {
        let cal = self.d.spec.calibration;
        let t = self.meta_target(oid)?;
        let service = cal.array_open_cost + self.d.target(t).media.read_time(128);
        self.small_rpc(t, service).await?;
        cont.cont.array_size(oid)
    }

    async fn array_close_once(&self, _cont: &SimCont, _oid: Oid) -> Result<()> {
        // Handle close is client-local in DAOS; no RPC.
        self.d
            .sim
            .sleep(self.d.spec.calibration.array_close_cost)
            .await;
        Ok(())
    }

    async fn obj_punch_once(&self, cont: &SimCont, oid: Oid) -> Result<()> {
        let cal = self.d.spec.calibration;
        let t = self.meta_target(oid)?;
        self.small_rpc(t, cal.array_create_cost).await?;
        cont.cont.obj_punch(oid)
    }

    async fn list_array_objects_once(&self, cont: &SimCont) -> Result<Vec<Oid>> {
        // Enumeration walks the container's object table on its engines;
        // charge a metadata RPC plus a per-object scan cost at the pool
        // metadata service.
        let cal = self.d.spec.calibration;
        self.latency().await;
        let arrays = cont.cont.list_arrays();
        {
            let _p = self.d.pool_md.acquire_one(self.lane()).await;
            let per_obj = SimDuration::from_nanos(500);
            self.d
                .sim
                .sleep(
                    cal.cont_open_cost
                        + SimDuration::from_nanos(
                            per_obj.as_nanos().saturating_mul(arrays.len() as u64),
                        ),
                )
                .await;
        }
        self.latency().await;
        Ok(arrays)
    }

    fn pool_targets(&self) -> u32 {
        self.d.spec.pool_targets()
    }
}

/// The public API: every engine-touching operation runs through
/// [`SimClient::retrying`]. Container open/create (pool-metadata only),
/// handle close (client-local) and enumeration are left unwrapped — they
/// never consult an engine's liveness.
impl DaosApi for SimClient {
    type Cont = SimCont;

    async fn cont_open_or_create(&self, uuid: Uuid) -> Result<Self::Cont> {
        self.cont_open_or_create_once(uuid).await
    }

    async fn cont_open(&self, uuid: Uuid) -> Result<Self::Cont> {
        self.cont_open_once(uuid).await
    }

    async fn kv_put(&self, cont: &Self::Cont, oid: Oid, key: &[u8], value: Bytes) -> Result<()> {
        let (this, cont) = (self.clone(), cont.clone());
        self.retrying(ClientOp::KvPut, move || {
            let (this, cont, value) = (this.clone(), cont.clone(), value.clone());
            async move { this.kv_put_once(&cont, oid, key, value).await }
        })
        .await
    }

    async fn kv_get(&self, cont: &Self::Cont, oid: Oid, key: &[u8]) -> Result<Option<Bytes>> {
        let (this, cont) = (self.clone(), cont.clone());
        self.retrying(ClientOp::KvGet, move || {
            let (this, cont) = (this.clone(), cont.clone());
            async move { this.kv_get_once(&cont, oid, key).await }
        })
        .await
    }

    async fn kv_put_if_absent(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        key: &[u8],
        value: Bytes,
    ) -> Result<Option<Bytes>> {
        let (this, cont) = (self.clone(), cont.clone());
        self.retrying(ClientOp::KvPutIfAbsent, move || {
            let (this, cont, value) = (this.clone(), cont.clone(), value.clone());
            async move { this.kv_put_if_absent_once(&cont, oid, key, value).await }
        })
        .await
    }

    async fn kv_remove(&self, cont: &Self::Cont, oid: Oid, key: &[u8]) -> Result<()> {
        let (this, cont) = (self.clone(), cont.clone());
        self.retrying(ClientOp::KvRemove, move || {
            let (this, cont) = (this.clone(), cont.clone());
            async move { this.kv_remove_once(&cont, oid, key).await }
        })
        .await
    }

    async fn kv_list_keys(&self, cont: &Self::Cont, oid: Oid) -> Result<Vec<Bytes>> {
        let (this, cont) = (self.clone(), cont.clone());
        self.retrying(ClientOp::KvListKeys, move || {
            let (this, cont) = (this.clone(), cont.clone());
            async move { this.kv_list_keys_once(&cont, oid).await }
        })
        .await
    }

    async fn kv_list_range(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        from: Bytes,
        until: Option<Bytes>,
    ) -> Result<Vec<Bytes>> {
        let (this, cont) = (self.clone(), cont.clone());
        self.retrying(ClientOp::KvListRange, move || {
            let (this, cont, from, until) =
                (this.clone(), cont.clone(), from.clone(), until.clone());
            async move {
                this.kv_list_range_once(&cont, oid, &from, until.as_deref())
                    .await
            }
        })
        .await
    }

    async fn kv_put_multi(
        &self,
        cont: &Self::Cont,
        oid: Oid,
        pairs: Vec<(Bytes, Bytes)>,
    ) -> Result<()> {
        let (this, cont) = (self.clone(), cont.clone());
        self.retrying(ClientOp::KvPutMulti, move || {
            let (this, cont, pairs) = (this.clone(), cont.clone(), pairs.clone());
            async move { this.kv_put_multi_once(&cont, oid, pairs).await }
        })
        .await
    }

    async fn array_create(&self, cont: &Self::Cont, oid: Oid) -> Result<ArrayHandle> {
        let (this, cont) = (self.clone(), cont.clone());
        self.retrying(ClientOp::ArrayCreate, move || {
            let (this, cont) = (this.clone(), cont.clone());
            async move { this.array_create_once(&cont, oid).await }
        })
        .await
        .map(|()| ArrayHandle::from_open(oid))
    }

    async fn array_open(&self, cont: &Self::Cont, oid: Oid) -> Result<ArrayHandle> {
        let (this, cont) = (self.clone(), cont.clone());
        self.retrying(ClientOp::ArrayOpen, move || {
            let (this, cont) = (this.clone(), cont.clone());
            async move { this.array_open_once(&cont, oid).await }
        })
        .await
        .map(|()| ArrayHandle::from_open(oid))
    }

    async fn array_open_or_create(&self, cont: &Self::Cont, oid: Oid) -> Result<ArrayHandle> {
        let (this, cont) = (self.clone(), cont.clone());
        self.retrying(ClientOp::ArrayOpenOrCreate, move || {
            let (this, cont) = (this.clone(), cont.clone());
            async move { this.array_open_or_create_once(&cont, oid).await }
        })
        .await
        .map(|()| ArrayHandle::from_open(oid))
    }

    async fn array_write(
        &self,
        cont: &Self::Cont,
        handle: &ArrayHandle,
        offset: u64,
        data: Bytes,
    ) -> Result<()> {
        let (this, cont, oid) = (self.clone(), cont.clone(), handle.oid());
        self.retrying(ClientOp::ArrayWrite, move || {
            let (this, cont, data) = (this.clone(), cont.clone(), data.clone());
            async move { this.array_write_once(&cont, oid, offset, data).await }
        })
        .await
    }

    async fn array_write_vec(
        &self,
        cont: &Self::Cont,
        handle: &ArrayHandle,
        iovs: Vec<(u64, Bytes)>,
    ) -> Result<()> {
        let (this, cont, oid) = (self.clone(), cont.clone(), handle.oid());
        self.retrying(ClientOp::ArrayWriteVec, move || {
            let (this, cont, iovs) = (this.clone(), cont.clone(), iovs.clone());
            async move { this.array_write_vec_once(&cont, oid, iovs).await }
        })
        .await
    }

    async fn array_read(
        &self,
        cont: &Self::Cont,
        handle: &ArrayHandle,
        offset: u64,
        len: u64,
    ) -> Result<Bytes> {
        let (this, cont, oid) = (self.clone(), cont.clone(), handle.oid());
        self.retrying(ClientOp::ArrayRead, move || {
            let (this, cont) = (this.clone(), cont.clone());
            async move { this.array_read_once(&cont, oid, offset, len).await }
        })
        .await
    }

    async fn array_size(&self, cont: &Self::Cont, handle: &ArrayHandle) -> Result<u64> {
        let (this, cont, oid) = (self.clone(), cont.clone(), handle.oid());
        self.retrying(ClientOp::ArraySize, move || {
            let (this, cont) = (this.clone(), cont.clone());
            async move { this.array_size_once(&cont, oid).await }
        })
        .await
    }

    async fn array_close(&self, cont: &Self::Cont, handle: ArrayHandle) -> Result<()> {
        self.array_close_once(cont, handle.oid()).await
    }

    async fn obj_punch(&self, cont: &Self::Cont, oid: Oid) -> Result<()> {
        let (this, cont) = (self.clone(), cont.clone());
        self.retrying(ClientOp::ObjPunch, move || {
            let (this, cont) = (this.clone(), cont.clone());
            async move { this.obj_punch_once(&cont, oid).await }
        })
        .await
    }

    async fn list_array_objects(&self, cont: &Self::Cont) -> Result<Vec<Oid>> {
        self.list_array_objects_once(cont).await
    }

    fn pool_targets(&self) -> u32 {
        SimClient::pool_targets(self)
    }

    fn spawn_op(&self, op: daosim_objstore::OpFuture) {
        // Each event-queue operation is its own kernel task: it suspends
        // and resumes independently, so in-flight operations' network
        // flows and media services overlap in simulated time, and each
        // carries its own retry budget, spans and metrics.
        self.d.sim.spawn(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::ClusterSpec;
    use daosim_kernel::Sim;
    use daosim_net::GIB;
    use daosim_objstore::prelude::{ObjectClass, OidAllocator};
    use std::cell::Cell;

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn roundtrip_with_time() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        let client = SimClient::for_process(&d, 0, 0);
        let end = sim.block_on(async move {
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"c"))
                .await
                .unwrap();
            let oid = OidAllocator::new(0).next(ObjectClass::S1);
            let h = client.array_create(&cont, oid).await.unwrap();
            let payload = Bytes::from(vec![42u8; MIB as usize]);
            client
                .array_write(&cont, &h, 0, payload.clone())
                .await
                .unwrap();
            let back = client.array_read(&cont, &h, 0, MIB).await.unwrap();
            assert_eq!(back, payload);
            client.array_close(&cont, h).await.unwrap();
        });
        // A 1 MiB write + read over a ~3 GiB/s path takes real time.
        assert!(end.as_secs_f64() > 0.0005, "suspiciously fast: {end}");
        assert!(end.as_secs_f64() < 0.05, "suspiciously slow: {end}");
    }

    #[test]
    fn concurrent_writers_to_one_object_serialize() {
        let run = |n: usize| {
            let sim = Sim::new();
            let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
            for i in 0..n {
                let d = Rc::clone(&d);
                sim.spawn(async move {
                    let client = SimClient::for_process(&d, 0, i as u32);
                    let cont = client
                        .cont_open_or_create(Uuid::from_name(b"c"))
                        .await
                        .unwrap();
                    let oid = Oid::generate(9, 9, ObjectClass::S1);
                    let h = client.array_open_or_create(&cont, oid).await.unwrap();
                    client
                        .array_write(&cont, &h, 0, Bytes::from(vec![0u8; MIB as usize]))
                        .await
                        .unwrap();
                    client.array_close(&cont, h).await.unwrap();
                });
            }
            sim.run().expect_quiescent().as_secs_f64()
        };
        let one = run(1);
        let four = run(4);
        // Same object: writes serialize, so 4 writers take ~4x one writer.
        assert!(four > 3.0 * one, "one={one}, four={four}");
    }

    #[test]
    fn concurrent_writers_to_distinct_objects_overlap() {
        let run = |n: usize| {
            let sim = Sim::new();
            let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
            for i in 0..n {
                let d = Rc::clone(&d);
                sim.spawn(async move {
                    let client = SimClient::for_process(&d, 0, i as u32);
                    let cont = client
                        .cont_open_or_create(Uuid::from_name(b"c"))
                        .await
                        .unwrap();
                    let oid = Oid::generate(10, i as u64, ObjectClass::S1);
                    let h = client.array_create(&cont, oid).await.unwrap();
                    client
                        .array_write(&cont, &h, 0, Bytes::from(vec![0u8; MIB as usize]))
                        .await
                        .unwrap();
                    client.array_close(&cont, h).await.unwrap();
                });
            }
            sim.run().expect_quiescent().as_secs_f64()
        };
        let one = run(1);
        let four = run(4);
        assert!(four < 2.5 * one, "one={one}, four={four}");
    }

    #[test]
    fn first_alive_on_empty_slice_reports_no_targets() {
        // Regression: an empty candidate set used to blame target 0's
        // engine (EngineUnavailable(0)); it must be its own error.
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        let client = SimClient::for_process(&d, 0, 0);
        assert_eq!(client.first_alive(&[]), Err(DaosError::NoTargets));
        // Non-empty behaviour unchanged: picks the first alive target...
        assert_eq!(client.first_alive(&[3, 17]), Ok(3));
        d.kill_engine(0);
        assert_eq!(client.first_alive(&[3, 17]), Ok(17));
        // ...and blames the last candidate's engine when all are down.
        d.kill_engine(1);
        assert_eq!(
            client.first_alive(&[3, 17]),
            Err(DaosError::EngineUnavailable(1))
        );
    }

    #[test]
    fn brownout_shorter_than_retry_budget_is_invisible_to_clients() {
        // A transient brownout that clears within the retry backoff
        // budget must cause no client-visible errors, only retries.
        let sim = Sim::new();
        let mut spec = ClusterSpec::tcp(1, 1);
        spec.retry = crate::fault::RetryPolicy::builder().operational().build();
        let d = Deployment::new(&sim, spec);
        {
            let d = Rc::clone(&d);
            sim.spawn(async move {
                let client = SimClient::for_process(&d, 0, 0);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"bo"))
                    .await
                    .unwrap();
                let mut alloc = OidAllocator::new(0);
                let payload = Bytes::from(vec![5u8; MIB as usize]);
                // Brown out both engines mid-workload for 100 ms — well
                // inside the ~0.8 s cumulative backoff budget.
                let oid0 = alloc.next(ObjectClass::S1);
                let h0 = client.array_create(&cont, oid0).await.unwrap();
                d.brownout_engine(0);
                d.brownout_engine(1);
                {
                    let d2 = Rc::clone(&d);
                    d.sim
                        .schedule_after(SimDuration::from_millis(100), move || {
                            d2.clear_brownout(0);
                            d2.clear_brownout(1);
                        });
                }
                client
                    .array_write(&cont, &h0, 0, payload.clone())
                    .await
                    .unwrap();
                let back = client.array_read(&cont, &h0, 0, MIB).await.unwrap();
                assert_eq!(back, payload);
                client.array_close(&cont, h0).await.unwrap();
            });
        }
        sim.run().expect_quiescent();
        let r = d.resilience().report();
        assert!(
            r.retries > 0,
            "brownout must be absorbed via retries: {r:?}"
        );
        assert_eq!(r.gave_up, 0, "no operation may fail: {r:?}");
    }

    #[test]
    fn retry_exhaustion_surfaces_the_transient_error() {
        // A fault longer than the whole retry budget still fails — the
        // policy bounds recovery, it does not mask permanent loss.
        let sim = Sim::new();
        let mut spec = ClusterSpec::tcp(1, 1);
        spec.retry = crate::fault::RetryPolicy::builder()
            .max_attempts(3)
            .base_backoff(SimDuration::from_micros(100))
            .max_backoff(SimDuration::from_millis(1))
            .seed(1)
            .build();
        let d = Deployment::new(&sim, spec);
        let failed: Rc<Cell<bool>> = Rc::default();
        {
            let (d, failed) = (Rc::clone(&d), Rc::clone(&failed));
            sim.spawn(async move {
                let client = SimClient::for_process(&d, 0, 0);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"rx"))
                    .await
                    .unwrap();
                let oid = Oid::generate(0, 0, ObjectClass::S1);
                d.kill_engine(0);
                d.kill_engine(1);
                match client.array_create(&cont, oid).await {
                    Err(DaosError::EngineUnavailable(_)) => failed.set(true),
                    other => panic!("expected exhaustion, got {other:?}"),
                }
            });
        }
        sim.run().expect_quiescent();
        assert!(failed.get());
        let r = d.resilience().report();
        assert_eq!(r.retries, 2, "3 attempts = 2 retries: {r:?}");
        assert_eq!(r.gave_up, 1, "{r:?}");
    }

    #[test]
    fn dead_engine_fails_operations() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        let failed: Rc<Cell<u32>> = Rc::default();
        let (d2, f2) = (Rc::clone(&d), Rc::clone(&failed));
        sim.spawn(async move {
            let client = SimClient::for_process(&d2, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"c"))
                .await
                .unwrap();
            d2.kill_engine(0);
            d2.kill_engine(1);
            let oid = Oid::generate(0, 0, ObjectClass::S1);
            match client.array_create(&cont, oid).await {
                Err(DaosError::EngineUnavailable(_)) => f2.set(1),
                other => panic!("expected EngineUnavailable, got {other:?}"),
            }
            d2.revive_engine(0);
            d2.revive_engine(1);
            let h = client.array_create(&cont, oid).await.unwrap();
            client.array_close(&cont, h).await.unwrap();
        });
        sim.run().expect_quiescent();
        assert_eq!(failed.get(), 1);
    }

    /// Calibration smoke test: many parallel writers against one
    /// dual-engine server node should aggregate in the neighbourhood of
    /// the paper's Table 1 write figures (≈5.5 GiB/s for 2 engines).
    #[test]
    fn aggregate_write_bandwidth_in_calibrated_range() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 2));
        let ops_per_proc = 24;
        let procs = 48; // 24 per client node
        let payload = Bytes::from(vec![7u8; MIB as usize]);
        for p in 0..procs {
            let d = Rc::clone(&d);
            let payload = payload.clone();
            sim.spawn(async move {
                let client = SimClient::for_process(&d, (p % 2) as u16, p / 2);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"c"))
                    .await
                    .unwrap();
                let mut alloc = OidAllocator::new(p);
                for _ in 0..ops_per_proc {
                    let oid = alloc.next(ObjectClass::S1);
                    let h = client.array_create(&cont, oid).await.unwrap();
                    client
                        .array_write(&cont, &h, 0, payload.clone())
                        .await
                        .unwrap();
                    client.array_close(&cont, h).await.unwrap();
                }
            });
        }
        let end = sim.run().expect_quiescent();
        let total_bytes = (procs as u64 * ops_per_proc * MIB) as f64;
        let bw = total_bytes / GIB / end.as_secs_f64();
        assert!(
            (3.5..=6.5).contains(&bw),
            "aggregate write bandwidth {bw:.2} GiB/s outside calibrated range"
        );
    }

    #[test]
    fn kv_put_on_dead_pool_errors_instead_of_panicking() {
        // Regression: kv_put_once indexed `targets[0]` after the liveness
        // loop; with every engine dead the op must surface
        // EngineUnavailable through the normal error path — replicated
        // and unreplicated classes alike.
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        let done: Rc<Cell<u32>> = Rc::default();
        let (d2, done2) = (Rc::clone(&d), Rc::clone(&done));
        sim.spawn(async move {
            let client = SimClient::for_process(&d2, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"kp"))
                .await
                .unwrap();
            d2.kill_engine(0);
            d2.kill_engine(1);
            for class in [ObjectClass::S1, ObjectClass::RP2] {
                let oid = Oid::generate(20, class as u64, class);
                match client
                    .kv_put(&cont, oid, b"k", Bytes::from_static(b"v"))
                    .await
                {
                    Err(DaosError::EngineUnavailable(_)) => done2.set(done2.get() + 1),
                    other => panic!("expected EngineUnavailable, got {other:?}"),
                }
            }
        });
        sim.run().expect_quiescent();
        assert_eq!(done.get(), 2);
    }

    #[test]
    fn kv_put_multi_on_dead_pool_errors_instead_of_panicking() {
        // Regression: kv_put_multi_once indexed `dests[0].0[0]`. An empty
        // batch is a no-op even on a dead pool; a non-empty one errors.
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        let done: Rc<Cell<u32>> = Rc::default();
        let (d2, done2) = (Rc::clone(&d), Rc::clone(&done));
        sim.spawn(async move {
            let client = SimClient::for_process(&d2, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"km"))
                .await
                .unwrap();
            d2.kill_engine(0);
            d2.kill_engine(1);
            let oid = Oid::generate(21, 0, ObjectClass::S1);
            client.kv_put_multi(&cont, oid, Vec::new()).await.unwrap();
            let pairs = vec![(Bytes::from_static(b"a"), Bytes::from_static(b"1"))];
            match client.kv_put_multi(&cont, oid, pairs).await {
                Err(DaosError::EngineUnavailable(_)) => done2.set(1),
                other => panic!("expected EngineUnavailable, got {other:?}"),
            }
        });
        sim.run().expect_quiescent();
        assert_eq!(done.get(), 1);
    }

    #[test]
    fn array_write_vec_empty_batch_and_dead_pool() {
        // Regression: the single-extent fast path held an
        // `.expect("non-empty")`; the empty batch stays a no-op and a
        // dead pool errors through the single-extent path.
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        let done: Rc<Cell<u32>> = Rc::default();
        let (d2, done2) = (Rc::clone(&d), Rc::clone(&done));
        sim.spawn(async move {
            let client = SimClient::for_process(&d2, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"wv"))
                .await
                .unwrap();
            let oid = Oid::generate(22, 0, ObjectClass::S1);
            let h = client.array_create(&cont, oid).await.unwrap();
            client.array_write_vec(&cont, &h, Vec::new()).await.unwrap();
            d2.kill_engine(0);
            d2.kill_engine(1);
            let iovs = vec![(0u64, Bytes::from_static(b"x"))];
            match client.array_write_vec(&cont, &h, iovs).await {
                Err(DaosError::EngineUnavailable(_)) => done2.set(1),
                other => panic!("expected EngineUnavailable, got {other:?}"),
            }
        });
        sim.run().expect_quiescent();
        assert_eq!(done.get(), 1);
    }

    #[test]
    fn ec_write_and_read_on_dead_pool_error_instead_of_panicking() {
        // Regression: the EC2P1 paths indexed `dts[0]`/`dts[1]` while
        // engines were dying around them; both directions must error.
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        let done: Rc<Cell<u32>> = Rc::default();
        let (d2, done2) = (Rc::clone(&d), Rc::clone(&done));
        sim.spawn(async move {
            let client = SimClient::for_process(&d2, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"ec"))
                .await
                .unwrap();
            let oid = Oid::generate(23, 0, ObjectClass::EC2P1);
            let h = client.array_create(&cont, oid).await.unwrap();
            let payload = Bytes::from(vec![9u8; 4096]);
            client
                .array_write(&cont, &h, 0, payload.clone())
                .await
                .unwrap();
            d2.kill_engine(0);
            d2.kill_engine(1);
            match client.array_write(&cont, &h, 0, payload).await {
                Err(DaosError::EngineUnavailable(_)) => done2.set(done2.get() + 1),
                other => panic!("EC write: expected EngineUnavailable, got {other:?}"),
            }
            match client.array_read(&cont, &h, 0, 4096).await {
                Err(DaosError::EngineUnavailable(_)) => done2.set(done2.get() + 1),
                other => panic!("EC read: expected EngineUnavailable, got {other:?}"),
            }
        });
        sim.run().expect_quiescent();
        assert_eq!(done.get(), 2);
    }

    #[test]
    fn random_fault_campaigns_never_panic_the_client_path() {
        // Drive seeded random campaigns (kills, rebuilds, restarts,
        // brownouts, NIC faults) against a mixed KV/array workload under
        // the operational retry policy. Every op may succeed or fail —
        // but nothing on the client path is allowed to panic.
        for seed in 0..4u64 {
            let sim = Sim::new();
            let mut spec = ClusterSpec::tcp(1, 1);
            spec.retry = crate::fault::RetryPolicy::builder().operational().build();
            let d = Deployment::new(&sim, spec);
            let horizon = SimDuration::from_secs(2);
            crate::fault::FaultPlan::random_campaign(seed, d.spec.engines(), horizon).apply(&d);
            for p in 0..4u32 {
                let d = Rc::clone(&d);
                sim.spawn(async move {
                    let client = SimClient::for_process(&d, 0, p);
                    let Ok(cont) = client.cont_open_or_create(Uuid::from_name(b"cc")).await else {
                        return;
                    };
                    let mut alloc = OidAllocator::new(p.into());
                    for i in 0..6u64 {
                        let class = match i % 3 {
                            0 => ObjectClass::S1,
                            1 => ObjectClass::RP2,
                            _ => ObjectClass::EC2P1,
                        };
                        let oid = alloc.next(class);
                        let kv = Oid::generate(30 + p, i, ObjectClass::RP2);
                        let _ = client
                            .kv_put(&cont, kv, b"key", Bytes::from_static(b"val"))
                            .await;
                        let _ = client.kv_get(&cont, kv, b"key").await;
                        if let Ok(h) = client.array_open_or_create(&cont, oid).await {
                            let _ = client
                                .array_write(&cont, &h, 0, Bytes::from(vec![1u8; 8192]))
                                .await;
                            let _ = client.array_read(&cont, &h, 0, 8192).await;
                            let _ = client.array_close(&cont, h).await;
                        }
                    }
                });
            }
            sim.run().expect_quiescent();
        }
    }

    #[test]
    fn backlog_gauge_counts_waiters_and_drains_to_zero() {
        // Many writers to one object pile up on its target's FIFO: the
        // gauge's peak must see them and the depth must drain by the end.
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        for i in 0..8u32 {
            let d = Rc::clone(&d);
            sim.spawn(async move {
                let client = SimClient::for_process(&d, 0, i);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"bg"))
                    .await
                    .unwrap();
                let oid = Oid::generate(40, 0, ObjectClass::S1);
                let h = client.array_open_or_create(&cont, oid).await.unwrap();
                client
                    .array_write(&cont, &h, 0, Bytes::from(vec![0u8; MIB as usize]))
                    .await
                    .unwrap();
                client.array_close(&cont, h).await.unwrap();
            });
        }
        sim.run().expect_quiescent();
        assert!(d.backlog().peak() > 0, "contention must register a peak");
        assert_eq!(d.backlog().depth(), 0, "gauge must drain at quiescence");
    }

    #[test]
    fn qos_classes_split_the_op_latency_histograms() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        {
            let d = Rc::clone(&d);
            sim.spawn(async move {
                let writer = SimClient::for_process(&d, 0, 0).with_qos(QosClass::Writer);
                let reader = SimClient::for_process(&d, 0, 1).with_qos(QosClass::Reader);
                assert_eq!(writer.qos(), QosClass::Writer);
                let cont = writer
                    .cont_open_or_create(Uuid::from_name(b"qs"))
                    .await
                    .unwrap();
                let oid = Oid::generate(41, 0, ObjectClass::S1);
                writer
                    .kv_put(&cont, oid, b"k", Bytes::from_static(b"v"))
                    .await
                    .unwrap();
                let rcont = reader.cont_open(Uuid::from_name(b"qs")).await.unwrap();
                assert!(reader.kv_get(&rcont, oid, b"k").await.unwrap().is_some());
            });
        }
        sim.run().expect_quiescent();
        let snap = sim.obs().metrics().snapshot();
        let count = |name: &str| {
            snap.histogram(name)
                .unwrap_or_else(|| panic!("histogram {name} missing"))
                .count
        };
        assert_eq!(count("client.writer.op_ns"), 1, "one classified put");
        assert_eq!(count("client.reader.op_ns"), 1, "one classified get");
        assert_eq!(count("client.op_ns"), 2, "shared histogram sees both");
    }
}
