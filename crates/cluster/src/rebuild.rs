//! Rebuild: restoring redundancy after an engine loss.
//!
//! When a DAOS engine dies, the pool map is updated to exclude its
//! targets and the *rebuild* protocol re-creates the lost replicas on
//! surviving targets from the remaining copies. This module models that:
//!
//! 1. every target of the dead engine is **remapped** to a surviving
//!    target (round-robin over alive engines); clients consult the remap
//!    after placement, so post-rebuild I/O routes to the replacements;
//! 2. every `RP2` object with a replica on the dead engine is **moved**:
//!    the survivor's copy streams over the fabric to the replacement
//!    engine and lands on its media — charged as real flows and service
//!    time, with bounded per-engine concurrency like DAOS's rebuild ULTs.
//!
//! Unprotected objects (S1/S2/SX) cannot be rebuilt — their data only
//! existed on the dead targets — and EC objects, while *readable* in
//! degraded mode, are restored by the same mechanism (survivor + parity
//! stream to the replacement, paying reconstruction).
//!
//! After rebuild completes, writes to replicated objects succeed again
//! (the redundancy group is whole) — the property the tests pin down.

use std::rc::Rc;

use daosim_kernel::sync::{join_all, Semaphore};
use daosim_kernel::SimDuration;
use daosim_objstore::placement::{ec_targets, replica_targets, stripe_targets};
use daosim_objstore::prelude::{ObjectClass, Oid, Uuid};

use crate::deploy::Deployment;

/// Outcome of one rebuild pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RebuildReport {
    /// Objects whose redundancy was restored.
    pub objects_moved: usize,
    /// Payload bytes streamed to replacement targets.
    pub bytes_moved: u64,
    /// Simulated seconds the rebuild took.
    pub duration_secs: f64,
    /// Objects that could not be rebuilt (no surviving copy).
    pub objects_lost: usize,
}

/// How many concurrent rebuild streams each surviving engine runs.
const REBUILD_STREAMS_PER_ENGINE: usize = 4;

/// Why a rebuild pass could not run. Misuse is reported, not panicked,
/// so failure drills can probe invalid sequences without aborting the
/// whole simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildError {
    /// The engine named for rebuild still answers RPCs; kill it first.
    EngineAlive(u32),
    /// Every engine is down — there is nothing to rebuild onto.
    NoSurvivors,
}

impl std::fmt::Display for RebuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebuildError::EngineAlive(e) => {
                write!(f, "rebuild target engine {e} is still alive")
            }
            RebuildError::NoSurvivors => write!(f, "no surviving targets to rebuild onto"),
        }
    }
}

impl std::error::Error for RebuildError {}

/// Rebuilds after the death of `dead_engine`. Must be awaited from a
/// simulation task; takes simulated time proportional to the data moved.
///
/// Errors (without side effects) if the engine is still alive (kill it
/// first) or if no engine survives to rebuild onto.
pub async fn rebuild_engine(
    d: &Rc<Deployment>,
    dead_engine: u32,
) -> Result<RebuildReport, RebuildError> {
    if d.engines[dead_engine as usize].is_alive() {
        return Err(RebuildError::EngineAlive(dead_engine));
    }
    let tpe = d.spec.targets_per_engine;
    let pool_targets = d.spec.pool_targets();
    let survivors: Vec<u32> = (0..pool_targets)
        .filter(|&t| d.engine_of_target(t).is_alive())
        .collect();
    if survivors.is_empty() {
        return Err(RebuildError::NoSurvivors);
    }

    let _rebuild_span = d.sim.span("rebuild", "rebuild");

    // 1. Pool-map update: remap each dead target onto a survivor.
    let remap_span = d.sim.span("rebuild", "remap");
    let dead_targets: Vec<u32> = (dead_engine * tpe..(dead_engine + 1) * tpe).collect();
    for (i, &t) in dead_targets.iter().enumerate() {
        d.set_target_remap(t, survivors[i % survivors.len()]);
    }
    remap_span.end();

    // 2. Enumerate affected objects and stream their data back to full
    //    redundancy. Work is fanned out with bounded concurrency.
    let start = d.sim.now();
    let mut report = RebuildReport::default();
    let gate =
        Semaphore::new(REBUILD_STREAMS_PER_ENGINE * (survivors.len() / tpe.max(1) as usize).max(1));
    let mut moves = Vec::new();
    for cu in d.pool.cont_list() {
        let cont = d.pool.cont_open(cu).expect("listed container opens");
        for oid in cont.list_objects() {
            let class = oid.class();
            // The targets this object's cells occupy, per class layout.
            let placed: Vec<u32> = match class {
                ObjectClass::RP2 => replica_targets(oid, pool_targets),
                ObjectClass::EC2P1 => {
                    let (mut dts, pt) = ec_targets(oid, pool_targets);
                    dts.push(pt);
                    dts
                }
                _ => stripe_targets(oid, pool_targets),
            };
            let hit: Vec<u32> = placed
                .iter()
                .copied()
                .filter(|t| dead_targets.contains(t))
                .collect();
            if hit.is_empty() {
                continue;
            }
            match class {
                ObjectClass::RP2 | ObjectClass::EC2P1 => {
                    // Redundant classes tolerate exactly one lost cell.
                    if hit.len() >= placed.len() {
                        report.objects_lost += 1;
                        continue;
                    }
                    let bytes = object_bytes(d, cu, oid);
                    report.objects_moved += 1;
                    report.bytes_moved += bytes;
                    for dead_t in hit {
                        // Stream from any surviving cell (EC pays the
                        // reconstruction read amplification in `bytes`,
                        // which includes parity).
                        let src = placed
                            .iter()
                            .copied()
                            .find(|t| !dead_targets.contains(t))
                            .unwrap_or(survivors[0]);
                        let dst = d.resolve_target(dead_t);
                        let (d2, gate) = (Rc::clone(d), gate.clone());
                        moves.push(async move {
                            let _slot = gate.acquire_one().await;
                            d2.stream_between_targets(src, dst, bytes).await;
                        });
                    }
                }
                // Unprotected data on the dead engine is gone.
                _ => report.objects_lost += 1,
            }
        }
    }
    let moves: Vec<_> = moves.into_iter().map(Box::pin).collect();
    {
        let _move_span = d.sim.span("rebuild", "move");
        join_all(moves).await;
    }
    // Fixed pool-map propagation cost bookends the pass.
    let _prop_span = d.sim.span("rebuild", "propagate");
    d.sim.sleep(SimDuration::from_millis(2)).await;
    report.duration_secs = (d.sim.now() - start).as_secs_f64();
    Ok(report)
}

/// Approximate stored bytes of an object (arrays: logical size + parity;
/// KVs: entries × calibrated entry size).
fn object_bytes(d: &Rc<Deployment>, cu: Uuid, oid: Oid) -> u64 {
    let cont = d.pool.cont_open(cu).expect("container opens");
    if let Ok(size) = cont.array_size(oid) {
        let parity = cont
            .array_parity(oid)
            .ok()
            .flatten()
            .map(|p| p.len() as u64)
            .unwrap_or(0);
        size + parity
    } else if let Ok(keys) = cont.kv_list_keys(oid) {
        keys.len() as u64 * d.spec.calibration.kv_entry_bytes
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SimClient;
    use crate::deploy::ClusterSpec;
    use bytes::Bytes;
    use daosim_kernel::Sim;
    use daosim_objstore::prelude::{DaosApi, OidAllocator};
    use std::cell::RefCell;

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn rebuild_restores_write_availability_for_replicated_objects() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
        let report: Rc<RefCell<RebuildReport>> = Rc::default();
        {
            let (d, report) = (Rc::clone(&d), Rc::clone(&report));
            sim.spawn(async move {
                let client = SimClient::for_process(&d, 0, 0);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"rb"))
                    .await
                    .unwrap();
                let mut alloc = OidAllocator::new(1);
                let payload = Bytes::from(vec![9u8; MIB as usize]);
                let mut handles = Vec::new();
                for _ in 0..12 {
                    let oid = alloc.next(ObjectClass::RP2);
                    let h = client.array_create(&cont, oid).await.unwrap();
                    client
                        .array_write(&cont, &h, 0, payload.clone())
                        .await
                        .unwrap();
                    handles.push(h);
                }
                d.kill_engine(0);
                // Degraded: reads work, writes to objects with a dead
                // replica fail.
                let mut blocked = 0;
                for h in &handles {
                    client.array_read(&cont, h, 0, MIB).await.unwrap();
                    if client
                        .array_write(&cont, h, 0, payload.clone())
                        .await
                        .is_err()
                    {
                        blocked += 1;
                    }
                }
                assert!(blocked > 0, "some degraded writes must fail pre-rebuild");

                let r = rebuild_engine(&d, 0).await.expect("valid rebuild");
                *report.borrow_mut() = r;

                // Redundancy restored: every write succeeds again.
                for h in &handles {
                    client
                        .array_write(&cont, h, 0, payload.clone())
                        .await
                        .unwrap();
                    let got = client.array_read(&cont, h, 0, MIB).await.unwrap();
                    assert_eq!(got, payload);
                }
            });
        }
        sim.run().expect_quiescent();
        let r = *report.borrow();
        assert!(
            r.objects_moved > 0,
            "rebuild must have moved objects: {r:?}"
        );
        assert!(r.bytes_moved >= r.objects_moved as u64 * MIB);
        assert!(r.duration_secs > 0.0, "data movement takes time");
    }

    #[test]
    fn rebuild_restores_ec_objects_too() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
        {
            let d = Rc::clone(&d);
            sim.spawn(async move {
                let client = SimClient::for_process(&d, 0, 0);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"rbec"))
                    .await
                    .unwrap();
                let mut alloc = OidAllocator::new(1);
                let payload = Bytes::from(vec![6u8; MIB as usize]);
                let mut handles = Vec::new();
                for _ in 0..12 {
                    let oid = alloc.next(ObjectClass::EC2P1);
                    let h = client.array_create(&cont, oid).await.unwrap();
                    client
                        .array_write(&cont, &h, 0, payload.clone())
                        .await
                        .unwrap();
                    handles.push(h);
                }
                d.kill_engine(2);
                let r = rebuild_engine(&d, 2).await.expect("valid rebuild");
                assert!(r.objects_moved > 0, "EC objects must rebuild: {r:?}");
                // Full redundancy again: writes and reads succeed on all.
                for h in &handles {
                    client
                        .array_write(&cont, h, 0, payload.clone())
                        .await
                        .unwrap();
                    let got = client.array_read(&cont, h, 0, MIB).await.unwrap();
                    assert_eq!(got, payload);
                }
            });
        }
        sim.run().expect_quiescent();
    }

    #[test]
    fn rebuild_reports_unprotected_objects_as_lost() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
        let lost: Rc<std::cell::Cell<usize>> = Rc::default();
        {
            let (d, lost) = (Rc::clone(&d), Rc::clone(&lost));
            sim.spawn(async move {
                let client = SimClient::for_process(&d, 0, 0);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"rb2"))
                    .await
                    .unwrap();
                let mut alloc = OidAllocator::new(1);
                for _ in 0..32 {
                    let oid = alloc.next(ObjectClass::S1);
                    let h = client.array_create(&cont, oid).await.unwrap();
                    client
                        .array_write(&cont, &h, 0, Bytes::from(vec![1u8; 4096]))
                        .await
                        .unwrap();
                    client.array_close(&cont, h).await.unwrap();
                }
                d.kill_engine(1);
                let r = rebuild_engine(&d, 1).await.expect("valid rebuild");
                lost.set(r.objects_lost);
                assert_eq!(r.objects_moved, 0);
            });
        }
        sim.run().expect_quiescent();
        assert!(lost.get() > 0, "S1 objects on the dead engine are lost");
    }

    #[test]
    fn rebuild_duration_scales_with_data_volume() {
        let run = |objects: u32| {
            let sim = Sim::new();
            let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
            let out: Rc<std::cell::Cell<f64>> = Rc::default();
            let (d2, out2) = (Rc::clone(&d), Rc::clone(&out));
            sim.spawn(async move {
                let client = SimClient::for_process(&d2, 0, 0);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"rb3"))
                    .await
                    .unwrap();
                let mut alloc = OidAllocator::new(1);
                let payload = Bytes::from(vec![2u8; MIB as usize]);
                for _ in 0..objects {
                    let oid = alloc.next(ObjectClass::RP2);
                    let h = client.array_create(&cont, oid).await.unwrap();
                    client
                        .array_write(&cont, &h, 0, payload.clone())
                        .await
                        .unwrap();
                    client.array_close(&cont, h).await.unwrap();
                }
                d2.kill_engine(0);
                let r = rebuild_engine(&d2, 0).await.expect("valid rebuild");
                out2.set(r.duration_secs);
            });
            sim.run().expect_quiescent();
            out.get()
        };
        let small = run(8);
        let large = run(64);
        assert!(
            large > small * 2.0,
            "8x the data should take much longer: {small:.4}s vs {large:.4}s"
        );
    }

    #[test]
    fn rebuild_of_a_live_engine_is_an_error() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
        {
            let d = Rc::clone(&d);
            sim.spawn(async move {
                assert_eq!(
                    rebuild_engine(&d, 0).await,
                    Err(RebuildError::EngineAlive(0))
                );
                // No side effects: a remap-free pool map, engine still up.
                assert_eq!(d.resolve_target(0), 0);
                assert!(d.engines[0].is_alive());
            });
        }
        sim.run().expect_quiescent();
    }

    #[test]
    fn rebuild_with_no_survivors_is_an_error() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        {
            let d = Rc::clone(&d);
            sim.spawn(async move {
                d.kill_engine(0);
                d.kill_engine(1);
                assert_eq!(rebuild_engine(&d, 0).await, Err(RebuildError::NoSurvivors));
            });
        }
        sim.run().expect_quiescent();
    }
}
