//! # daosim-cluster — the simulated DAOS service
//!
//! Deploys a DAOS-shaped cluster onto the simulation substrate: server
//! nodes run one *engine* per socket, each engine owns 12 *targets* (FIFO
//! service queues with a static share of the socket's Optane bandwidth),
//! and a pool spans every target. [`client::SimClient`] implements the
//! [`daosim_objstore::DaosApi`] trait with modelled time, so the field
//! I/O layer and the benchmarks run unchanged against it.
//!
//! The calibration (all constants in [`calibration::Calibration`]) is
//! fitted to the paper's own measurements; see that module's docs for the
//! fit provenance and DESIGN.md for the model rationale.

pub mod calibration;
pub mod client;
pub mod deploy;
pub mod fault;
pub mod fuzz;
pub mod rebuild;
pub mod tiering;

pub use calibration::Calibration;
pub use client::{ClientMetrics, ClientOp, QosClass, SimClient, SimCont};
pub use deploy::{BacklogGauge, ClusterSpec, ClusterSpecError, Deployment, Engine, Target};
pub use tiering::{spawn_aggregation, AggregationConfig};
// Media tier types travel with the spec that carries them.
pub use daosim_media::{
    MediaConfigError, MediaFull, NvmeSpec, ScmSpec, Tier, TierCounts, TierPolicy, TieredMedia,
};
pub use fault::{
    FaultEvent, FaultPlan, ResilienceReport, ResilienceStats, RetryPolicy, RetryPolicyBuilder,
};
pub use fuzz::{FuzzFailure, FuzzProgram, FuzzReport, Observation};
pub use rebuild::{rebuild_engine, RebuildError, RebuildReport};
