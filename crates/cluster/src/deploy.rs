//! Cluster deployment: servers, engines, targets and shared services.
//!
//! A deployment wires together the fabric (raw network), per-engine and
//! per-client-socket *stack links* (software processing capacities), the
//! per-target FIFO service queues with their SCM media shares, the pool
//! metadata service, and the backing [`DaosStore`] that holds real data.
//! Everything timed lives here; the [`crate::client::SimClient`] composes
//! these pieces into DAOS operations.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use std::fmt;

use daosim_kernel::sync::{AdmissionClass, AdmissionPolicy, PrioritySemaphore};
use daosim_kernel::Sim;
use daosim_media::{MediaConfigError, MediaTally, TierPolicy, TieredMedia};
use daosim_net::{Endpoint, Fabric, FabricSpec, LinkId, ProviderProfile};
use daosim_objstore::prelude::{Oid, Uuid};
use daosim_objstore::store::DEFAULT_POOL_CAPACITY;
use daosim_objstore::{DaosStore, Pool};

use crate::calibration::Calibration;
use crate::client::ClientMetrics;
use crate::fault::{ResilienceStats, RetryPolicy};

/// Static description of a cluster to deploy.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    pub server_nodes: u16,
    /// Engines per server node (1 = single-socket deployments, as in the
    /// paper's PSM2 runs; 2 = the usual dual-engine setup).
    pub engines_per_node: u8,
    pub targets_per_engine: u32,
    pub client_nodes: u16,
    /// Client sockets used per client node (PSM2 runs used 1).
    pub client_sockets: u8,
    pub provider: ProviderProfile,
    pub calibration: Calibration,
    /// Client-side retry/deadline policy. Defaults to
    /// fail fast (`RetryPolicy::builder().build()`), preserving the
    /// pre-resilience behaviour; build with
    /// [`crate::RetryPolicyBuilder::operational`] for fault drills.
    pub retry: RetryPolicy,
    /// Admission policy for every serial service queue in the deployment
    /// (target FIFOs, engine metadata executors, the pool metadata
    /// service, per-object update locks). `Fifo` (the default) is
    /// byte-identical to the plain-semaphore behaviour; `WriterPriority`
    /// admits `QosClass::Writer` clients ahead of readers with an aging
    /// anti-starvation credit.
    pub admission: AdmissionPolicy,
    /// Media tier policy for every target (DESIGN.md §14).
    /// `TierPolicy::scm_only()` (the default) reproduces the paper's
    /// SCM-only testbed bit-for-bit; `TierPolicy::tiered()` adds the NVMe
    /// capacity tier with SCM-write-buffer placement and watermark-driven
    /// aggregation.
    pub tiering: TierPolicy,
}

/// A structurally invalid [`ClusterSpec`], reported as a typed error by
/// [`ClusterSpec::validate`] / [`Deployment::try_new`] instead of a
/// panic deep inside deployment (the PR 8 zero-shape `BadArgs` pattern).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClusterSpecError {
    /// The named shape field must be non-zero.
    Zero(&'static str),
    /// The named field must be 1 or 2 (socket-bound resources).
    NotOneOrTwo(&'static str),
    /// The media tier configuration is invalid.
    Media(MediaConfigError),
}

impl fmt::Display for ClusterSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterSpecError::Zero(field) => {
                write!(f, "cluster spec: {field} must be non-zero")
            }
            ClusterSpecError::NotOneOrTwo(field) => {
                write!(f, "cluster spec: {field} must be 1 or 2")
            }
            ClusterSpecError::Media(e) => write!(f, "cluster spec: {e}"),
        }
    }
}

impl std::error::Error for ClusterSpecError {}

impl From<MediaConfigError> for ClusterSpecError {
    fn from(e: MediaConfigError) -> Self {
        ClusterSpecError::Media(e)
    }
}

impl ClusterSpec {
    /// The paper's standard TCP deployment shape: two engines per server
    /// node, 12 targets per engine, clients using both sockets.
    pub fn tcp(server_nodes: u16, client_nodes: u16) -> Self {
        ClusterSpec {
            server_nodes,
            engines_per_node: 2,
            targets_per_engine: 12,
            client_nodes,
            client_sockets: 2,
            provider: ProviderProfile::tcp(),
            calibration: Calibration::nextgenio(),
            retry: RetryPolicy::builder().build(),
            admission: AdmissionPolicy::Fifo,
            tiering: TierPolicy::scm_only(),
        }
    }

    /// The paper's PSM2 shape: one engine per server node, one socket per
    /// client node (the single-rail restriction).
    pub fn psm2(server_nodes: u16, client_nodes: u16) -> Self {
        ClusterSpec {
            server_nodes,
            engines_per_node: 1,
            targets_per_engine: 12,
            client_nodes,
            client_sockets: 1,
            provider: ProviderProfile::psm2(),
            calibration: Calibration::nextgenio(),
            retry: RetryPolicy::builder().build(),
            admission: AdmissionPolicy::Fifo,
            tiering: TierPolicy::scm_only(),
        }
    }

    pub fn engines(&self) -> u32 {
        self.server_nodes as u32 * self.engines_per_node as u32
    }

    pub fn pool_targets(&self) -> u32 {
        self.engines() * self.targets_per_engine
    }

    /// Structural validation of the spec: zero shapes, socket-bound
    /// ranges, and the media tier policy. [`Deployment::try_new`] calls
    /// this so a bad shape is a typed error, not an assert.
    pub fn validate(&self) -> Result<(), ClusterSpecError> {
        if self.server_nodes == 0 {
            return Err(ClusterSpecError::Zero("server_nodes"));
        }
        if self.client_nodes == 0 {
            return Err(ClusterSpecError::Zero("client_nodes"));
        }
        if self.targets_per_engine == 0 {
            return Err(ClusterSpecError::Zero("targets_per_engine"));
        }
        if !(1..=2).contains(&self.engines_per_node) {
            return Err(ClusterSpecError::NotOneOrTwo("engines_per_node"));
        }
        if !(1..=2).contains(&self.client_sockets) {
            return Err(ClusterSpecError::NotOneOrTwo("client_sockets"));
        }
        self.tiering.validate()?;
        Ok(())
    }
}

/// Pool-wide queue-backlog gauge: how many client operations are waiting
/// for a target service slot right now, plus the high-water mark. The
/// client increments on entering a target's FIFO and decrements when the
/// slot is granted (or the wait is cancelled), so `depth()` is the
/// instantaneous contention the operational-NWP workload binds on and
/// `peak()` its worst case over the run.
#[derive(Default)]
pub struct BacklogGauge {
    depth: Cell<u64>,
    peak: Cell<u64>,
}

/// RAII witness of one queued operation; dropping it (slot granted or
/// wait abandoned via attempt timeout) decrements the gauge, so the
/// depth can never leak upward across cancelled attempts.
pub struct BacklogToken<'a>(&'a BacklogGauge);

impl BacklogGauge {
    /// Registers one waiter; the returned token undoes it on drop.
    pub fn enter(&self) -> BacklogToken<'_> {
        let d = self.depth.get() + 1;
        self.depth.set(d);
        if d > self.peak.get() {
            self.peak.set(d);
        }
        BacklogToken(self)
    }

    /// Operations currently waiting for a target slot.
    pub fn depth(&self) -> u64 {
        self.depth.get()
    }

    /// Deepest the queue has ever been.
    pub fn peak(&self) -> u64 {
        self.peak.get()
    }
}

impl Drop for BacklogToken<'_> {
    fn drop(&mut self) {
        let d = self.0.depth.get();
        // Each token decrements exactly once (Rust drop semantics); a
        // zero depth here would mean a decrement without a matching
        // `enter()`, which must never happen whatever order priority
        // admission grants or cancels queued ops in.
        debug_assert!(d > 0, "backlog gauge underflow");
        self.0.depth.set(d.saturating_sub(1));
    }
}

/// One DAOS target: a priority-admission service queue plus its media
/// share.
pub struct Target {
    pub sem: PrioritySemaphore,
    pub media: TieredMedia,
    /// Media operation totals, folded into the `media.*` metrics.
    pub tally: MediaTally,
    /// Accumulated busy time (ns) — service occupancy accounting.
    busy_ns: Cell<u64>,
}

impl Target {
    /// Charges `ns` of service occupancy.
    pub fn charge_busy(&self, ns: u64) {
        self.busy_ns.set(self.busy_ns.get() + ns);
    }

    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.get()
    }
}

/// One DAOS engine: a socket-pinned I/O process with its own fabric
/// endpoint, software-stack capacities, serial metadata executor and a
/// set of targets.
pub struct Engine {
    pub endpoint: Endpoint,
    pub rx_stack: LinkId,
    pub tx_stack: LinkId,
    /// Serial executor for engine-level metadata work (handle tables).
    pub meta: PrioritySemaphore,
    pub targets: Vec<Target>,
    alive: Cell<bool>,
    /// Transiently unresponsive (brownout): the engine process is up but
    /// not answering; clears on its own, unlike a crash.
    browned_out: Cell<bool>,
    /// Healthy stack-link capacities (GiB/s), the restore point for NIC
    /// degradation faults.
    nominal_rx_gib: f64,
    nominal_tx_gib: f64,
}

impl Engine {
    /// Whether the engine currently answers RPCs: up and not in a
    /// brownout window.
    pub fn is_alive(&self) -> bool {
        self.alive.get() && !self.browned_out.get()
    }

    pub fn is_browned_out(&self) -> bool {
        self.browned_out.get()
    }
}

struct ClientSocket {
    tx_stack: LinkId,
    rx_stack: LinkId,
}

/// A deployed cluster. Obtain one per simulation via [`Deployment::new`].
pub struct Deployment {
    pub sim: Sim,
    pub spec: ClusterSpec,
    pub fabric: Fabric,
    pub engines: Vec<Engine>,
    /// Stack links per (client node index, socket).
    client_sockets: Vec<Vec<ClientSocket>>,
    pub store: Arc<DaosStore>,
    pub pool: Arc<Pool>,
    /// The pool metadata service (container create/open), a serial queue
    /// hosted by engine 0.
    pub pool_md: PrioritySemaphore,
    /// Lazily materialised per-object-region update locks.
    obj_locks: RefCell<HashMap<(Uuid, Oid, u64), PrioritySemaphore>>,
    /// Pool-map overrides installed by rebuild: dead target → survivor.
    target_remap: RefCell<HashMap<u32, u32>>,
    /// Retry/timeout/failover/fault counters (see [`crate::fault`]).
    resilience: ResilienceStats,
    /// Pre-resolved per-op `client.*` metric handles (hot-path interning,
    /// see [`crate::client::ClientMetrics`]).
    client_metrics: ClientMetrics,
    /// Pool-wide target-queue backlog (instantaneous depth + peak).
    backlog: BacklogGauge,
}

impl Deployment {
    /// Deploys the cluster, panicking on a structurally invalid spec.
    /// Call [`Deployment::try_new`] to get the typed error instead.
    pub fn new(sim: &Sim, spec: ClusterSpec) -> Rc<Self> {
        Self::try_new(sim, spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Deploys the cluster after validating the spec.
    pub fn try_new(sim: &Sim, spec: ClusterSpec) -> Result<Rc<Self>, ClusterSpecError> {
        spec.validate()?;

        let total_nodes = spec.server_nodes + spec.client_nodes;
        let mut fabric_spec = FabricSpec::new(total_nodes, spec.provider);
        if spec.server_nodes > 1 {
            fabric_spec.host_efficiency = spec.calibration.multi_server_host_efficiency;
        }
        let fabric = Fabric::new(sim, fabric_spec);
        let cal = &spec.calibration;
        // RDMA (PSM2) removes most per-byte stack cost on both ends.
        let stack_gain = if spec.provider.name == "psm2" {
            cal.psm2_stack_gain
        } else {
            1.0
        };

        let engines = (0..spec.engines())
            .map(|e| {
                let node = (e / spec.engines_per_node as u32) as u16;
                let socket = (e % spec.engines_per_node as u32) as u8;
                let nominal_rx_gib = cal.engine_rx_gib * stack_gain;
                let nominal_tx_gib = cal.engine_tx_gib * stack_gain;
                Engine {
                    endpoint: Endpoint::new(node, socket),
                    rx_stack: fabric.net().add_link(nominal_rx_gib),
                    tx_stack: fabric.net().add_link(nominal_tx_gib),
                    meta: PrioritySemaphore::new(1, spec.admission),
                    // Each engine is pinned to its own socket and thus its
                    // own interleaved DIMM set, so a target's media share
                    // divides only its engine's target count.
                    targets: (0..spec.targets_per_engine)
                        .map(|_| Target {
                            sem: PrioritySemaphore::new(1, spec.admission),
                            media: TieredMedia::new(cal.scm, spec.tiering, spec.targets_per_engine)
                                .expect("spec validated above"),
                            tally: MediaTally::default(),
                            busy_ns: Cell::new(0),
                        })
                        .collect(),
                    alive: Cell::new(true),
                    browned_out: Cell::new(false),
                    nominal_rx_gib,
                    nominal_tx_gib,
                }
            })
            .collect();

        let client_sockets = (0..spec.client_nodes)
            .map(|_| {
                (0..spec.client_sockets)
                    .map(|_| ClientSocket {
                        tx_stack: fabric.net().add_link(cal.client_tx_gib * stack_gain),
                        rx_stack: fabric.net().add_link(cal.client_rx_gib * stack_gain),
                    })
                    .collect()
            })
            .collect();

        let store = Arc::new(DaosStore::new());
        let pool = store
            .pool_create(
                Uuid::from_name(b"daosim-pool"),
                spec.pool_targets(),
                DEFAULT_POOL_CAPACITY,
            )
            .expect("fresh store");

        Ok(Rc::new(Deployment {
            sim: sim.clone(),
            spec,
            fabric,
            engines,
            client_sockets,
            store,
            pool,
            pool_md: PrioritySemaphore::new(1, spec.admission),
            obj_locks: RefCell::new(HashMap::new()),
            target_remap: RefCell::new(HashMap::new()),
            resilience: ResilienceStats::new(sim.obs().metrics()),
            client_metrics: ClientMetrics::new(sim.obs().metrics()),
            backlog: BacklogGauge::default(),
        }))
    }

    /// The engine owning global pool target `t`.
    pub fn engine_of_target(&self, t: u32) -> &Engine {
        &self.engines[(t / self.spec.targets_per_engine) as usize]
    }

    pub fn engine_index_of_target(&self, t: u32) -> u32 {
        t / self.spec.targets_per_engine
    }

    /// The target's service queue/media within its engine.
    pub fn target(&self, t: u32) -> &Target {
        let e = self.engine_of_target(t);
        &e.targets[(t % self.spec.targets_per_engine) as usize]
    }

    /// The fabric endpoint of client process slot `(client node, rank)`:
    /// processes are balanced across the node's sockets, as the paper's
    /// pinning strategy prescribes.
    pub fn client_endpoint(&self, client_node: u16, rank_on_node: u32) -> Endpoint {
        assert!(client_node < self.spec.client_nodes);
        Endpoint::new(
            self.spec.server_nodes + client_node,
            (rank_on_node % self.spec.client_sockets as u32) as u8,
        )
    }

    fn client_socket(&self, ep: Endpoint) -> &ClientSocket {
        let node = (ep.node - self.spec.server_nodes) as usize;
        &self.client_sockets[node][ep.socket as usize]
    }

    /// Route for client → engine bulk data (writes), including software
    /// stack links on both ends.
    pub fn write_route(&self, client: Endpoint, engine: &Engine) -> Vec<LinkId> {
        let mut r = vec![self.client_socket(client).tx_stack];
        r.extend(self.fabric.route(client, engine.endpoint));
        r.push(engine.rx_stack);
        r
    }

    /// Route for engine → client bulk data (reads).
    pub fn read_route(&self, engine: &Engine, client: Endpoint) -> Vec<LinkId> {
        let mut r = vec![engine.tx_stack];
        r.extend(self.fabric.route(engine.endpoint, client));
        r.push(self.client_socket(client).rx_stack);
        r
    }

    /// Per-object-region update lock (DTX-leader serialization
    /// surrogate). Key-Value operations use region 0 (whole-object
    /// semantics); Array operations key by the extent's starting chunk,
    /// so conflicting overwrites serialize while disjoint extents — e.g.
    /// IOR shared-file ranks — proceed concurrently, as DAOS's
    /// extent-granular versioning allows.
    pub fn obj_lock(&self, cont: Uuid, oid: Oid, region: u64) -> PrioritySemaphore {
        self.obj_locks
            .borrow_mut()
            .entry((cont, oid, region))
            .or_insert_with(|| PrioritySemaphore::new(1, self.spec.admission))
            .clone()
    }

    /// Installs a pool-map override: I/O addressed to `from` lands on
    /// `to` (rebuild's target exclusion + replacement).
    pub fn set_target_remap(&self, from: u32, to: u32) {
        assert!(
            self.engine_of_target(to).is_alive(),
            "remap replacement target {to} is on a dead engine"
        );
        self.target_remap.borrow_mut().insert(from, to);
    }

    /// Resolves a placement-computed target through the pool map.
    pub fn resolve_target(&self, t: u32) -> u32 {
        *self.target_remap.borrow().get(&t).unwrap_or(&t)
    }

    /// Streams `bytes` from one target's media to another's over the
    /// fabric — the rebuild data path (engine-to-engine, no client).
    pub async fn stream_between_targets(&self, src: u32, dst: u32, bytes: u64) {
        let (se, de) = (
            self.engine_index_of_target(src) as usize,
            self.engine_index_of_target(dst) as usize,
        );
        let src_engine = &self.engines[se];
        let dst_engine = &self.engines[de];
        // Media read at the source, bulk flow, media write at the sink —
        // pipelined like client bulk I/O.
        let read = async {
            let t = self.target(src);
            let q = self.sim.span_leaf("media", "queue");
            // Rebuild is background traffic: never ahead of clients.
            let _p = t.sem.acquire_one(AdmissionClass::Normal).await;
            q.end();
            let _s = self.sim.span_leaf("media", "service");
            let dur = t.media.read_time(bytes);
            self.sim.sleep(dur).await;
            t.charge_busy(dur.as_nanos());
            t.tally.note_read(bytes);
        };
        let write = async {
            let t = self.target(dst);
            let q = self.sim.span_leaf("media", "queue");
            let _p = t.sem.acquire_one(AdmissionClass::Normal).await;
            q.end();
            let _s = self.sim.span_leaf("media", "service");
            // Rebuild lands data like foreground writes: charge the
            // receiving tier's occupancy. A full sink still pays the SCM
            // service time (the stream is best-effort; the pool-level
            // capacity check is the client's job).
            let dur = match t.media.charge_write(bytes) {
                Ok(charge) => charge.time,
                Err(_) => t.media.scm().write_time(bytes),
            };
            self.sim.sleep(dur).await;
            t.charge_busy(dur.as_nanos());
            t.tally.note_write(bytes);
        };
        let flow = async {
            if se != de {
                let mut route = vec![src_engine.tx_stack];
                route.extend(self.fabric.route(src_engine.endpoint, dst_engine.endpoint));
                route.push(dst_engine.rx_stack);
                let cap = self
                    .fabric
                    .flow_cap(src_engine.endpoint, dst_engine.endpoint);
                self.fabric.net().transfer(&route, bytes, cap).await;
            }
        };
        type BoxFut<'a> = std::pin::Pin<Box<dyn std::future::Future<Output = ()> + 'a>>;
        let parts: Vec<BoxFut> = vec![Box::pin(read), Box::pin(write), Box::pin(flow)];
        daosim_kernel::sync::join_all(parts).await;
    }

    /// Per-engine target occupancy over the elapsed simulated time:
    /// `(mean, max)` busy fraction across the engine's targets. A mean
    /// near 1.0 means the engine's media/targets were the bottleneck.
    pub fn engine_utilization(&self) -> Vec<(f64, f64)> {
        let elapsed = self.sim.now().as_nanos().max(1) as f64;
        self.engines
            .iter()
            .map(|e| {
                let fracs: Vec<f64> = e
                    .targets
                    .iter()
                    .map(|t| t.busy_ns() as f64 / elapsed)
                    .collect();
                let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
                let max = fracs.iter().copied().fold(0.0, f64::max);
                (mean, max)
            })
            .collect()
    }

    /// Failure injection: mark an engine down. In-flight waiters still
    /// drain; new operations targeting it fail.
    pub fn kill_engine(&self, index: u32) {
        self.engines[index as usize].alive.set(false);
    }

    pub fn revive_engine(&self, index: u32) {
        self.engines[index as usize].alive.set(true);
    }

    /// Failure injection: engine transiently unresponsive. Surfaces to
    /// clients exactly like a crash (`EngineUnavailable`) but is expected
    /// to clear on its own via [`Deployment::clear_brownout`].
    pub fn brownout_engine(&self, index: u32) {
        self.engines[index as usize].browned_out.set(true);
    }

    pub fn clear_brownout(&self, index: u32) {
        self.engines[index as usize].browned_out.set(false);
    }

    /// Failure injection: scales the engine's NIC/stack capacity by
    /// `factor` (in `(0, 1]`) at the current instant. In-flight flows
    /// slow down from here on; [`Deployment::restore_engine_nic`] (or
    /// `factor = 1.0`) returns to nominal.
    pub fn degrade_engine_nic(&self, index: u32, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degradation factor must be in (0, 1]"
        );
        let e = &self.engines[index as usize];
        let net = self.fabric.net();
        net.set_link_capacity(e.rx_stack, e.nominal_rx_gib * factor);
        net.set_link_capacity(e.tx_stack, e.nominal_tx_gib * factor);
    }

    pub fn restore_engine_nic(&self, index: u32) {
        self.degrade_engine_nic(index, 1.0);
    }

    /// Live resilience counters for this deployment.
    pub fn resilience(&self) -> &ResilienceStats {
        &self.resilience
    }

    /// Pre-resolved client-op metric handles for this deployment.
    pub fn client_metrics(&self) -> &ClientMetrics {
        &self.client_metrics
    }

    /// Pool-wide target-queue backlog gauge. Sample `depth()` from a
    /// timed task for a time series, or read `peak()` after a run.
    pub fn backlog(&self) -> &BacklogGauge {
        &self.backlog
    }

    /// Total grants the anti-starvation aging credit forced to the
    /// normal lane, summed over every service queue in the deployment.
    /// Zero under `AdmissionPolicy::Fifo`; under `WriterPriority` a
    /// non-zero value is the proof readers were aged in, not starved.
    pub fn aged_grants(&self) -> u64 {
        let mut total = self.pool_md.aged_grants();
        for e in &self.engines {
            total += e.meta.aged_grants();
            total += e.targets.iter().map(|t| t.sem.aged_grants()).sum::<u64>();
        }
        total += self
            .obj_locks
            .borrow()
            .values()
            .map(|s| s.aged_grants())
            .sum::<u64>();
        total
    }

    /// Folds the passive tallies — per-engine media counters, per-engine
    /// busy time, pool usage, and the pool's object-store op counts —
    /// into the world's metrics registry. Call once, after a run, before
    /// snapshotting: the fold *sets* registry values from the tallies, so
    /// repeated calls would double-count.
    pub fn fold_metrics(&self) {
        let reg = self.sim.obs().metrics();
        for (i, e) in self.engines.iter().enumerate() {
            let mut media = daosim_media::MediaCounts::default();
            let mut busy = 0u64;
            let (mut scm_used, mut nvme_used, mut aggregated) = (0u64, 0u64, 0u64);
            for t in &e.targets {
                let c = t.tally.counts();
                media.reads += c.reads;
                media.writes += c.writes;
                media.bytes_read += c.bytes_read;
                media.bytes_written += c.bytes_written;
                busy += t.busy_ns();
                scm_used += t.media.scm_used();
                nvme_used += t.media.nvme_used();
                aggregated += t.media.aggregated_bytes();
            }
            reg.counter(&format!("media.e{i}.reads")).add(media.reads);
            reg.counter(&format!("media.e{i}.writes")).add(media.writes);
            reg.counter(&format!("media.e{i}.bytes_read"))
                .add(media.bytes_read);
            reg.counter(&format!("media.e{i}.bytes_written"))
                .add(media.bytes_written);
            reg.counter(&format!("media.e{i}.scm_used")).add(scm_used);
            reg.counter(&format!("media.e{i}.nvme_used")).add(nvme_used);
            reg.counter(&format!("media.e{i}.aggregated_bytes"))
                .add(aggregated);
            reg.counter(&format!("engine.e{i}.busy_ns")).add(busy);
        }
        let ops = self.pool.op_counts();
        reg.counter("objstore.kv_updates").add(ops.kv_updates);
        reg.counter("objstore.kv_fetches").add(ops.kv_fetches);
        reg.counter("objstore.array_updates").add(ops.array_updates);
        reg.counter("objstore.array_fetches").add(ops.array_fetches);
        reg.counter("pool.used_bytes").add(self.pool.used());
        reg.counter("client.backlog_peak").add(self.backlog.peak());
        reg.counter("admission.aged_grants").add(self.aged_grants());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_counts() {
        let s = ClusterSpec::tcp(4, 8);
        assert_eq!(s.engines(), 8);
        assert_eq!(s.pool_targets(), 96);
        let p = ClusterSpec::psm2(4, 8);
        assert_eq!(p.engines(), 4);
    }

    #[test]
    fn engine_placement_covers_sockets() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(2, 2));
        assert_eq!(d.engines.len(), 4);
        assert_eq!(d.engines[0].endpoint, Endpoint::new(0, 0));
        assert_eq!(d.engines[1].endpoint, Endpoint::new(0, 1));
        assert_eq!(d.engines[2].endpoint, Endpoint::new(1, 0));
        assert_eq!(d.engines[3].endpoint, Endpoint::new(1, 1));
    }

    #[test]
    fn target_to_engine_mapping() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(2, 2));
        assert_eq!(d.engine_index_of_target(0), 0);
        assert_eq!(d.engine_index_of_target(11), 0);
        assert_eq!(d.engine_index_of_target(12), 1);
        assert_eq!(d.engine_index_of_target(47), 3);
    }

    #[test]
    fn client_endpoints_balance_sockets() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 2));
        assert_eq!(d.client_endpoint(0, 0), Endpoint::new(1, 0));
        assert_eq!(d.client_endpoint(0, 1), Endpoint::new(1, 1));
        assert_eq!(d.client_endpoint(0, 2), Endpoint::new(1, 0));
        assert_eq!(d.client_endpoint(1, 0), Endpoint::new(2, 0));
    }

    #[test]
    fn routes_include_stack_links() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        let client = d.client_endpoint(0, 0);
        let w = d.write_route(client, &d.engines[0]);
        let r = d.read_route(&d.engines[0], client);
        // stack + 4 fabric links + stack (same-rail remote route).
        assert_eq!(w.len(), 6);
        assert_eq!(r.len(), 6);
        assert_ne!(w, r);
    }

    #[test]
    fn obj_locks_are_shared_per_object() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        let u = Uuid::from_name(b"c");
        let o = Oid::generate(0, 1, daosim_objstore::ObjectClass::S1);
        let a = d.obj_lock(u, o, 0);
        let _p = {
            // Hold a permit through one handle; the other sees it.
            use std::future::Future;
            let fut = a.acquire_one(AdmissionClass::Normal);
            let waker = std::task::Waker::noop();
            let mut cx = std::task::Context::from_waker(waker);
            let mut fut = std::pin::pin!(fut);
            match fut.as_mut().poll(&mut cx) {
                std::task::Poll::Ready(p) => p,
                std::task::Poll::Pending => panic!("uncontended lock pended"),
            }
        };
        let b = d.obj_lock(u, o, 0);
        assert_eq!(b.available(), 0);
    }

    #[test]
    fn backlog_token_decrements_exactly_once() {
        let g = BacklogGauge::default();
        let a = g.enter();
        let b = g.enter();
        assert_eq!(g.depth(), 2);
        assert_eq!(g.peak(), 2);
        drop(a);
        assert_eq!(g.depth(), 1, "first token decrements once");
        drop(b);
        assert_eq!(g.depth(), 0, "second token decrements once");
        assert_eq!(g.peak(), 2, "peak is sticky");
        // Re-entering after full drain starts from zero again, not from
        // an underflowed value.
        let c = g.enter();
        assert_eq!(g.depth(), 1);
        drop(c);
        assert_eq!(g.depth(), 0);
    }

    #[test]
    fn backlog_gauge_survives_cancel_after_promote_ordering() {
        // An op cancelled *after* its queue slot was promoted to service
        // drops its token exactly once; interleaving promoted and
        // cancelled ops in any order must return the gauge to zero
        // without underflow.
        let g = BacklogGauge::default();
        let t1 = g.enter(); // will be promoted, then finish
        let t2 = g.enter(); // will be cancelled while queued
        let t3 = g.enter(); // promoted after the cancellation
        assert_eq!(g.depth(), 3);
        drop(t2); // cancelled attempt: token dropped by the retry timeout
        drop(t1); // promoted op reaches service, drops its token
        drop(t3);
        assert_eq!(g.depth(), 0);
        assert_eq!(g.peak(), 3);
    }

    #[test]
    fn writer_priority_spec_threads_into_every_queue() {
        let sim = Sim::new();
        let mut spec = ClusterSpec::tcp(1, 1);
        spec.admission = AdmissionPolicy::writer_priority();
        let d = Deployment::new(&sim, spec);
        assert_eq!(d.pool_md.policy(), AdmissionPolicy::writer_priority());
        assert_eq!(
            d.engines[0].meta.policy(),
            AdmissionPolicy::writer_priority()
        );
        assert_eq!(d.target(0).sem.policy(), AdmissionPolicy::writer_priority());
        let u = Uuid::from_name(b"c");
        let o = Oid::generate(0, 1, daosim_objstore::ObjectClass::S1);
        assert_eq!(
            d.obj_lock(u, o, 0).policy(),
            AdmissionPolicy::writer_priority()
        );
        assert_eq!(d.aged_grants(), 0, "no traffic yet");
    }

    #[test]
    fn kill_and_revive_engine() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        assert!(d.engines[0].is_alive());
        d.kill_engine(0);
        assert!(!d.engines[0].is_alive());
        d.revive_engine(0);
        assert!(d.engines[0].is_alive());
    }

    #[test]
    fn single_server_keeps_full_host_capacity() {
        // host_efficiency only applies with >1 server node; verified via
        // spec wiring (the fabric itself is tested in daosim-net).
        let sim = Sim::new();
        let spec = ClusterSpec::tcp(1, 4);
        let d = Deployment::new(&sim, spec);
        assert_eq!(d.fabric.spec().host_efficiency, 1.0);
        let sim2 = Sim::new();
        let d2 = Deployment::new(&sim2, ClusterSpec::tcp(2, 4));
        assert!(d2.fabric.spec().host_efficiency < 1.0);
    }
}
