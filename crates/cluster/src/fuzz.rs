//! Schedule-perturbation fuzzing: differential testing of EQ workloads
//! under perturbed kernel schedules.
//!
//! The executor promises *schedule-invariant semantics*: for a workload
//! whose operations touch disjoint state (or read only data written
//! before the concurrent phase), the final pool state and the outcome of
//! every launched event must not depend on which legal schedule the
//! kernel picks (see DESIGN.md §7). This module turns that promise into
//! a fuzz target:
//!
//! 1. [`generate_program`] derives a random-but-deterministic program
//!    from a seed: several client actors issuing interleaved event-queue
//!    launches and harvests, pipelined field-style writes/reads bounded
//!    by a per-actor window `W`, plus an optional *recoverable* fault
//!    campaign (brownouts and kill→restart pairs) riding a generous
//!    retry policy so every operation eventually succeeds.
//! 2. [`run_program`] executes the program on a fresh simulated cluster
//!    under one [`SchedPolicy`] and returns an [`Observation`]: the
//!    per-event outcome map, a canonical dump of the final pool state,
//!    byte counters, and whether the run quiesced.
//! 3. [`fuzz_seed`] runs the same program under a roster of perturbed
//!    policies (FIFO is the reference), checks byte conservation against
//!    the program's expected extents, and diffs every observation
//!    against the reference. On divergence it shrinks the program to the
//!    shortest failing prefix and reports a ready-to-paste repro. The
//!    roster also carries one writer-priority *admission* slot (on the
//!    FIFO schedule): QoS barging at the service queues reorders grants
//!    but must never change an outcome.
//!
//! `daosctl fuzz --seeds N --policy all` and the `sched-fuzz` experiment
//! drive [`fuzz_corpus`] over the fixed corpus `0..N`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use bytes::Bytes;
use daosim_kernel::rng::splitmix64;
use daosim_kernel::{AdmissionPolicy, SchedPolicy, Sim, SimDuration};
use daosim_objstore::prelude::{
    ArrayHandle, DaosApi, DaosError, EventQueue, ObjectClass, Oid, OidAllocator, OpOutput, Uuid,
};

use crate::client::QosClass;
use crate::{ClusterSpec, Deployment, FaultPlan, RetryPolicy, SimClient};

/// KV objects shared by all actors (disjoint key spaces per op).
const KVS: usize = 2;
/// Array objects shared by all actors (disjoint extents per op).
const ARRAYS: usize = 2;
/// Keys written per KV object during the synchronous setup phase.
const SETUP_KEYS: u8 = 4;
/// Bytes written to each array during the synchronous setup phase; the
/// region `[0, SETUP_BYTES)` is the only one reads target.
const SETUP_BYTES: u64 = 4096;
/// Concurrent-phase writes land above the setup region, one private slot
/// per (global) op index, so nothing depends on completion order.
const WRITE_BASE: u64 = 8192;
const WRITE_SLOT: u64 = 4096;

/// One step of a fuzz program. Launch ops enqueue work on the actor's
/// event queue; harvest ops drain completions. Every key/extent a launch
/// touches is derived from the op's *global* index, keeping concurrent
/// effects disjoint by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzOp {
    /// `kv_put` to a key unique to this op.
    KvPut { kv: u8, val: u8 },
    /// `kv_get` of a setup-phase key (schedule-invariant result).
    KvGet { kv: u8, key: u8 },
    /// `kv_put_multi` of `n` keys unique to this op.
    KvPutMulti { kv: u8, n: u8, val: u8 },
    /// Field-style pipelined write: array data extent in this op's
    /// private slot plus a KV index entry, two events in flight.
    FieldWrite { arr: u8, len: u16, val: u8 },
    /// Field-style read within the setup-populated region.
    FieldRead { arr: u8, off: u16, len: u16 },
    /// Harvest at most one completion without blocking.
    Poll,
    /// Block for one completion (no-op when the queue is idle).
    Wait,
    /// Drain the queue.
    WaitAll,
}

/// A deterministic, seed-derived fuzz program.
#[derive(Debug, Clone)]
pub struct FuzzProgram {
    /// Seed the program was generated from (0 for hand-built programs).
    pub seed: u64,
    /// Per-actor event-queue capacity window `W` (pipelined submission
    /// parks on `wait_capacity(W)` before each launch).
    pub windows: Vec<usize>,
    /// Interleaved op stream: `(actor, op)` in launch order. The vector
    /// index is the op's global index, which keys its private state.
    pub ops: Vec<(u8, FuzzOp)>,
    /// Recoverable fault campaign applied alongside the actors.
    pub faults: FaultPlan,
}

impl FuzzProgram {
    /// The same program truncated to its first `n` ops — the shrinking
    /// step. Faults and actor shape are preserved.
    pub fn with_prefix(&self, n: usize) -> FuzzProgram {
        FuzzProgram {
            seed: self.seed,
            windows: self.windows.clone(),
            ops: self.ops[..n.min(self.ops.len())].to_vec(),
            faults: self.faults.clone(),
        }
    }

    /// Expected final size of each shared array: the setup extent or the
    /// furthest write the program issues, whichever is larger. Byte
    /// conservation check: every policy must converge to exactly this.
    pub fn expected_array_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![SETUP_BYTES; ARRAYS];
        for (idx, (_, op)) in self.ops.iter().enumerate() {
            if let FuzzOp::FieldWrite { arr, len, .. } = op {
                let end = WRITE_BASE + idx as u64 * WRITE_SLOT + *len as u64;
                let s = &mut sizes[*arr as usize % ARRAYS];
                *s = (*s).max(end);
            }
        }
        sizes
    }

    /// Total bytes the program's reads must return (reads only target
    /// the setup region, so this is exact and schedule-invariant).
    pub fn expected_read_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|(_, op)| match op {
                FuzzOp::FieldRead { off, len, .. } => {
                    (*len as u64).min(SETUP_BYTES.saturating_sub(*off as u64 % SETUP_BYTES))
                }
                _ => 0,
            })
            .sum()
    }
}

/// Counter-stream RNG over splitmix64 — the same construction the fault
/// campaigns and the kernel's `Random` policy use.
struct SeedRng(u64);

impl SeedRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Derives the fuzz program for `seed`: 1–3 actors with windows in
/// {1, 2, 4}, 6–24 interleaved ops, and (for three seeds out of four) a
/// recoverable fault campaign of brownouts and kill→restart pairs.
pub fn generate_program(seed: u64) -> FuzzProgram {
    let mut rng = SeedRng(seed ^ 0xDA05_F022);
    let actors = 1 + rng.below(3) as usize;
    let windows: Vec<usize> = (0..actors).map(|_| 1 << rng.below(3)).collect();
    let total = 6 + rng.below(19) as usize;
    let ops = (0..total)
        .map(|_| {
            let actor = rng.below(actors as u64) as u8;
            let op = match rng.below(10) {
                0 => FuzzOp::KvPut {
                    kv: rng.below(KVS as u64) as u8,
                    val: rng.next() as u8,
                },
                1 => FuzzOp::KvGet {
                    kv: rng.below(KVS as u64) as u8,
                    key: rng.below(SETUP_KEYS as u64) as u8,
                },
                2 => FuzzOp::KvPutMulti {
                    kv: rng.below(KVS as u64) as u8,
                    n: 1 + rng.below(4) as u8,
                    val: rng.next() as u8,
                },
                3..=5 => FuzzOp::FieldWrite {
                    arr: rng.below(ARRAYS as u64) as u8,
                    len: 1 + rng.below(WRITE_SLOT - 1) as u16,
                    val: rng.next() as u8,
                },
                6..=7 => FuzzOp::FieldRead {
                    arr: rng.below(ARRAYS as u64) as u8,
                    off: rng.below(SETUP_BYTES) as u16,
                    len: 1 + rng.below(1024) as u16,
                },
                8 => FuzzOp::Poll,
                9 => FuzzOp::Wait,
                _ => FuzzOp::WaitAll,
            };
            (actor, op)
        })
        .collect();

    // Recoverable faults only: every kill is paired with a restart, so
    // with the generous fuzz retry policy every op eventually succeeds
    // and outcomes stay schedule-invariant despite timing shifts.
    let mut faults = FaultPlan::new();
    if rng.below(4) != 0 {
        let engines = 2; // ClusterSpec::tcp(1, 1): one node, two engines
        for _ in 0..=rng.below(2) {
            let engine = rng.below(engines) as u32;
            let at = SimDuration::from_micros(500 + rng.below(20_000));
            if rng.below(2) == 0 {
                let dur = SimDuration::from_millis(5 + rng.below(45));
                faults = faults.brownout(at, engine, dur);
            } else {
                let gap = SimDuration::from_millis(20 + rng.below(80));
                faults = faults.kill(at, engine).restart(at + gap, engine);
            }
        }
    }

    FuzzProgram {
        seed,
        windows,
        ops,
        faults,
    }
}

/// Everything a schedule is allowed to vary: nothing. The differential
/// runner compares observations field by field across policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// `"a{actor}/e{event}" -> outcome` for every launched event.
    pub outcomes: BTreeMap<String, String>,
    /// Canonical dump of the final pool state (sorted KV keys with
    /// values, array sizes).
    pub state: String,
    /// Total bytes returned by reads.
    pub bytes_read: u64,
    /// Whether both run phases drained with no stranded task.
    pub quiescent: bool,
    /// Whether every target's tier-occupancy accounting balanced:
    /// foreground bytes ± migrated bytes = tier deltas (DESIGN.md §14).
    pub media_conserved: bool,
}

fn describe(out: &Result<OpOutput, DaosError>) -> String {
    match out {
        Ok(OpOutput::Unit) => "unit".into(),
        Ok(OpOutput::Data(b)) => format!("data:{:02x?}", &b[..]),
        Ok(OpOutput::MaybeData(v)) => format!("maybe:{:02x?}", v.as_deref()),
        Ok(OpOutput::Keys(k)) => {
            let mut k: Vec<&[u8]> = k.iter().map(|b| &b[..]).collect();
            k.sort();
            format!("keys:{k:02x?}")
        }
        Ok(OpOutput::Size(n)) => format!("size:{n}"),
        Err(e) => format!("err:{e:?}"),
    }
}

/// The retry policy the fuzz cluster runs with: enough attempts and
/// backoff budget to ride out any campaign [`generate_program`] emits,
/// no overall deadline — so op outcomes are *eventual success* under
/// every schedule and the differential comparison is meaningful.
pub fn fuzz_retry_policy() -> RetryPolicy {
    RetryPolicy::builder()
        .max_attempts(64)
        .base_backoff(SimDuration::from_millis(1))
        .max_backoff(SimDuration::from_millis(25))
        .attempt_timeout(SimDuration::from_millis(500))
        .op_deadline(SimDuration::ZERO)
        .seed(0x5EED_F022)
        .build()
}

struct Shared {
    outcomes: RefCell<BTreeMap<String, String>>,
    bytes_read: RefCell<u64>,
    state: RefCell<String>,
}

#[allow(clippy::too_many_arguments)]
async fn run_actor(
    client: SimClient,
    cont: crate::SimCont,
    kv_oids: Rc<Vec<Oid>>,
    arr_oids: Rc<Vec<Oid>>,
    actor: u8,
    window: usize,
    ops: Vec<(usize, FuzzOp)>,
    shared: Rc<Shared>,
) {
    // Handles are close-once; each actor re-opens the shared arrays.
    let handles: Vec<ArrayHandle> = arr_oids
        .iter()
        .map(|&o| ArrayHandle::from_open(o))
        .collect();
    let eq = EventQueue::new(client);
    let record = |ev: daosim_objstore::Event, r: &Result<OpOutput, DaosError>| {
        if let Ok(OpOutput::Data(b)) = r {
            *shared.bytes_read.borrow_mut() += b.len() as u64;
        }
        shared
            .outcomes
            .borrow_mut()
            .insert(format!("a{actor}/e{}", ev.0), describe(r));
    };
    for (idx, op) in ops {
        let launches = !matches!(op, FuzzOp::Poll | FuzzOp::Wait | FuzzOp::WaitAll);
        if launches {
            // Pipelined submission: park until the window has room,
            // harvesting whatever completed in the meantime.
            for (ev, r) in eq.wait_capacity(window).await {
                record(ev, &r);
            }
        }
        match op {
            FuzzOp::KvPut { kv, val } => {
                let key = [0xF0, idx as u8];
                eq.kv_put(
                    &cont,
                    kv_oids[kv as usize % KVS],
                    &key,
                    Bytes::from(vec![val; 8]),
                );
            }
            FuzzOp::KvGet { kv, key } => {
                eq.kv_get(&cont, kv_oids[kv as usize % KVS], &[key % SETUP_KEYS]);
            }
            FuzzOp::KvPutMulti { kv, n, val } => {
                let pairs = (0..n)
                    .map(|j| {
                        (
                            Bytes::from(vec![0xE0, idx as u8, j]),
                            Bytes::from(vec![val.wrapping_add(j); 8]),
                        )
                    })
                    .collect();
                eq.kv_put_multi(&cont, kv_oids[kv as usize % KVS], pairs);
            }
            FuzzOp::FieldWrite { arr, len, val } => {
                // Data extent plus index entry, as the field-I/O layer
                // writes fields: two events pipelined through the queue.
                let off = WRITE_BASE + idx as u64 * WRITE_SLOT;
                let data = Bytes::from(vec![val; len as usize]);
                eq.array_write(&cont, &handles[arr as usize % ARRAYS], off, data);
                eq.kv_put(
                    &cont,
                    kv_oids[0],
                    &[0xA0, idx as u8],
                    Bytes::from(len.to_le_bytes().to_vec()),
                );
            }
            FuzzOp::FieldRead { arr, off, len } => {
                let off = off as u64 % SETUP_BYTES;
                let len = (len as u64).min(SETUP_BYTES - off);
                eq.array_read(&cont, &handles[arr as usize % ARRAYS], off, len);
            }
            FuzzOp::Poll => {
                if let Some((ev, r)) = eq.poll() {
                    record(ev, &r);
                }
            }
            FuzzOp::Wait => {
                if let Some((ev, r)) = eq.wait().await {
                    record(ev, &r);
                }
            }
            FuzzOp::WaitAll => {
                for (ev, r) in eq.wait_all().await {
                    record(ev, &r);
                }
            }
        }
    }
    for (ev, r) in eq.wait_all().await {
        record(ev, &r);
    }
}

/// Runs `program` on a fresh `ClusterSpec::tcp(1, 1)` deployment under
/// `policy` with FIFO admission — see [`run_program_with`].
pub fn run_program(program: &FuzzProgram, policy: SchedPolicy) -> Observation {
    run_program_with(
        program,
        RosterEntry {
            sched: policy,
            admission: AdmissionPolicy::Fifo,
        },
    )
}

/// Runs `program` on a fresh `ClusterSpec::tcp(1, 1)` deployment under
/// one roster entry (schedule policy × admission policy) and returns the
/// observation. Actors are QoS-classified (even → writer, odd → reader)
/// so `WriterPriority` admission genuinely reorders the service queues —
/// outcomes must still be invariant. Two phases: the concurrent phase
/// (setup, actors, faults) runs to quiescence, then a synchronous audit
/// phase dumps the final pool state.
pub fn run_program_with(program: &FuzzProgram, entry: RosterEntry) -> Observation {
    let mut spec = ClusterSpec::tcp(1, 1);
    spec.retry = fuzz_retry_policy();
    spec.admission = entry.admission;
    run_program_on(program, entry, spec, None)
}

/// [`run_program_with`] on a two-tier deployment: a deliberately small
/// SCM write buffer in front of NVMe, with the background aggregation
/// service running through the whole actor phase. Exercises the tier
/// byte-conservation invariant and schedule invariance under migration
/// contention.
pub fn run_program_tiered(program: &FuzzProgram, entry: RosterEntry) -> Observation {
    let mut spec = ClusterSpec::tcp(1, 1);
    spec.retry = fuzz_retry_policy();
    spec.admission = entry.admission;
    // 2 MiB of SCM per socket — small enough that the setup phase alone
    // crosses the aggregation high watermark.
    spec.calibration.scm = daosim_media::ScmSpec {
        capacity: 2 * 1024 * 1024,
        ..daosim_media::ScmSpec::optane_gen1()
    };
    spec.tiering = daosim_media::TierPolicy {
        nvme: Some(daosim_media::NvmeSpec::p4510_gen1()),
        scm_threshold: 64 * 1024,
        ..daosim_media::TierPolicy::tiered()
    };
    let agg = crate::tiering::AggregationConfig::operational(SimDuration::from_secs(2), 0x716E);
    run_program_on(program, entry, spec, Some(agg))
}

fn run_program_on(
    program: &FuzzProgram,
    entry: RosterEntry,
    spec: ClusterSpec,
    aggregation: Option<crate::tiering::AggregationConfig>,
) -> Observation {
    let sim = Sim::with_policy(entry.sched);
    let d = Deployment::new(&sim, spec);
    program.faults.apply(&d);
    if let Some(cfg) = aggregation {
        crate::tiering::spawn_aggregation(&d, cfg);
    }

    let shared = Rc::new(Shared {
        outcomes: RefCell::new(BTreeMap::new()),
        bytes_read: RefCell::new(0),
        state: RefCell::new(String::new()),
    });
    let kv_oids: Rc<Vec<Oid>> = {
        let mut alloc = OidAllocator::new(21);
        Rc::new((0..KVS).map(|_| alloc.next(ObjectClass::S1)).collect())
    };
    let arr_oids: Rc<Vec<Oid>> = {
        let mut alloc = OidAllocator::new(22);
        Rc::new((0..ARRAYS).map(|_| alloc.next(ObjectClass::S1)).collect())
    };

    // Phase 1: synchronous setup, then the concurrent actor phase.
    {
        let sim2 = sim.clone();
        let d = Rc::clone(&d);
        let kv_oids = Rc::clone(&kv_oids);
        let arr_oids = Rc::clone(&arr_oids);
        let shared = Rc::clone(&shared);
        let program = program.clone();
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"sched-fuzz"))
                .await
                .expect("fuzz cont");
            for (i, &oid) in kv_oids.iter().enumerate() {
                for k in 0..SETUP_KEYS {
                    let val = Bytes::from(vec![i as u8 ^ k; 16]);
                    client
                        .kv_put(&cont, oid, &[k], val)
                        .await
                        .expect("setup put");
                }
            }
            for &oid in arr_oids.iter() {
                let h = client.array_create(&cont, oid).await.expect("setup create");
                let pattern = Bytes::from((0..SETUP_BYTES).map(|b| b as u8).collect::<Vec<u8>>());
                client
                    .array_write(&cont, &h, 0, pattern)
                    .await
                    .expect("setup write");
                client.array_close(&cont, h).await.expect("setup close");
            }
            for (actor, &window) in program.windows.iter().enumerate() {
                let ops: Vec<(usize, FuzzOp)> = program
                    .ops
                    .iter()
                    .enumerate()
                    .filter(|(_, (a, _))| *a as usize == actor)
                    .map(|(idx, (_, op))| (idx, *op))
                    .collect();
                let qos = if actor % 2 == 0 {
                    QosClass::Writer
                } else {
                    QosClass::Reader
                };
                let client = SimClient::for_process(&d, 0, 1 + actor as u32).with_qos(qos);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"sched-fuzz"))
                    .await
                    .expect("actor cont");
                sim2.spawn(run_actor(
                    client,
                    cont,
                    Rc::clone(&kv_oids),
                    Rc::clone(&arr_oids),
                    actor as u8,
                    window,
                    ops,
                    Rc::clone(&shared),
                ));
            }
        });
    }
    let phase1 = sim.run();

    // Phase 2: audit. Reads the final pool state synchronously; results
    // must be identical under every policy.
    {
        let d = Rc::clone(&d);
        let kv_oids = Rc::clone(&kv_oids);
        let arr_oids = Rc::clone(&arr_oids);
        let shared = Rc::clone(&shared);
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"sched-fuzz"))
                .await
                .expect("audit cont");
            let mut state = String::new();
            for &oid in kv_oids.iter() {
                let mut keys = client.kv_list_keys(&cont, oid).await.expect("audit list");
                keys.sort();
                for key in keys {
                    let v = client.kv_get(&cont, oid, &key).await.expect("audit get");
                    state.push_str(&format!("{:02x?}={:02x?};", &key[..], v.as_deref()));
                }
            }
            for &oid in arr_oids.iter() {
                let h = client.array_open(&cont, oid).await.expect("audit open");
                let size = client.array_size(&cont, &h).await.expect("audit size");
                state.push_str(&format!("size={size};"));
                client.array_close(&cont, h).await.expect("audit close");
            }
            *shared.state.borrow_mut() = state;
        });
    }
    let phase2 = sim.run();

    let outcomes = shared.outcomes.borrow().clone();
    let state = shared.state.borrow().clone();
    let bytes_read = *shared.bytes_read.borrow();
    let media_conserved = (0..d.spec.pool_targets()).all(|t| d.target(t).media.conservation_ok());
    Observation {
        outcomes,
        state,
        bytes_read,
        quiescent: phase1.stranded_tasks == 0 && phase2.stranded_tasks == 0,
        media_conserved,
    }
}

/// One confirmed schedule-invariance violation, with the shrunk repro.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    pub seed: u64,
    /// The schedule policy whose observation diverged (or panicked).
    pub policy: SchedPolicy,
    /// The admission policy the diverging run used.
    pub admission: AdmissionPolicy,
    /// What diverged, first difference only.
    pub detail: String,
    /// Shortest failing prefix of the generated program.
    pub minimized: FuzzProgram,
}

impl FuzzFailure {
    /// A paste-ready reproduction command.
    pub fn repro(&self) -> String {
        format!(
            "daosctl fuzz --seeds 1 --start {} --policy all  # {} op(s), {:?}, admission {}",
            self.seed,
            self.minimized.ops.len(),
            self.policy,
            self.admission.name()
        )
    }
}

/// One differential-roster slot: the kernel schedule policy the run is
/// perturbed with, and the deployment admission policy it enforces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RosterEntry {
    pub sched: SchedPolicy,
    pub admission: AdmissionPolicy,
}

/// The schedule-policy roster for one seed: FIFO (the reference) plus
/// LIFO, two random-pick streams and two wake-delay magnitudes, all
/// derived from the seed so reruns are byte-identical.
pub fn policy_roster(seed: u64) -> Vec<SchedPolicy> {
    vec![
        SchedPolicy::Fifo,
        SchedPolicy::Lifo,
        SchedPolicy::Random {
            seed: splitmix64(seed ^ 0xA5A5),
        },
        SchedPolicy::Random {
            seed: splitmix64(seed.rotate_left(17) | 1),
        },
        SchedPolicy::WakeDelay {
            seed: splitmix64(seed ^ 0x7777),
            max_delay_ns: 10_000,
        },
        SchedPolicy::WakeDelay {
            seed: splitmix64(seed ^ 0xDE1A),
            max_delay_ns: 1_000_000,
        },
    ]
}

/// The full differential roster for one seed: every schedule policy
/// with FIFO admission, plus one writer-priority admission slot (on the
/// FIFO schedule) — QoS enforcement reorders service queues and must
/// still be outcome-invariant.
pub fn roster(seed: u64) -> Vec<RosterEntry> {
    let mut entries: Vec<RosterEntry> = policy_roster(seed)
        .into_iter()
        .map(|sched| RosterEntry {
            sched,
            admission: AdmissionPolicy::Fifo,
        })
        .collect();
    entries.push(RosterEntry {
        sched: SchedPolicy::Fifo,
        admission: AdmissionPolicy::writer_priority(),
    });
    entries
}

fn run_caught(program: &FuzzProgram, entry: RosterEntry) -> Result<Observation, String> {
    catch_unwind(AssertUnwindSafe(|| run_program_with(program, entry))).map_err(|p| {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic".into());
        format!("panicked: {msg}")
    })
}

fn first_diff(reference: &Observation, got: &Observation) -> Option<String> {
    if !got.quiescent {
        return Some("run did not quiesce (stranded tasks: lost wakeup?)".into());
    }
    for (k, v) in &reference.outcomes {
        match got.outcomes.get(k) {
            None => return Some(format!("event {k} never completed (reference: {v})")),
            Some(w) if w != v => {
                return Some(format!("event {k}: reference {v} vs {w}"));
            }
            _ => {}
        }
    }
    if let Some(k) = got
        .outcomes
        .keys()
        .find(|k| !reference.outcomes.contains_key(*k))
    {
        return Some(format!("extra event {k} not in reference"));
    }
    if got.state != reference.state {
        return Some(format!(
            "final pool state diverged:\n  reference: {}\n  got:       {}",
            reference.state, got.state
        ));
    }
    if got.bytes_read != reference.bytes_read {
        return Some(format!(
            "read-byte conservation: reference {} vs {}",
            reference.bytes_read, got.bytes_read
        ));
    }
    None
}

/// Absolute (non-differential) invariants on a single observation:
/// quiescence, read-byte conservation, media tier byte conservation and
/// expected final array sizes.
fn check_invariants(program: &FuzzProgram, obs: &Observation) -> Option<String> {
    if !obs.quiescent {
        return Some("run did not quiesce (stranded tasks: lost wakeup?)".into());
    }
    if !obs.media_conserved {
        return Some(
            "media byte conservation: a target's tier occupancy diverged from \
             foreground + migrated bytes"
                .into(),
        );
    }
    if obs.bytes_read != program.expected_read_bytes() {
        return Some(format!(
            "read-byte conservation: expected {} got {}",
            program.expected_read_bytes(),
            obs.bytes_read
        ));
    }
    let expected = program.expected_array_sizes();
    for (i, want) in expected.iter().enumerate() {
        let marker = format!("size={want};");
        // The audit appends array sizes in order; verify each expected
        // size appears (cheap containment check on the canonical dump).
        if !obs.state.contains(&marker) {
            return Some(format!(
                "byte conservation: array {i} expected final size {want}, state: {}",
                obs.state
            ));
        }
    }
    None
}

/// Runs `program` under every roster entry and returns the first
/// divergence.
fn divergence(program: &FuzzProgram, entries: &[RosterEntry]) -> Option<(RosterEntry, String)> {
    let reference = match run_caught(program, entries[0]) {
        Ok(o) => o,
        Err(e) => return Some((entries[0], e)),
    };
    if let Some(d) = check_invariants(program, &reference) {
        return Some((entries[0], d));
    }
    for &entry in &entries[1..] {
        let got = match run_caught(program, entry) {
            Ok(o) => o,
            Err(e) => return Some((entry, e)),
        };
        if let Some(d) = check_invariants(program, &got) {
            return Some((entry, d));
        }
        if let Some(d) = first_diff(&reference, &got) {
            return Some((entry, d));
        }
    }
    None
}

/// Shrinks a failing program to the shortest failing prefix of its op
/// stream (binary search, with a final validity check — if the search
/// overshoots on a non-monotonic failure, the full program is kept).
fn minimize(program: &FuzzProgram, entries: &[RosterEntry]) -> FuzzProgram {
    let (mut lo, mut hi) = (0usize, program.ops.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if divergence(&program.with_prefix(mid), entries).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let candidate = program.with_prefix(hi);
    if divergence(&candidate, entries).is_some() {
        candidate
    } else {
        program.clone()
    }
}

/// Fuzzes one seed: generates the program, runs it under `entries`
/// (index 0 is the reference) and, on divergence, shrinks and reports.
pub fn fuzz_seed(seed: u64, entries: &[RosterEntry]) -> Result<(), Box<FuzzFailure>> {
    assert!(!entries.is_empty(), "need at least a reference entry");
    let program = generate_program(seed);
    match divergence(&program, entries) {
        None => Ok(()),
        Some((entry, detail)) => Err(Box::new(FuzzFailure {
            seed,
            policy: entry.sched,
            admission: entry.admission,
            detail,
            minimized: minimize(&program, entries),
        })),
    }
}

/// Summary of a corpus run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    pub seeds_run: usize,
    pub policies_per_seed: usize,
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs [`fuzz_seed`] over `seeds` with the per-seed [`roster`] filtered
/// through `select` on the schedule policy. The FIFO-schedule slots (the
/// reference and the writer-priority admission slot) survive every
/// filter. Failures are reported in seed order.
pub fn fuzz_corpus(
    seeds: impl IntoIterator<Item = u64>,
    select: impl Fn(&SchedPolicy) -> bool,
) -> FuzzReport {
    let mut report = FuzzReport::default();
    for seed in seeds {
        let entries: Vec<RosterEntry> = roster(seed)
            .into_iter()
            .filter(|e| matches!(e.sched, SchedPolicy::Fifo) || select(&e.sched))
            .collect();
        report.policies_per_seed = report.policies_per_seed.max(entries.len());
        report.seeds_run += 1;
        if let Err(f) = fuzz_seed(seed, &entries) {
            report.failures.push(*f);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_are_seed_deterministic() {
        let a = generate_program(42);
        let b = generate_program(42);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.faults.events().len(), b.faults.events().len());
        assert_ne!(generate_program(43).ops, a.ops, "seeds must differ");
    }

    #[test]
    fn observations_replay_bit_identically() {
        let program = generate_program(7);
        for policy in policy_roster(7) {
            let a = run_program(&program, policy);
            let b = run_program(&program, policy);
            assert_eq!(a, b, "{policy:?} replay diverged");
        }
    }

    #[test]
    fn small_corpus_is_schedule_invariant() {
        let report = fuzz_corpus(0..4, |_| true);
        assert_eq!(report.seeds_run, 4);
        assert_eq!(
            report.policies_per_seed,
            roster(0).len(),
            "the writer-priority admission slot must ride every corpus run"
        );
        for f in &report.failures {
            eprintln!("{}: {}\n  {}", f.seed, f.detail, f.repro());
        }
        assert!(report.ok(), "schedule-invariance violated");
    }

    #[test]
    fn tiered_runs_conserve_bytes_and_replay_identically() {
        // The two-tier deployment runs the same corpus with a 2 MiB SCM
        // buffer and live aggregation: every target's occupancy must
        // balance (foreground ± migrated = tier deltas), migration must
        // actually happen, and the observation must replay bit-identical.
        for seed in [1u64, 9] {
            let program = generate_program(seed);
            let entry = RosterEntry {
                sched: SchedPolicy::Fifo,
                admission: AdmissionPolicy::Fifo,
            };
            let a = run_program_tiered(&program, entry);
            assert!(a.quiescent, "seed {seed}: tiered run stranded tasks");
            assert!(a.media_conserved, "seed {seed}: tier bytes diverged");
            assert!(
                check_invariants(&program, &a).is_none(),
                "seed {seed}: {:?}",
                check_invariants(&program, &a)
            );
            let b = run_program_tiered(&program, entry);
            assert_eq!(a, b, "seed {seed}: tiered replay diverged");
        }
    }

    #[test]
    fn writer_priority_admission_is_outcome_invariant() {
        // Admission barging reorders service-queue grants, never
        // outcomes: the QoS-classified actors touch disjoint state, so
        // the observation must match the FIFO-admission reference
        // exactly, faults and retries included.
        for seed in [3u64, 11, 27] {
            let program = generate_program(seed);
            let reference = run_program(&program, SchedPolicy::Fifo);
            let barged = run_program_with(
                &program,
                RosterEntry {
                    sched: SchedPolicy::Fifo,
                    admission: AdmissionPolicy::writer_priority(),
                },
            );
            assert_eq!(
                reference, barged,
                "seed {seed}: admission changed an outcome"
            );
        }
    }

    #[test]
    fn roster_keeps_fifo_slots_under_every_family_filter() {
        for select in [
            family_is_lifo as fn(&SchedPolicy) -> bool,
            |_: &SchedPolicy| false,
        ] {
            let kept: Vec<RosterEntry> = roster(5)
                .into_iter()
                .filter(|e| matches!(e.sched, SchedPolicy::Fifo) || select(&e.sched))
                .collect();
            assert!(kept.len() >= 2, "reference + writer-priority slot");
            assert_eq!(kept[0].admission, AdmissionPolicy::Fifo);
            assert!(kept
                .iter()
                .any(|e| e.admission == AdmissionPolicy::writer_priority()));
        }
    }

    fn family_is_lifo(p: &SchedPolicy) -> bool {
        matches!(p, SchedPolicy::Lifo)
    }

    #[test]
    fn shrinking_finds_a_short_failing_prefix() {
        // Drive minimize() with a synthetic predicate failure: a program
        // whose 5th op is "bad" under a fake policy comparison is not
        // expressible without a real bug, so instead check the prefix
        // plumbing: truncation keeps global indices stable.
        let p = generate_program(9);
        let t = p.with_prefix(3);
        assert_eq!(t.ops[..], p.ops[..3]);
        assert_eq!(t.expected_array_sizes().len(), ARRAYS);
        assert!(t.expected_read_bytes() <= p.expected_read_bytes());
    }
}
