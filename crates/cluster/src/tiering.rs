//! Background SCM→NVMe aggregation (DESIGN.md §14).
//!
//! Production DAOS runs an *aggregation* service per target: once the
//! persistent-memory write buffer fills past a watermark, cold extents
//! are merged and migrated down to the NVMe capacity tier, freeing SCM
//! for fresh small writes. This module spawns that service as one
//! seed-deterministic kernel task per target.
//!
//! Each tick the task asks its target's [`TieredMedia`] for a migration
//! plan (watermark hysteresis lives in the media model); if there is
//! work it acquires the target's service queue at `AdmissionClass::
//! Normal` — behind foreground writers under writer-priority admission,
//! interleaved FIFO otherwise — sleeps through the SCM-read plus
//! NVMe-write media time, charges the target's busy accounting, and
//! commits the occupancy move. Migration traffic therefore contends
//! with foreground I/O for exactly the resources it would steal on real
//! hardware.
//!
//! The tasks are horizon-bounded: they stop ticking at `cfg.horizon` of
//! simulated time, so `run()` still quiesces. Per-target start phases
//! are staggered by a `splitmix64` stream off `cfg.seed`, which keeps
//! the schedule seed-deterministic while avoiding a thundering herd of
//! simultaneous migrations.

use std::rc::Rc;

use daosim_kernel::rng::splitmix64;
use daosim_kernel::sync::AdmissionClass;
use daosim_kernel::{SimDuration, SimTime};

use crate::deploy::Deployment;

/// Configuration of the per-target aggregation service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggregationConfig {
    /// Poll interval between migration opportunities.
    pub interval: SimDuration,
    /// Upper bound on bytes migrated per tick (one service-queue grant).
    pub chunk_bytes: u64,
    /// Simulated time at which the service stops ticking. Runs drive
    /// this past the workload's end so drains complete, while keeping
    /// the simulation quiescent-terminating.
    pub horizon: SimDuration,
    /// Seed for the per-target phase stagger.
    pub seed: u64,
}

impl AggregationConfig {
    /// Operational defaults: poll every 2 ms, migrate at most 256 KiB
    /// per grant (small enough that foreground writers never stall long
    /// behind a migration, large enough to outrun the fill rate of a
    /// saturated writer fleet).
    pub fn operational(horizon: SimDuration, seed: u64) -> Self {
        AggregationConfig {
            interval: SimDuration::from_millis(2),
            chunk_bytes: 256 * 1024,
            horizon,
            seed,
        }
    }
}

/// Spawns one aggregation task per pool target. Call after
/// [`Deployment::new`] and before `sim.run()`; the tasks exit on their
/// own at `cfg.horizon`.
pub fn spawn_aggregation(d: &Rc<Deployment>, cfg: AggregationConfig) {
    let end = SimTime::ZERO + cfg.horizon;
    for t in 0..d.spec.pool_targets() {
        let d = d.clone();
        let phase = SimDuration::from_nanos(
            splitmix64(cfg.seed ^ t as u64) % cfg.interval.as_nanos().max(1),
        );
        d.sim.clone().spawn(async move {
            d.sim.sleep(phase).await;
            loop {
                if d.sim.now() >= end {
                    return;
                }
                d.sim.sleep(cfg.interval).await;
                let target = d.target(t);
                let Some(step) = target.media.plan_aggregation(cfg.chunk_bytes) else {
                    continue;
                };
                let q = d.sim.span_leaf("media", "agg-queue");
                let _p = target.sem.acquire_one(AdmissionClass::Normal).await;
                q.end();
                let _s = d.sim.span_leaf("media", "agg-migrate");
                // The migration pays the SCM read and the NVMe write on
                // this target's bandwidth shares, back to back, holding
                // the service queue the whole time.
                let dur = step.scm_read.saturating_add(step.nvme_write);
                d.sim.sleep(dur).await;
                target.charge_busy(dur.as_nanos());
                target.media.commit_aggregation(step.bytes);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::ClusterSpec;
    use daosim_media::{NvmeSpec, ScmSpec, TierPolicy};

    /// A tiny tiered cluster: 2 targets, 64 KiB of SCM per socket.
    fn tiered_spec() -> ClusterSpec {
        let mut spec = ClusterSpec::tcp(1, 1);
        spec.targets_per_engine = 1;
        spec.calibration.scm = ScmSpec {
            capacity: 64 * 1024,
            ..ScmSpec::optane_gen1()
        };
        spec.tiering = TierPolicy {
            nvme: Some(NvmeSpec::p4510_gen1()),
            scm_threshold: 1 << 20,
            ..TierPolicy::tiered()
        };
        spec
    }

    #[test]
    fn aggregation_drains_scm_below_low_watermark() {
        let sim = daosim_kernel::Sim::new();
        let d = Deployment::new(&sim, tiered_spec());
        // Fill target 0's SCM past the 75% high mark (48 KiB of 64 KiB).
        d.target(0).media.charge_write(56 * 1024).unwrap();
        assert!(d.target(0).media.needs_aggregation());
        spawn_aggregation(
            &d,
            AggregationConfig::operational(SimDuration::from_secs(1), 7),
        );
        sim.run().expect_quiescent();
        let m = &d.target(0).media;
        assert!(
            m.scm_used() <= 32 * 1024,
            "scm_used {} still above the low mark",
            m.scm_used()
        );
        assert!(m.aggregated_bytes() > 0);
        assert_eq!(m.nvme_used(), m.tier_counts().aggregated_in);
        assert!(m.conservation_ok());
    }

    #[test]
    fn aggregation_idles_below_high_watermark() {
        let sim = daosim_kernel::Sim::new();
        let d = Deployment::new(&sim, tiered_spec());
        d.target(0).media.charge_write(16 * 1024).unwrap();
        spawn_aggregation(
            &d,
            AggregationConfig::operational(SimDuration::from_millis(50), 7),
        );
        sim.run().expect_quiescent();
        assert_eq!(d.target(0).media.aggregated_bytes(), 0);
        assert_eq!(d.target(0).media.scm_used(), 16 * 1024);
    }

    #[test]
    fn aggregation_is_seed_deterministic() {
        let run = || {
            let sim = daosim_kernel::Sim::new();
            let d = Deployment::new(&sim, tiered_spec());
            d.target(0).media.charge_write(60 * 1024).unwrap();
            d.target(1).media.charge_write(50 * 1024).unwrap();
            spawn_aggregation(
                &d,
                AggregationConfig::operational(SimDuration::from_secs(1), 42),
            );
            sim.run().expect_quiescent();
            (
                sim.now(),
                d.target(0).media.tier_counts(),
                d.target(1).media.tier_counts(),
            )
        };
        assert_eq!(run(), run());
    }
}
