//! Fault injection and client resilience policy.
//!
//! A [`FaultPlan`] is a deterministic campaign of engine-level faults —
//! crashes (optionally followed by a rebuild), restarts, transient
//! brownouts, and NIC/link degradation windows — scheduled at simulated
//! times against a [`Deployment`]. Campaigns can be authored explicitly
//! with the builder methods or generated reproducibly from a seed with
//! [`FaultPlan::random_campaign`] (driven by the kernel's `splitmix64`,
//! so a given seed always yields the same campaign).
//!
//! [`RetryPolicy`] is the client-side complement: when enabled on
//! [`crate::ClusterSpec::retry`], every engine-touching `SimClient`
//! operation runs under a per-attempt deadline and retries transient
//! failures (engine unavailable, timeout) with exponential backoff and
//! deterministic jitter, re-consulting the pool map on each attempt so a
//! rebuild-installed remap is picked up automatically (failover).
//! Retry/timeout/failover counts accumulate in the deployment's
//! [`ResilienceStats`].

use std::rc::Rc;

use daosim_kernel::rng::splitmix64;
use daosim_kernel::{Counter, MetricsRegistry, SimDuration};
use daosim_net::Endpoint;

use crate::deploy::Deployment;
use crate::rebuild::rebuild_engine;

/// Client-side retry/deadline policy, carried on
/// [`crate::ClusterSpec::retry`]. The default (`RetryPolicy::builder().build()`)
/// preserves fail-fast semantics: one attempt, no deadline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = fail fast, no retries).
    pub max_attempts: u32,
    /// First backoff; doubles per retry (exponential).
    pub base_backoff: SimDuration,
    /// Ceiling on a single backoff interval.
    pub max_backoff: SimDuration,
    /// Deadline for a single attempt; `ZERO` disables the timeout.
    pub attempt_timeout: SimDuration,
    /// Overall deadline across all attempts of one operation (checked
    /// between attempts); `ZERO` disables it.
    pub op_deadline: SimDuration,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
}

impl RetryPolicy {
    /// Starts a builder at the fail-fast defaults (one attempt, no
    /// deadlines); `RetryPolicy::builder().build()` is the default
    /// policy, and [`RetryPolicyBuilder::operational`] loads the drill
    /// preset as a starting point.
    pub fn builder() -> RetryPolicyBuilder {
        RetryPolicyBuilder {
            policy: RetryPolicy {
                max_attempts: 1,
                base_backoff: SimDuration::ZERO,
                max_backoff: SimDuration::ZERO,
                attempt_timeout: SimDuration::ZERO,
                op_deadline: SimDuration::ZERO,
                seed: 0,
            },
        }
    }

    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff before retry number `attempt` (1-based): exponential with
    /// deterministic jitter in `[0, interval/2)`, derived from the policy
    /// seed and the caller-supplied salt (endpoint + time + attempt), so
    /// identical runs back off identically while distinct clients spread.
    pub fn backoff_delay(&self, attempt: u32, salt: u64) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(16);
        let base = self
            .base_backoff
            .as_nanos()
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff.as_nanos());
        if base == 0 {
            return SimDuration::ZERO;
        }
        let jitter = splitmix64(self.seed ^ salt) % (base / 2).max(1);
        SimDuration::from_nanos(base + jitter)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::builder().build()
    }
}

/// Builder for [`RetryPolicy`]. Starts fail-fast; each setter overrides
/// one knob, and [`operational`](Self::operational) loads the drill
/// preset wholesale (setters applied after it still win).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicyBuilder {
    policy: RetryPolicy,
}

impl RetryPolicyBuilder {
    /// Loads the operational (time-critical window) drill preset: enough
    /// backoff budget (~0.8 s cumulative) to ride out sub-second
    /// brownouts and a kill→rebuild gap, with generous per-attempt and
    /// overall deadlines so slow-but-progressing I/O is never cut short.
    pub fn operational(mut self) -> Self {
        self.policy = RetryPolicy {
            max_attempts: 12,
            base_backoff: SimDuration::from_millis(1),
            max_backoff: SimDuration::from_millis(200),
            attempt_timeout: SimDuration::from_secs(5),
            op_deadline: SimDuration::from_secs(60),
            seed: 0x5EED_CAFE,
        };
        self
    }

    /// Total attempts per operation (1 = fail fast, no retries).
    pub fn max_attempts(mut self, n: u32) -> Self {
        self.policy.max_attempts = n;
        self
    }

    /// First backoff; doubles per retry.
    pub fn base_backoff(mut self, d: SimDuration) -> Self {
        self.policy.base_backoff = d;
        self
    }

    /// Ceiling on a single backoff interval.
    pub fn max_backoff(mut self, d: SimDuration) -> Self {
        self.policy.max_backoff = d;
        self
    }

    /// Deadline for a single attempt; `ZERO` disables the timeout.
    pub fn attempt_timeout(mut self, d: SimDuration) -> Self {
        self.policy.attempt_timeout = d;
        self
    }

    /// Overall deadline across all attempts; `ZERO` disables it.
    pub fn op_deadline(mut self, d: SimDuration) -> Self {
        self.policy.op_deadline = d;
        self
    }

    /// Seed for deterministic backoff jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.policy.seed = seed;
        self
    }

    pub fn build(self) -> RetryPolicy {
        self.policy
    }
}

/// Mixes an endpoint and attempt number into a jitter salt.
pub(crate) fn jitter_salt(ep: Endpoint, now_ns: u64, attempt: u32) -> u64 {
    ((ep.node as u64) << 40) ^ ((ep.socket as u64) << 32) ^ now_ns ^ attempt as u64
}

/// Live resilience counters on a [`Deployment`]: named counters in the
/// world's metrics registry (`resilience.*`), so fault-campaign telemetry
/// shows up in metric snapshots alongside everything else. The `note_*`
/// bumps stay cheap `Cell` increments through the cached handles;
/// snapshot via [`ResilienceStats::report`].
pub struct ResilienceStats {
    retries: Counter,
    timeouts: Counter,
    failovers: Counter,
    gave_up: Counter,
    faults_injected: Counter,
}

impl ResilienceStats {
    /// Registers the `resilience.*` counters in `metrics`.
    pub fn new(metrics: &MetricsRegistry) -> Self {
        ResilienceStats {
            retries: metrics.counter("resilience.retries"),
            timeouts: metrics.counter("resilience.timeouts"),
            failovers: metrics.counter("resilience.failovers"),
            gave_up: metrics.counter("resilience.gave_up"),
            faults_injected: metrics.counter("resilience.faults_injected"),
        }
    }

    pub fn note_retry(&self) {
        self.retries.inc();
    }
    pub fn note_timeout(&self) {
        self.timeouts.inc();
    }
    pub fn note_failover(&self) {
        self.failovers.inc();
    }
    pub fn note_gave_up(&self) {
        self.gave_up.inc();
    }
    pub fn note_fault(&self) {
        self.faults_injected.inc();
    }

    pub fn report(&self) -> ResilienceReport {
        ResilienceReport {
            retries: self.retries.get(),
            timeouts: self.timeouts.get(),
            failovers: self.failovers.get(),
            gave_up: self.gave_up.get(),
            faults_injected: self.faults_injected.get(),
        }
    }
}

/// Point-in-time snapshot of [`ResilienceStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Transient-error retries performed by clients.
    pub retries: u64,
    /// Attempts cut short by the per-attempt deadline.
    pub timeouts: u64,
    /// Operations that succeeded after seeing `EngineUnavailable`.
    pub failovers: u64,
    /// Operations that exhausted their retry budget.
    pub gave_up: u64,
    /// Fault events injected by campaigns.
    pub faults_injected: u64,
}

/// One scheduled fault. Times are offsets from the instant
/// [`FaultPlan::apply`] is called (normally t=0).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Engine crash; with `rebuild`, a rebuild pass runs immediately
    /// after (pool-map remaps + data movement, in simulated time).
    Kill {
        at: SimDuration,
        engine: u32,
        rebuild: bool,
    },
    /// Engine restart (revive). Note: remaps installed by an earlier
    /// rebuild stay in place — reintegration is not modelled, so the
    /// restarted engine serves only newly placed objects.
    Restart { at: SimDuration, engine: u32 },
    /// Engine unresponsive for `duration`, then recovers by itself.
    Brownout {
        at: SimDuration,
        engine: u32,
        duration: SimDuration,
    },
    /// Engine NIC/stack capacity scaled by `factor` for `duration`.
    DegradeNic {
        at: SimDuration,
        engine: u32,
        factor: f64,
        duration: SimDuration,
    },
}

impl FaultEvent {
    pub fn at(&self) -> SimDuration {
        match *self {
            FaultEvent::Kill { at, .. }
            | FaultEvent::Restart { at, .. }
            | FaultEvent::Brownout { at, .. }
            | FaultEvent::DegradeNic { at, .. } => at,
        }
    }
}

/// A deterministic campaign of [`FaultEvent`]s.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    pub fn kill(mut self, at: SimDuration, engine: u32) -> Self {
        self.events.push(FaultEvent::Kill {
            at,
            engine,
            rebuild: false,
        });
        self
    }

    pub fn kill_and_rebuild(mut self, at: SimDuration, engine: u32) -> Self {
        self.events.push(FaultEvent::Kill {
            at,
            engine,
            rebuild: true,
        });
        self
    }

    pub fn restart(mut self, at: SimDuration, engine: u32) -> Self {
        self.events.push(FaultEvent::Restart { at, engine });
        self
    }

    pub fn brownout(mut self, at: SimDuration, engine: u32, duration: SimDuration) -> Self {
        self.events.push(FaultEvent::Brownout {
            at,
            engine,
            duration,
        });
        self
    }

    pub fn degrade_nic(
        mut self,
        at: SimDuration,
        engine: u32,
        factor: f64,
        duration: SimDuration,
    ) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degradation factor must be in (0, 1]"
        );
        self.events.push(FaultEvent::DegradeNic {
            at,
            engine,
            factor,
            duration,
        });
        self
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A reproducible campaign over `horizon`: a handful of brownouts and
    /// NIC degradations spread across engines, derived entirely from
    /// `seed` via `splitmix64` (same seed → same campaign, bit for bit).
    pub fn random_campaign(seed: u64, engines: u32, horizon: SimDuration) -> Self {
        assert!(engines > 0, "campaign needs at least one engine");
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(state)
        };
        let span = horizon.as_nanos().max(1);
        let mut plan = FaultPlan::new();
        let brownouts = 2 + (next() % 3) as usize;
        for _ in 0..brownouts {
            let at = SimDuration::from_nanos(next() % span);
            let engine = (next() % engines as u64) as u32;
            let duration = SimDuration::from_millis(20 + next() % 180);
            plan = plan.brownout(at, engine, duration);
        }
        let degradations = 1 + (next() % 2) as usize;
        for _ in 0..degradations {
            let at = SimDuration::from_nanos(next() % span);
            let engine = (next() % engines as u64) as u32;
            let factor = 0.25 + (next() % 50) as f64 / 100.0;
            let duration = SimDuration::from_millis(50 + next() % 450);
            plan = plan.degrade_nic(at, engine, factor, duration);
        }
        plan
    }

    /// Failure-detection lag between an engine crash and the start of its
    /// rebuild (SWIM-style detection plus pool-map update propagation).
    /// During this window the dead engine is still in the pool map, so
    /// clients see `EngineUnavailable` and retry — exactly the gap the
    /// retry policy exists to ride out.
    pub const REBUILD_DETECTION_DELAY: SimDuration = SimDuration::from_millis(20);

    /// Spawns the campaign orchestrator on the deployment's simulation:
    /// events fire in time order at their offsets from "now". A kill with
    /// `rebuild` awaits the rebuild inline after
    /// [`Self::REBUILD_DETECTION_DELAY`] (subsequent events wait for it,
    /// as an operator-driven recovery would); brownout and NIC recoveries
    /// are scheduled independently so windows can overlap later events.
    pub fn apply(&self, d: &Rc<Deployment>) {
        if self.events.is_empty() {
            return;
        }
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.at());
        let d = Rc::clone(d);
        let sim = d.sim.clone();
        let start = sim.now();
        sim.clone().spawn(async move {
            for ev in events {
                let due = start + ev.at();
                let now = sim.now();
                if due > now {
                    sim.sleep(due - now).await;
                }
                d.resilience().note_fault();
                if sim.trace_enabled() {
                    let name = match ev {
                        FaultEvent::Kill { engine, .. } => format!("kill e{engine}"),
                        FaultEvent::Restart { engine, .. } => format!("restart e{engine}"),
                        FaultEvent::Brownout { engine, .. } => format!("brownout e{engine}"),
                        FaultEvent::DegradeNic { engine, .. } => {
                            format!("degrade-nic e{engine}")
                        }
                    };
                    sim.obs().instant("fault", &name);
                }
                match ev {
                    FaultEvent::Kill {
                        engine, rebuild, ..
                    } => {
                        d.kill_engine(engine);
                        if rebuild {
                            sim.sleep(Self::REBUILD_DETECTION_DELAY).await;
                            rebuild_engine(&d, engine)
                                .await
                                .expect("campaign rebuild of a just-killed engine");
                        }
                    }
                    FaultEvent::Restart { engine, .. } => d.revive_engine(engine),
                    FaultEvent::Brownout {
                        engine, duration, ..
                    } => {
                        d.brownout_engine(engine);
                        let d2 = Rc::clone(&d);
                        sim.schedule_after(duration, move || d2.clear_brownout(engine));
                    }
                    FaultEvent::DegradeNic {
                        engine,
                        factor,
                        duration,
                        ..
                    } => {
                        d.degrade_engine_nic(engine, factor);
                        let d2 = Rc::clone(&d);
                        sim.schedule_after(duration, move || d2.restore_engine_nic(engine));
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::ClusterSpec;
    use daosim_kernel::Sim;

    #[test]
    fn random_campaign_is_deterministic() {
        let a = FaultPlan::random_campaign(42, 4, SimDuration::from_secs(2));
        let b = FaultPlan::random_campaign(42, 4, SimDuration::from_secs(2));
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::random_campaign(43, 4, SimDuration::from_secs(2));
        assert_ne!(a.events(), c.events());
        assert!(!a.is_empty());
    }

    #[test]
    fn builder_presets_pin_their_shapes() {
        // The bare builder is the fail-fast default policy.
        let fail_fast = RetryPolicy::builder().build();
        assert_eq!(fail_fast, RetryPolicy::default());
        assert_eq!(fail_fast.max_attempts, 1);
        assert!(!fail_fast.enabled());
        // The operational preset actually retries, with bounded backoff.
        let oper = RetryPolicy::builder().operational().build();
        assert!(oper.enabled());
        assert!(oper.max_attempts > 1);
        assert!(oper.base_backoff > SimDuration::ZERO);
        assert!(oper.max_backoff >= oper.base_backoff);
        // Setters applied after a preset still win.
        let p = RetryPolicy::builder().operational().max_attempts(3).build();
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.seed, 0x5EED_CAFE);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::builder().operational().build();
        let d1 = p.backoff_delay(1, 7);
        let d4 = p.backoff_delay(4, 7);
        assert!(d4 > d1, "{d1:?} !< {d4:?}");
        // 1.5x headroom: interval + up-to-half jitter.
        let cap_ns = p.max_backoff.as_nanos() * 3 / 2;
        for n in 1..=20 {
            assert!(p.backoff_delay(n, 7).as_nanos() <= cap_ns);
        }
        // Deterministic for a fixed (attempt, salt).
        assert_eq!(p.backoff_delay(3, 11), p.backoff_delay(3, 11));
    }

    #[test]
    fn brownout_window_clears_itself() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        let plan = FaultPlan::new().brownout(
            SimDuration::from_millis(10),
            0,
            SimDuration::from_millis(30),
        );
        plan.apply(&d);
        {
            let d = Rc::clone(&d);
            let sim2 = sim.clone();
            sim.spawn(async move {
                assert!(d.engines[0].is_alive());
                sim2.sleep(SimDuration::from_millis(15)).await;
                assert!(!d.engines[0].is_alive(), "browned out at t=10ms");
                assert!(d.engines[0].is_browned_out());
                sim2.sleep(SimDuration::from_millis(30)).await;
                assert!(d.engines[0].is_alive(), "recovered at t=40ms");
            });
        }
        sim.run().expect_quiescent();
        assert_eq!(d.resilience().report().faults_injected, 1);
    }

    #[test]
    fn nic_degradation_window_restores_capacity() {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
        let net = d.fabric.net().clone();
        let rx = d.engines[0].rx_stack;
        let nominal = net.link_capacity(rx);
        let plan = FaultPlan::new().degrade_nic(
            SimDuration::from_millis(5),
            0,
            0.5,
            SimDuration::from_millis(20),
        );
        plan.apply(&d);
        {
            let sim2 = sim.clone();
            let net = net.clone();
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(10)).await;
                assert!((net.link_capacity(rx) - nominal * 0.5).abs() < 1e-9);
                sim2.sleep(SimDuration::from_millis(20)).await;
                assert!((net.link_capacity(rx) - nominal).abs() < 1e-9);
            });
        }
        sim.run().expect_quiescent();
    }
}
