//! Calibration constants for the NEXTGenIO performance model.
//!
//! Every modelled cost lives here so the whole calibration is auditable in
//! one place. Values are fitted to the paper's own measurements:
//!
//! * Table 2 anchors the raw provider profiles (in `daosim-net`).
//! * Table 1 anchors the per-engine software-stack capacities: a DAOS
//!   engine ingests ~3 GiB/s over TCP (write path is receive-dominated)
//!   and serves ~7.7 GiB/s of reads from one adapter; a client socket
//!   absorbs ~3.9 GiB/s of DAOS read traffic.
//! * Fig. 3's per-engine scaling rates (≈2.5 GiB/s write, ≈3.75 GiB/s
//!   read) fix the multi-server host-efficiency factor, standing in for
//!   the cross-rail interface contention the authors describe.
//! * Fig. 4/5 fix the Key-Value update serialization cost and the
//!   container-table cost (the paper's *unexplained* container-mode
//!   slowdown — "further work will be necessary to investigate the cause"
//!   — reproduced here as a per-RPC handle-validation cost growing with
//!   the number of containers in the pool, saturating at `cap`).

use daosim_kernel::SimDuration;
use daosim_media::ScmSpec;

/// All tunable constants of the DAOS service model.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Engine-side ingest (TCP receive + checksum + VOS submit), GiB/s
    /// per engine.
    pub engine_rx_gib: f64,
    /// Engine-side egress (read service + TCP send), GiB/s per engine.
    pub engine_tx_gib: f64,
    /// Client-socket-side absorb rate for DAOS read traffic, GiB/s.
    pub client_rx_gib: f64,
    /// Client-socket-side produce rate for DAOS write traffic, GiB/s.
    pub client_tx_gib: f64,
    /// Host-link efficiency when more than one server node is deployed
    /// (cross-rail/interface contention surrogate; see Fig. 3 discussion).
    pub multi_server_host_efficiency: f64,
    /// Multiplier on every software-stack capacity when the PSM2 (RDMA)
    /// provider is used: zero-copy receive removes most per-byte CPU cost
    /// (Fig. 7: PSM2 delivers 10-25% more than TCP).
    pub psm2_stack_gain: f64,

    /// Target service time for one Key-Value operation.
    pub kv_op_cost: SimDuration,
    /// Extra serialization held on the object's update lock per KV update
    /// (DTX-leader/conflict-retry surrogate; what shared-index contention
    /// binds on, and what the object-size sweep of Fig. 6 amortises).
    pub kv_update_serial_cost: SimDuration,
    /// Serialization held on the object's lock per KV fetch (leader-side
    /// consistency check under conflicting access).
    pub kv_fetch_serial_cost: SimDuration,
    /// Approximate wire size of an index entry (key + object reference).
    pub kv_entry_bytes: u64,

    /// Target service time to create an Array object (metadata insert).
    pub array_create_cost: SimDuration,
    /// Target service time to open an Array object (metadata fetch).
    pub array_open_cost: SimDuration,
    /// Client-local cost of closing an object handle.
    pub array_close_cost: SimDuration,
    /// Per-RPC CPU cost at a target (dispatch, checksums).
    pub rpc_cpu_cost: SimDuration,
    /// Engine-serial dispatch cost per bulk shard RPC — what makes very
    /// wide striping (SX) pay per-stripe overheads on small objects.
    pub shard_dispatch_cost: SimDuration,

    /// Pool-metadata-service time to create a container.
    pub cont_create_cost: SimDuration,
    /// Pool-metadata-service time to open a container.
    pub cont_open_cost: SimDuration,
    /// Per-RPC engine-serial handle-validation cost, per container in the
    /// pool (the reproduced container-mode artifact) ...
    pub cont_table_cost_per_cont: SimDuration,
    /// ... saturating at this cap.
    pub cont_table_cost_cap: SimDuration,

    /// Client-side XOR reconstruction throughput for degraded EC reads,
    /// GiB/s.
    pub ec_reconstruct_gib: f64,

    /// SCM media model per socket.
    pub scm: ScmSpec,
}

impl Calibration {
    /// The NEXTGenIO fit used for every headline experiment.
    pub fn nextgenio() -> Self {
        Calibration {
            engine_rx_gib: 2.9,
            engine_tx_gib: 7.8,
            client_rx_gib: 3.9,
            client_tx_gib: 9.0,
            multi_server_host_efficiency: 0.8,
            psm2_stack_gain: 1.2,
            kv_op_cost: SimDuration::from_micros(20),
            kv_update_serial_cost: SimDuration::from_micros(150),
            kv_fetch_serial_cost: SimDuration::from_micros(60),
            kv_entry_bytes: 128,
            array_create_cost: SimDuration::from_micros(25),
            array_open_cost: SimDuration::from_micros(20),
            array_close_cost: SimDuration::from_micros(5),
            rpc_cpu_cost: SimDuration::from_micros(10),
            shard_dispatch_cost: SimDuration::from_micros(25),
            cont_create_cost: SimDuration::from_micros(150),
            cont_open_cost: SimDuration::from_micros(100),
            cont_table_cost_per_cont: SimDuration::from_nanos(1_500),
            cont_table_cost_cap: SimDuration::from_micros(300),
            ec_reconstruct_gib: 8.0,
            scm: ScmSpec::optane_gen1(),
        }
    }

    /// Engine-serial per-RPC cost as a function of the pool's container
    /// count: `min(cap, per_cont * n)`.
    pub fn cont_table_cost(&self, containers: usize) -> SimDuration {
        let scaled = SimDuration::from_nanos(
            self.cont_table_cost_per_cont
                .as_nanos()
                .saturating_mul(containers as u64),
        );
        scaled.min(self.cont_table_cost_cap)
    }

    /// An idealised variant with every software overhead zeroed — used by
    /// ablation benches to show which constants are load-bearing.
    pub fn frictionless() -> Self {
        let zero = SimDuration::ZERO;
        Calibration {
            engine_rx_gib: 1e6,
            engine_tx_gib: 1e6,
            client_rx_gib: 1e6,
            client_tx_gib: 1e6,
            multi_server_host_efficiency: 1.0,
            psm2_stack_gain: 1.0,
            kv_op_cost: zero,
            kv_update_serial_cost: zero,
            kv_fetch_serial_cost: zero,
            kv_entry_bytes: 128,
            array_create_cost: zero,
            array_open_cost: zero,
            array_close_cost: zero,
            rpc_cpu_cost: zero,
            shard_dispatch_cost: zero,
            cont_create_cost: zero,
            cont_open_cost: zero,
            cont_table_cost_per_cont: zero,
            cont_table_cost_cap: zero,
            ec_reconstruct_gib: 1e6,
            scm: ScmSpec::optane_gen1(),
        }
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Self::nextgenio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cont_table_cost_scales_then_saturates() {
        let c = Calibration::nextgenio();
        assert_eq!(c.cont_table_cost(0), SimDuration::ZERO);
        assert_eq!(c.cont_table_cost(10).as_nanos(), 15_000);
        assert_eq!(c.cont_table_cost(10_000), c.cont_table_cost_cap);
    }

    #[test]
    fn frictionless_has_no_software_costs() {
        let c = Calibration::frictionless();
        assert_eq!(c.kv_op_cost, SimDuration::ZERO);
        assert_eq!(c.cont_table_cost(1_000_000), SimDuration::ZERO);
    }
}
