//! ENOSPC is permanent and typed: a pool driven to full always yields
//! `DaosError::NoSpace` — never a panic, and never a transient-retry
//! spin — through both the embedded client (object-store capacity
//! accounting) and the simulated client (tiered-media occupancy).

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use daosim_cluster::{ClusterSpec, Deployment, ScmSpec, SimClient};
use daosim_kernel::Sim;
use daosim_objstore::prelude::{DaosApi, DaosError, EmbeddedClient, ObjectClass, Oid, Uuid};
use daosim_objstore::DaosStore;
use proptest::prelude::*;

/// The embedded backend never actually suspends; poll once.
fn block_on<F: std::future::Future>(fut: F) -> F::Output {
    let waker = std::task::Waker::noop();
    let mut cx = std::task::Context::from_waker(waker);
    let mut fut = std::pin::pin!(fut);
    match fut.as_mut().poll(&mut cx) {
        std::task::Poll::Ready(v) => v,
        std::task::Poll::Pending => panic!("embedded backend suspended"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Embedded client: filling an arbitrary tiny pool with arbitrary
    /// chunk sizes always ends in `NoSpace`, the error is permanent
    /// (no retry classification), and the pool stays full.
    #[test]
    fn embedded_full_pool_always_reports_no_space(
        capacity_kib in 1u64..32,
        chunk in 1usize..4096,
    ) {
        let store = DaosStore::new();
        let pool = store
            .pool_create(Uuid::from_name(b"tiny"), 4, capacity_kib * 1024)
            .unwrap();
        let client = EmbeddedClient::new(pool);
        let errors = block_on(async {
            let cont = client.cont_open_or_create(Uuid::from_name(b"c")).await.unwrap();
            let oid = Oid::generate(1, 1, ObjectClass::S1);
            let h = client.array_create(&cont, oid).await.unwrap();
            let mut off = 0u64;
            let mut errors = Vec::new();
            // Enough fresh extent bytes to overshoot any capacity drawn
            // above, plus two post-full probes.
            let rounds = (capacity_kib * 1024) as usize / chunk + 3;
            for _ in 0..rounds {
                match client
                    .array_write(&cont, &h, off, Bytes::from(vec![7u8; chunk]))
                    .await
                {
                    Ok(()) => off += chunk as u64,
                    Err(e) => errors.push(e),
                }
            }
            errors
        });
        prop_assert!(
            !errors.is_empty(),
            "a {capacity_kib} KiB pool never filled on {chunk}-byte writes"
        );
        for e in &errors {
            prop_assert_eq!(e, &DaosError::NoSpace, "full pool must say NoSpace");
            prop_assert!(!e.is_transient(), "NoSpace must be permanent, not retried");
        }
    }

    /// Simulated client: a deployment whose SCM write buffer is shrunk
    /// to a sliver (no NVMe tier to spill into) serves writes until the
    /// media is full, then fails each one with `NoSpace`. The run must
    /// go quiescent — a transient classification would send the retry
    /// layer spinning and strand the clients.
    #[test]
    fn simulated_full_pool_always_reports_no_space(
        writers in 1u32..4,
        chunk_kib in 1u64..32,
        seed in 0u32..1000,
    ) {
        let sim = Sim::new();
        let mut spec = ClusterSpec::tcp(1, 1);
        spec.targets_per_engine = 2;
        // 64 KiB of SCM per socket = 32 KiB per target, scm-only: once
        // every target slice is full there is nowhere left to write.
        spec.calibration.scm = ScmSpec {
            capacity: 64 * 1024,
            ..spec.calibration.scm
        };
        let pool_capacity = 2 * 64 * 1024u64;
        let d = Deployment::new(&sim, spec);
        let errors: Rc<RefCell<Vec<DaosError>>> = Rc::default();
        let chunk = (chunk_kib * 1024) as usize;
        // Overshoot the pool's total capacity from each writer, so the
        // full condition is reached no matter how shards spread.
        let rounds = (pool_capacity / chunk as u64 + 2) as u32;
        for w in 0..writers {
            let d = Rc::clone(&d);
            let errors = Rc::clone(&errors);
            sim.spawn(async move {
                let client = SimClient::for_process(&d, 0, w);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"enospc"))
                    .await
                    .unwrap();
                let oid = Oid::generate(seed + w + 1, 1, ObjectClass::S2);
                let h = match client.array_open_or_create(&cont, oid).await {
                    Ok(h) => h,
                    Err(e) => {
                        errors.borrow_mut().push(e);
                        return;
                    }
                };
                let mut off = 0u64;
                for _ in 0..rounds {
                    match client
                        .array_write(&cont, &h, off, Bytes::from(vec![w as u8; chunk]))
                        .await
                    {
                        Ok(()) => off += chunk as u64,
                        Err(e) => errors.borrow_mut().push(e),
                    }
                }
            });
        }
        let out = sim.run();
        prop_assert_eq!(
            out.stranded_tasks, 0,
            "a full pool stranded clients (retry spin?)"
        );
        let errors = errors.borrow();
        prop_assert!(
            !errors.is_empty(),
            "{writers} writer(s) x {rounds} x {chunk} bytes never filled 128 KiB of SCM"
        );
        for e in errors.iter() {
            prop_assert_eq!(e, &DaosError::NoSpace, "full media must say NoSpace");
            prop_assert!(!e.is_transient(), "NoSpace must be permanent, not retried");
        }
    }
}
