//! Behavioural properties of the cluster performance model.

use std::cell::Cell;
use std::rc::Rc;

use bytes::Bytes;
use daosim_cluster::{ClusterSpec, Deployment, SimClient};
use daosim_kernel::Sim;
use daosim_net::{ProviderProfile, GIB};
use daosim_objstore::prelude::{DaosApi, ObjectClass, Oid, OidAllocator, Uuid};

const MIB: u64 = 1024 * 1024;

/// Runs `procs` parallel writers, each writing `ops` arrays of `mib` MiB
/// with class `class`; returns aggregate write bandwidth (GiB/s).
fn write_workload(spec: ClusterSpec, procs: u32, ops: u32, mib: u64, class: ObjectClass) -> f64 {
    let sim = Sim::new();
    let d = Deployment::new(&sim, spec);
    let payload = Bytes::from(vec![5u8; (mib * MIB) as usize]);
    let ppn = procs / spec.client_nodes as u32;
    assert!(ppn > 0);
    for p in 0..procs {
        let (d, payload) = (Rc::clone(&d), payload.clone());
        sim.spawn(async move {
            let client = SimClient::for_process(&d, (p / ppn) as u16, p % ppn);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"w"))
                .await
                .unwrap();
            let mut alloc = OidAllocator::new(p + 1);
            for _ in 0..ops {
                let oid = alloc.next(class);
                let h = client.array_create(&cont, oid).await.unwrap();
                client
                    .array_write(&cont, &h, 0, payload.clone())
                    .await
                    .unwrap();
                client.array_close(&cont, h).await.unwrap();
            }
        });
    }
    let end = sim.run().expect_quiescent();
    (procs as u64 * ops as u64 * mib * MIB) as f64 / GIB / end.as_secs_f64()
}

#[test]
fn psm2_outperforms_tcp_on_the_same_workload() {
    let mut tcp = ClusterSpec::psm2(2, 2);
    tcp.provider = ProviderProfile::tcp();
    let psm2 = ClusterSpec::psm2(2, 2);
    let bw_tcp = write_workload(tcp, 16, 8, 1, ObjectClass::S1);
    let bw_psm2 = write_workload(psm2, 16, 8, 1, ObjectClass::S1);
    assert!(
        bw_psm2 > bw_tcp * 1.05,
        "psm2 {bw_psm2:.2} should beat tcp {bw_tcp:.2} by >5%"
    );
    assert!(
        bw_psm2 < bw_tcp * 1.5,
        "psm2 {bw_psm2:.2} should not exceed tcp {bw_tcp:.2} by more than ~25% at scale"
    );
}

#[test]
fn wide_striping_speeds_up_large_object_writes() {
    // A single process writing large objects: S1 serialises on one
    // target's media share; SX spreads the extent across all targets.
    let s1 = write_workload(ClusterSpec::tcp(1, 1), 2, 3, 16, ObjectClass::S1);
    let sx = write_workload(ClusterSpec::tcp(1, 1), 2, 3, 16, ObjectClass::SX);
    assert!(
        sx > 1.5 * s1,
        "SX ({sx:.2}) should beat S1 ({s1:.2}) for 16 MiB objects at low concurrency"
    );
}

#[test]
fn multi_server_deployments_pay_the_host_efficiency() {
    // Same aggregate offered load per engine; the 2-server deployment is
    // discounted by the cross-rail efficiency factor.
    let one = write_workload(ClusterSpec::tcp(1, 2), 32, 6, 1, ObjectClass::S1);
    let two = write_workload(ClusterSpec::tcp(2, 4), 64, 6, 1, ObjectClass::S1);
    let scaling = two / one;
    assert!(
        (1.4..2.05).contains(&scaling),
        "2-server scaling {scaling:.2} should be sub-linear but substantial"
    );
}

#[test]
fn container_creates_serialize_on_the_pool_metadata_service() {
    let sim = Sim::new();
    let spec = ClusterSpec::tcp(1, 1);
    let cost = spec.calibration.cont_create_cost;
    let d = Deployment::new(&sim, spec);
    let n = 32u64;
    for i in 0..n {
        let d = Rc::clone(&d);
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, i as u32);
            client
                .cont_open_or_create(Uuid::from_u64_pair(7, i))
                .await
                .unwrap();
        });
    }
    let end = sim.run().expect_quiescent();
    let serial_floor = cost.as_secs_f64() * n as f64;
    assert!(
        end.as_secs_f64() >= serial_floor,
        "{} creates finished in {:.6}s, below the serial floor {:.6}s",
        n,
        end.as_secs_f64(),
        serial_floor
    );
}

#[test]
fn reads_outpace_writes_on_the_same_data() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 2));
    let write_end: Rc<Cell<f64>> = Rc::default();
    let payload = Bytes::from(vec![1u8; MIB as usize]);
    let procs = 24u32;
    let ops = 6u32;
    {
        let (d, we, payload) = (Rc::clone(&d), Rc::clone(&write_end), payload.clone());
        let sim2 = sim.clone();
        sim.spawn(async move {
            // Writers, then readers, sequenced by one orchestrator task.
            let mut writers = Vec::new();
            for p in 0..procs {
                let d = Rc::clone(&d);
                let payload = payload.clone();
                writers.push(Box::pin(async move {
                    let client = SimClient::for_process(&d, (p % 2) as u16, p / 2);
                    let cont = client
                        .cont_open_or_create(Uuid::from_name(b"rw"))
                        .await
                        .unwrap();
                    let mut alloc = OidAllocator::new(p + 1);
                    for _ in 0..ops {
                        let oid = alloc.next(ObjectClass::S1);
                        let h = client.array_create(&cont, oid).await.unwrap();
                        client
                            .array_write(&cont, &h, 0, payload.clone())
                            .await
                            .unwrap();
                        client.array_close(&cont, h).await.unwrap();
                    }
                }));
            }
            daosim_kernel::sync::join_all(writers).await;
            we.set(sim2.now().as_secs_f64());
            let mut readers = Vec::new();
            for p in 0..procs {
                let d = Rc::clone(&d);
                readers.push(Box::pin(async move {
                    let client = SimClient::for_process(&d, (p % 2) as u16, p / 2);
                    let cont = client
                        .cont_open_or_create(Uuid::from_name(b"rw"))
                        .await
                        .unwrap();
                    let mut alloc = OidAllocator::new(p + 1);
                    for _ in 0..ops {
                        let oid = alloc.next(ObjectClass::S1);
                        let h = client.array_open(&cont, oid).await.unwrap();
                        let data = client.array_read(&cont, &h, 0, MIB).await.unwrap();
                        assert_eq!(data.len() as u64, MIB);
                        client.array_close(&cont, h).await.unwrap();
                    }
                }));
            }
            daosim_kernel::sync::join_all(readers).await;
        });
    }
    let end = sim.run().expect_quiescent().as_secs_f64();
    let write_time = write_end.get();
    let read_time = end - write_time;
    assert!(
        read_time < write_time,
        "read phase {read_time:.4}s should be faster than write phase {write_time:.4}s"
    );
}

#[test]
fn data_written_through_sim_is_readable_from_backing_store() {
    // The simulated client applies real data: verify through the raw
    // store handle, bypassing the client entirely.
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let oid = Oid::generate(1, 0, ObjectClass::S2);
    {
        let d = Rc::clone(&d);
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"direct"))
                .await
                .unwrap();
            let h = client.array_create(&cont, oid).await.unwrap();
            client
                .array_write(&cont, &h, 0, Bytes::from(vec![9u8; 3 * MIB as usize]))
                .await
                .unwrap();
            client.array_close(&cont, h).await.unwrap();
        });
    }
    sim.run().expect_quiescent();
    let cont = d.pool.cont_open(Uuid::from_name(b"direct")).unwrap();
    let data = cont.array_read(oid, 0, 3 * MIB).unwrap();
    assert_eq!(data.len() as u64, 3 * MIB);
    assert!(data.iter().all(|&b| b == 9));
}

#[test]
fn utilization_accounting_is_sane() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let payload = Bytes::from(vec![1u8; MIB as usize]);
    for p in 0..8u32 {
        let (d, payload) = (Rc::clone(&d), payload.clone());
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, p);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"util"))
                .await
                .unwrap();
            let mut alloc = OidAllocator::new(p + 1);
            for _ in 0..8 {
                let oid = alloc.next(ObjectClass::S1);
                let h = client.array_create(&cont, oid).await.unwrap();
                client
                    .array_write(&cont, &h, 0, payload.clone())
                    .await
                    .unwrap();
                client.array_close(&cont, h).await.unwrap();
            }
        });
    }
    sim.run().expect_quiescent();
    let util = d.engine_utilization();
    assert_eq!(util.len(), 2);
    for (mean, max) in util {
        assert!((0.0..=1.0).contains(&mean), "mean {mean}");
        assert!(max <= 1.0 + 1e-9, "max {max}");
        assert!(max >= mean);
        // Work happened: some target saw traffic.
        assert!(max > 0.0);
    }
}

#[test]
fn idle_cluster_has_zero_utilization() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let d2 = Rc::clone(&d);
    sim.block_on(async move {
        d2.sim
            .sleep(daosim_kernel::SimDuration::from_millis(5))
            .await;
    });
    for (mean, max) in d.engine_utilization() {
        assert_eq!(mean, 0.0);
        assert_eq!(max, 0.0);
    }
}

#[test]
fn replicated_reads_survive_single_engine_loss() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    let payload = Bytes::from(vec![3u8; MIB as usize]);
    {
        let (d, payload) = (Rc::clone(&d), payload.clone());
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"rp"))
                .await
                .unwrap();
            // One replicated and one unreplicated object on target sets
            // spanning both engines.
            let mut replicated = Vec::new();
            let mut plain = Vec::new();
            for i in 0..16u64 {
                let r = Oid::generate(1, i, ObjectClass::RP2);
                let s = Oid::generate(2, i, ObjectClass::S1);
                let rh = client.array_create(&cont, r).await.unwrap();
                client
                    .array_write(&cont, &rh, 0, payload.clone())
                    .await
                    .unwrap();
                let sh = client.array_create(&cont, s).await.unwrap();
                client
                    .array_write(&cont, &sh, 0, payload.clone())
                    .await
                    .unwrap();
                replicated.push(rh);
                plain.push(sh);
            }
            d.kill_engine(0);
            let mut rp_ok = 0;
            let mut s1_ok = 0;
            let mut s1_failed = 0;
            for (r, s) in replicated.iter().zip(&plain) {
                match client.array_read(&cont, r, 0, MIB).await {
                    Ok(data) => {
                        assert_eq!(data.len() as u64, MIB);
                        rp_ok += 1;
                    }
                    Err(e) => panic!("replicated read failed: {e}"),
                }
                match client.array_read(&cont, s, 0, MIB).await {
                    Ok(_) => s1_ok += 1,
                    Err(daosim_objstore::DaosError::EngineUnavailable(_)) => s1_failed += 1,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            // Every replicated object stayed readable; the unreplicated
            // ones placed on the dead engine did not.
            assert_eq!(rp_ok, 16);
            assert!(s1_failed > 0, "some S1 objects must have been lost");
            assert!(s1_ok > 0, "some S1 objects must have survived");
            // Writes to replicated objects need the full group: objects
            // with a replica on engine 0 now reject writes.
            let mut write_failures = 0;
            for r in &replicated {
                if client
                    .array_write(&cont, r, 0, payload.clone())
                    .await
                    .is_err()
                {
                    write_failures += 1;
                }
            }
            assert!(write_failures > 0, "degraded writes must be rejected");
        });
    }
    sim.run().expect_quiescent();
}

#[test]
fn replication_costs_roughly_double_write_traffic() {
    let s1 = write_workload(ClusterSpec::tcp(1, 2), 24, 6, 1, ObjectClass::S1);
    let rp2 = write_workload(ClusterSpec::tcp(1, 2), 24, 6, 1, ObjectClass::RP2);
    let ratio = s1 / rp2;
    assert!(
        (1.3..2.6).contains(&ratio),
        "RP2 ({rp2:.2}) should cost roughly 2x vs S1 ({s1:.2}); ratio {ratio:.2}"
    );
}

#[test]
fn replicated_kv_survives_engine_loss() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 1));
    {
        let d = Rc::clone(&d);
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"rpkv"))
                .await
                .unwrap();
            let kv = Oid::generate(5, 5, ObjectClass::RP2);
            client
                .kv_put(&cont, kv, b"step=0", Bytes::from_static(b"ref"))
                .await
                .unwrap();
            // Kill the leader's engine; the fetch fails over.
            let leader = daosim_objstore::placement::replica_targets(kv, d.spec.pool_targets())[0];
            d.kill_engine(d.engine_index_of_target(leader));
            let got = client.kv_get(&cont, kv, b"step=0").await.unwrap();
            assert_eq!(got.unwrap().as_ref(), b"ref");
        });
    }
    sim.run().expect_quiescent();
}

#[test]
fn ec_objects_reconstruct_after_single_engine_loss() {
    let sim = Sim::new();
    // 2 server nodes = 4 engines, 48 targets: EC cells spread widely.
    let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
    let payload = {
        // A recognisable non-uniform payload, without a daosim-core dep.
        let mut v = Vec::with_capacity((MIB + 12345) as usize);
        for i in 0..(MIB + 12345) {
            v.push((i * 131 % 251) as u8);
        }
        Bytes::from(v)
    };
    {
        let (d, payload) = (Rc::clone(&d), payload.clone());
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"ec"))
                .await
                .unwrap();
            let mut handles = Vec::new();
            for i in 0..24u64 {
                let oid = Oid::generate(3, i, ObjectClass::EC2P1);
                let h = client.array_create(&cont, oid).await.unwrap();
                client
                    .array_write(&cont, &h, 0, payload.clone())
                    .await
                    .unwrap();
                handles.push(h);
            }
            d.kill_engine(1);
            for h in &handles {
                // Every object is readable; degraded ones return bytes
                // reconstructed from survivor + parity.
                let got = client
                    .array_read(&cont, h, 0, payload.len() as u64)
                    .await
                    .unwrap();
                assert_eq!(got, payload, "EC read mismatch for {:?}", h.oid());
            }
            // Partial reads work degraded too.
            let got = client
                .array_read(&cont, &handles[0], 1000, 5000)
                .await
                .unwrap();
            assert_eq!(got, payload.slice(1000..6000));
        });
    }
    sim.run().expect_quiescent();
}

#[test]
fn ec_degraded_reads_cost_reconstruction_time() {
    let run = |kill: bool| {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
        let payload = Bytes::from(vec![7u8; MIB as usize]);
        let (d2, p2) = (Rc::clone(&d), payload.clone());
        sim.spawn(async move {
            let client = SimClient::for_process(&d2, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"ec2"))
                .await
                .unwrap();
            let mut handles = Vec::new();
            for i in 0..16u64 {
                let oid = Oid::generate(4, i, ObjectClass::EC2P1);
                let h = client.array_create(&cont, oid).await.unwrap();
                client.array_write(&cont, &h, 0, p2.clone()).await.unwrap();
                handles.push(h);
            }
            if kill {
                d2.kill_engine(0);
            }
            let t0 = d2.sim.now();
            for h in &handles {
                client.array_read(&cont, h, 0, MIB).await.unwrap();
            }
            // Stash phase duration in pool used (hack-free: assert below
            // uses total end time instead).
            let _ = t0;
        });
        sim.run().expect_quiescent().as_secs_f64()
    };
    let healthy = run(false);
    let degraded = run(true);
    assert!(
        degraded > healthy,
        "degraded EC reads ({degraded:.4}s) must cost more than healthy ({healthy:.4}s)"
    );
}

#[test]
fn ec_write_rejects_nonzero_offsets_and_two_failures() {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
    {
        let d = Rc::clone(&d);
        sim.spawn(async move {
            let client = SimClient::for_process(&d, 0, 0);
            let cont = client
                .cont_open_or_create(Uuid::from_name(b"ec3"))
                .await
                .unwrap();
            let oid = Oid::generate(5, 0, ObjectClass::EC2P1);
            let h = client.array_create(&cont, oid).await.unwrap();
            client
                .array_write(&cont, &h, 0, Bytes::from(vec![1u8; 4096]))
                .await
                .unwrap();
            match client
                .array_write(&cont, &h, 100, Bytes::from_static(b"x"))
                .await
            {
                Err(daosim_objstore::DaosError::InvalidArg(_)) => {}
                other => panic!("expected InvalidArg, got {other:?}"),
            }
            // Two dead engines can cover both a data cell and the parity:
            // reads must fail rather than fabricate data.
            d.kill_engine(0);
            d.kill_engine(1);
            d.kill_engine(2);
            match client.array_read(&cont, &h, 0, 4096).await {
                Err(daosim_objstore::DaosError::EngineUnavailable(_)) => {}
                other => panic!("expected EngineUnavailable, got {other:?}"),
            }
        });
    }
    sim.run().expect_quiescent();
}
