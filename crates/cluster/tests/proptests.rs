//! Property-based robustness: arbitrary small workloads on arbitrary
//! cluster shapes always run to quiescence with correct data.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use daosim_cluster::{ClusterSpec, Deployment, SimClient};
use daosim_kernel::Sim;
use daosim_net::ProviderProfile;
use daosim_objstore::prelude::{DaosApi, ObjectClass, Oid, Uuid};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Shape {
    servers: u16,
    clients: u16,
    engines: u8,
    targets: u32,
    tcp: bool,
}

fn shape() -> impl Strategy<Value = Shape> {
    (1u16..4, 1u16..4, 1u8..3, 1u32..16, any::<bool>()).prop_map(
        |(servers, clients, engines, targets, tcp)| Shape {
            servers,
            clients,
            engines,
            targets,
            tcp,
        },
    )
}

#[derive(Debug, Clone)]
enum Op {
    Write { obj: u8, len: u16, off: u16 },
    Read { obj: u8, len: u16, off: u16 },
    KvPut { kv: u8, key: u8 },
    KvGet { kv: u8, key: u8 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 1u16..4096, 0u16..2048).prop_map(|(obj, len, off)| Op::Write { obj, len, off }),
        (0u8..6, 1u16..4096, 0u16..2048).prop_map(|(obj, len, off)| Op::Read { obj, len, off }),
        (0u8..3, 0u8..8).prop_map(|(kv, key)| Op::KvPut { kv, key }),
        (0u8..3, 0u8..8).prop_map(|(kv, key)| Op::KvGet { kv, key }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_workloads_never_deadlock(
        shape in shape(),
        procs_ops in proptest::collection::vec(proptest::collection::vec(op(), 1..12), 1..6),
    ) {
        let sim = Sim::new();
        let spec = ClusterSpec {
            server_nodes: shape.servers,
            engines_per_node: shape.engines,
            targets_per_engine: shape.targets,
            client_nodes: shape.clients,
            client_sockets: 2,
            provider: if shape.tcp {
                ProviderProfile::tcp()
            } else {
                ProviderProfile::psm2()
            },
            calibration: daosim_cluster::Calibration::nextgenio(),
            retry: daosim_cluster::RetryPolicy::builder().build(),
            admission: daosim_kernel::AdmissionPolicy::Fifo,
            tiering: daosim_media::TierPolicy::scm_only(),
        };
        let d = Deployment::new(&sim, spec);
        let errors: Rc<RefCell<Vec<String>>> = Rc::default();
        for (p, ops) in procs_ops.iter().enumerate() {
            let d = Rc::clone(&d);
            let ops = ops.clone();
            let errors = Rc::clone(&errors);
            let clients = shape.clients;
            sim.spawn(async move {
                let client = SimClient::for_process(&d, p as u16 % clients, p as u32);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"prop"))
                    .await
                    .unwrap();
                // Per-process object namespace keeps data checks simple;
                // KV objects are shared across processes on purpose.
                let arr = |o: u8| Oid::generate(p as u32 + 1, o as u64, ObjectClass::S2);
                let kvo = |o: u8| Oid::generate(0xFFFF, o as u64, ObjectClass::SX);
                let mut written: [Option<(u16, u16)>; 6] = [None; 6];
                for op in ops {
                    match op {
                        Op::Write { obj, len, off } => {
                            let oid = arr(obj);
                            let h = client.array_open_or_create(&cont, oid).await.unwrap();
                            let data = Bytes::from(vec![obj.wrapping_add(1); len as usize]);
                            client.array_write(&cont, &h, off as u64, data).await.unwrap();
                            client.array_close(&cont, h).await.unwrap();
                            written[obj as usize] = Some((off, len));
                        }
                        Op::Read { obj, len, off } => {
                            let oid = arr(obj);
                            if written[obj as usize].is_some() {
                                let h = client.array_open(&cont, oid).await.unwrap();
                                let data = client
                                    .array_read(&cont, &h, off as u64, len as u64)
                                    .await
                                    .unwrap();
                                client.array_close(&cont, h).await.unwrap();
                                if data.len() != len as usize {
                                    errors.borrow_mut().push(format!(
                                        "short read: {} != {}",
                                        data.len(),
                                        len
                                    ));
                                }
                            }
                        }
                        Op::KvPut { kv, key } => {
                            client
                                .kv_put(
                                    &cont,
                                    kvo(kv),
                                    format!("k{key}").as_bytes(),
                                    Bytes::from(vec![key; 16]),
                                )
                                .await
                                .unwrap();
                        }
                        Op::KvGet { kv, key } => {
                            // May or may not exist; must not error.
                            client
                                .kv_get(&cont, kvo(kv), format!("k{key}").as_bytes())
                                .await
                                .unwrap();
                        }
                    }
                }
            });
        }
        let out = sim.run();
        prop_assert_eq!(out.stranded_tasks, 0, "workload deadlocked");
        prop_assert!(errors.borrow().is_empty(), "errors: {:?}", errors.borrow());
    }
}
