//! Beyond-paper extension: rebuild time after an engine loss.
//!
//! DAOS's answer to "what happens operationally when SCM hardware dies
//! mid-window" is the rebuild protocol. This experiment measures the
//! model's recovery story: time to restore full redundancy as a function
//! of archived data volume and cluster size, and the write-availability
//! gap it closes (degraded writes rejected before, accepted after).

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use daosim_cluster::{rebuild_engine, ClusterSpec, Deployment, RebuildReport, SimClient};
use daosim_kernel::Sim;
use daosim_objstore::api::DaosApi;
use daosim_objstore::{ObjectClass, OidAllocator, Uuid};

use crate::harness::{gib, parallel_map, Report, Scale};

const MIB: u64 = 1024 * 1024;

struct Run {
    report: RebuildReport,
    degraded_write_fail_pct: f64,
}

fn run_rebuild(servers: u16, objects_per_proc: u32, procs: u32) -> Run {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(servers, 1));
    let out: Rc<RefCell<Option<Run>>> = Rc::default();
    {
        let (d, out) = (Rc::clone(&d), Rc::clone(&out));
        sim.spawn(async move {
            let payload = Bytes::from(vec![3u8; MIB as usize]);
            // Populate with replicated objects from several writers.
            let writers: Vec<_> = (0..procs)
                .map(|p| {
                    let d = Rc::clone(&d);
                    let payload = payload.clone();
                    Box::pin(async move {
                        let client = SimClient::for_process(&d, 0, p);
                        let cont = client
                            .cont_open_or_create(Uuid::from_name(b"rb"))
                            .await
                            .unwrap();
                        let mut alloc = OidAllocator::new(p + 1);
                        let mut open = Vec::new();
                        for _ in 0..objects_per_proc {
                            let oid = alloc.next(ObjectClass::RP2);
                            let h = client.array_create(&cont, oid).await.unwrap();
                            client
                                .array_write(&cont, &h, 0, payload.clone())
                                .await
                                .unwrap();
                            open.push(h);
                        }
                        (client, cont, open)
                    })
                })
                .collect();
            let handles = daosim_kernel::sync::join_all(writers).await;

            d.kill_engine(0);
            // Measure degraded write availability.
            let mut failed = 0u32;
            let mut total = 0u32;
            for (client, cont, open) in &handles {
                for h in open {
                    total += 1;
                    if client
                        .array_write(cont, h, 0, payload.clone())
                        .await
                        .is_err()
                    {
                        failed += 1;
                    }
                }
            }
            let report = rebuild_engine(&d, 0)
                .await
                .expect("rebuild of killed engine");
            // Post-rebuild: every write must succeed.
            for (client, cont, open) in &handles {
                for h in open {
                    client
                        .array_write(cont, h, 0, payload.clone())
                        .await
                        .unwrap();
                }
            }
            *out.borrow_mut() = Some(Run {
                report,
                degraded_write_fail_pct: 100.0 * failed as f64 / total as f64,
            });
        });
    }
    sim.run().expect_quiescent();
    Rc::try_unwrap(out)
        .ok()
        .expect("run done")
        .into_inner()
        .expect("run completed")
}

pub fn rebuild(scale: &Scale) -> Report {
    let procs = *scale.fieldio_ppn.first().unwrap_or(&8);
    let cfgs: Vec<(u16, u32)> = vec![(2, 8), (2, 32), (2, 64), (4, 32)];
    let results = parallel_map(cfgs, |&(servers, objs)| {
        (servers, objs, run_rebuild(servers, objs, procs))
    });
    let mut rep = Report::new(
        "rebuild",
        "Extension: rebuild after engine loss (RP2 archive)",
        &[
            "server_nodes",
            "objects",
            "moved_GiB",
            "rebuild_ms",
            "rebuild_GiB/s",
            "degraded_write_fail_%",
        ],
    );
    for (servers, objs, r) in results {
        let gib_moved = r.report.bytes_moved as f64 / (1u64 << 30) as f64;
        rep.row(vec![
            servers.to_string(),
            (objs * procs).to_string(),
            format!("{gib_moved:.2}"),
            format!("{:.1}", r.report.duration_secs * 1e3),
            gib(gib_moved / r.report.duration_secs.max(1e-12)),
            format!("{:.1}", r.degraded_write_fail_pct),
        ]);
    }
    rep.note(
        "writes to objects with a dead replica fail until rebuild completes; \
              all writes succeed afterwards (asserted)",
    );
    rep
}
