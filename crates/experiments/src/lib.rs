//! # daosim-experiments — regenerating the paper's evaluation
//!
//! One runner per table and figure of the evaluation section, each
//! printing the same rows/series the paper reports (with the paper's
//! values alongside where the artifact is a table). The `xp` binary
//! drives them; the `daosim-bench` crate wraps reduced-scale versions as
//! Criterion benchmarks.

pub mod ablations;
pub mod failure_drill_xp;
pub mod figures;
pub mod harness;
pub mod ior_interfaces_xp;
pub mod kernel_bench_xp;
pub mod nwp_cycle_xp;
pub mod pipeline;
pub mod rebuild_xp;
pub mod replication;
pub mod sched_fuzz_xp;
pub mod tables;
pub mod tiering_xp;
pub mod window_sweep;

use std::io::Write;
use std::path::Path;

use daosim_cluster::ClusterSpec;
use daosim_core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim_core::obs::{chrome_trace_json, json_is_wellformed, validate_spans};
use daosim_core::trace::{replay_traced, Pacing, Trace};
use daosim_kernel::SimDuration;
use harness::{Report, Scale};

/// Every experiment by name.
pub const EXPERIMENTS: [&str; 18] = [
    "table1",
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "ablations",
    "pipeline",
    "pipeline-window",
    "ior-interfaces",
    "replication",
    "rebuild",
    "failure-drill",
    "sched-fuzz",
    "kernel-bench",
    "nwp-cycle",
    "tiering",
];

/// Runs one experiment by name.
pub fn run_experiment(name: &str, scale: &Scale) -> Vec<Report> {
    match name {
        "table1" => vec![tables::table1(scale)],
        "table2" => vec![tables::table2(scale)],
        "fig3" => vec![figures::fig3(scale)],
        "fig4" => vec![figures::fig4(scale)],
        "fig5" => vec![figures::fig5(scale)],
        "fig6" => vec![figures::fig6(scale)],
        "fig7" => vec![figures::fig7(scale)],
        "ablations" => ablations::all(scale),
        "pipeline" => vec![pipeline::pipeline(scale)],
        "pipeline-window" => vec![window_sweep::window_sweep(scale)],
        "ior-interfaces" => vec![ior_interfaces_xp::ior_interfaces(scale)],
        "replication" => vec![replication::replication(scale)],
        "rebuild" => vec![rebuild_xp::rebuild(scale)],
        "failure-drill" => vec![failure_drill_xp::failure_drill(scale)],
        "sched-fuzz" => vec![sched_fuzz_xp::sched_fuzz(scale)],
        "kernel-bench" => vec![kernel_bench_xp::kernel_bench(scale)],
        "nwp-cycle" => vec![nwp_cycle_xp::nwp_cycle(scale)],
        "tiering" => vec![tiering_xp::tiering(scale)],
        other => panic!("unknown experiment {other:?}; known: {EXPERIMENTS:?}"),
    }
}

/// Runs a set of experiments, writing each rendered report to `out` and
/// diagnostics to `err`, and saving report files under `out_dir`. The
/// sinks are caller-supplied so library users (tests, harnesses
/// capturing output) are not forced onto the process's stdout/stderr.
pub fn run_and_save_to(
    names: &[&str],
    scale: &Scale,
    out_dir: &Path,
    out: &mut dyn Write,
    err: &mut dyn Write,
) {
    for name in names {
        let reports = run_experiment(name, scale);
        for rep in reports {
            let _ = writeln!(out, "{}", rep.render());
            if let Err(e) = rep.save(out_dir) {
                let _ = writeln!(err, "warning: could not save {}: {e}", rep.name);
            }
        }
    }
}

/// [`run_and_save_to`] with the process's stdout/stderr as sinks.
pub fn run_and_save(names: &[&str], scale: &Scale, out_dir: &Path) {
    run_and_save_to(
        names,
        scale,
        out_dir,
        &mut std::io::stdout().lock(),
        &mut std::io::stderr().lock(),
    );
}

/// Runs a downscaled Field I/O replay with span tracing and writes the
/// validated Chrome trace-event JSON to `path` (the `xp --trace-out`
/// artifact; CI loads it as a smoke test). Returns an error if the
/// recorded span stream violates its invariants, covers fewer than four
/// categories, or renders to malformed JSON.
pub fn write_fieldio_trace(path: &Path, err: &mut dyn Write) -> std::io::Result<()> {
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let trace = Trace::synthesize_operational(4, 2, 3, 256 * 1024, SimDuration::from_millis(20));
    let traced = replay_traced(
        ClusterSpec::tcp(1, 1),
        FieldIoConfig::builder().mode(FieldIoMode::Full).build(),
        &trace,
        Pacing::Paced,
        None,
    );
    let summary = validate_spans(&traced.spans).map_err(bad)?;
    if summary.unclosed > 0 {
        return Err(bad(format!("{} unclosed span(s)", summary.unclosed)));
    }
    if summary.categories.len() < 4 {
        return Err(bad(format!(
            "only {} span categories: {:?}",
            summary.categories.len(),
            summary.categories
        )));
    }
    let json = chrome_trace_json(&traced.spans);
    if !json_is_wellformed(&json) {
        return Err(bad("exported trace JSON is malformed".into()));
    }
    std::fs::write(path, &json)?;
    let _ = writeln!(
        err,
        "[trace] {}: {} spans, {} instants; categories: {}",
        path.display(),
        summary.spans,
        summary.instants,
        summary.categories.join(", ")
    );
    Ok(())
}
