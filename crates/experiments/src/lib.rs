//! # daosim-experiments — regenerating the paper's evaluation
//!
//! One runner per table and figure of the evaluation section, each
//! printing the same rows/series the paper reports (with the paper's
//! values alongside where the artifact is a table). The `xp` binary
//! drives them; the `daosim-bench` crate wraps reduced-scale versions as
//! Criterion benchmarks.

pub mod ablations;
pub mod failure_drill_xp;
pub mod figures;
pub mod harness;
pub mod pipeline;
pub mod rebuild_xp;
pub mod replication;
pub mod tables;

use std::path::Path;

use harness::{Report, Scale};

/// Every experiment by name.
pub const EXPERIMENTS: [&str; 12] = [
    "table1",
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "ablations",
    "pipeline",
    "replication",
    "rebuild",
    "failure-drill",
];

/// Runs one experiment by name.
pub fn run_experiment(name: &str, scale: &Scale) -> Vec<Report> {
    match name {
        "table1" => vec![tables::table1(scale)],
        "table2" => vec![tables::table2(scale)],
        "fig3" => vec![figures::fig3(scale)],
        "fig4" => vec![figures::fig4(scale)],
        "fig5" => vec![figures::fig5(scale)],
        "fig6" => vec![figures::fig6(scale)],
        "fig7" => vec![figures::fig7(scale)],
        "ablations" => ablations::all(scale),
        "pipeline" => vec![pipeline::pipeline(scale)],
        "replication" => vec![replication::replication(scale)],
        "rebuild" => vec![rebuild_xp::rebuild(scale)],
        "failure-drill" => vec![failure_drill_xp::failure_drill(scale)],
        other => panic!("unknown experiment {other:?}; known: {EXPERIMENTS:?}"),
    }
}

/// Runs a set of experiments, printing and saving each report.
pub fn run_and_save(names: &[&str], scale: &Scale, out_dir: &Path) {
    for name in names {
        let reports = run_experiment(name, scale);
        for rep in reports {
            println!("{}", rep.render());
            if let Err(e) = rep.save(out_dir) {
                eprintln!("warning: could not save {}: {e}", rep.name);
            }
        }
    }
}
