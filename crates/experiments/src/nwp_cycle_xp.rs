//! The operational NWP contention cycle: mixed writer/reader fleets
//! under shared-index vs index-per-process layouts and FIFO vs
//! writer-priority admission, with an optional fault campaign on top.
//!
//! Reproduces the central comparison of "Reducing the Impact of I/O
//! Contention in NWP Workflows at Scale Using DAOS" (arXiv 2404.03107):
//! deadline-carrying model writers stream fields every step while a
//! larger product-generation reader fleet fetches the previous step's
//! fields from the same pool. The report compares writer/reader p99 op
//! latency, missed-deadline counts and target-queue backlog depth
//! across the two index layouts and the two admission policies, clean
//! and under a seeded fault campaign; `BENCH_nwp_cycle.json` carries
//! the full rows including the backlog time series, plus an
//! `enforcement` block quantifying what writer-priority admission buys
//! the saturated shared-index cycle (and what the readers pay).
//! Everything is sim-derived and seed-fixed, so reruns are
//! byte-identical.

use std::fmt::Write as _;

use daosim_cluster::{ClusterSpec, FaultPlan, RetryPolicy};
use daosim_core::cycle::{run_nwp_cycle, CycleConfig, CycleOutcome, IndexLayout};
use daosim_kernel::{AdmissionPolicy, SimDuration};

use crate::harness::{parallel_map, Report, Scale};

/// The experiment's deployment: one dual-engine server node, clients on
/// two nodes — small enough for CI, contended enough to separate the
/// layouts.
fn spec(faults: bool) -> ClusterSpec {
    let mut spec = ClusterSpec::tcp(1, 2);
    if faults {
        spec.retry = RetryPolicy::builder().operational().build();
    }
    spec
}

/// Cycle shape at `scale`. Both shapes are *reader-saturated*: the
/// writer fleet alone fits comfortably inside the step interval, but
/// the much larger reader fleet waking at every step boundary floods
/// the service queues — so under FIFO admission writer completions
/// queue behind reader ops and blow the deadline, and the admission
/// policy (not raw bandwidth) decides the writer tail. The full shape
/// doubles the fleet and adds a step so the separation is unmistakable.
fn cycle_config(scale: &Scale, layout: IndexLayout, admission: AdmissionPolicy) -> CycleConfig {
    let mut b = CycleConfig::builder(layout)
        .writers(6)
        .readers(32)
        .steps(3)
        .fields_per_step(3)
        .field_bytes(512 * 1024)
        .step_interval(SimDuration::from_millis(16))
        .write_window(4)
        .read_window(8)
        .reads_per_step(8);
    if scale.ops_per_proc >= 30 {
        b = b
            .writers(8)
            .readers(48)
            .steps(4)
            .fields_per_step(4)
            .step_interval(SimDuration::from_millis(25))
            .write_window(8);
    }
    b.admission(admission)
        .build()
        .expect("experiment cycle shape is statically nonzero")
}

/// The optional contention + failure axis: a seeded random campaign over
/// the first half of the cycle.
fn campaign(cfg: &CycleConfig, engines: u32) -> FaultPlan {
    let horizon = SimDuration::from_nanos(cfg.step_interval.as_nanos() * cfg.steps as u64 / 2);
    FaultPlan::random_campaign(11, engines, horizon)
}

fn p50_p99(lat: &Option<daosim_core::metrics::LatencyStats>) -> (f64, f64) {
    lat.as_ref().map_or((0.0, 0.0), |l| (l.p50_us, l.p99_us))
}

/// One configuration of the three-way axis, in row order.
type Config = (IndexLayout, AdmissionPolicy, bool);

fn configs() -> Vec<Config> {
    let mut v = Vec::new();
    for layout in IndexLayout::all() {
        for admission in [AdmissionPolicy::Fifo, AdmissionPolicy::writer_priority()] {
            for faults in [false, true] {
                v.push((layout, admission, faults));
            }
        }
    }
    v
}

/// Runs the eight configurations (layouts × admission × faults) and
/// renders the report plus the `BENCH_nwp_cycle.json` artifact.
pub fn nwp_cycle(scale: &Scale) -> Report {
    let results: Vec<(Config, CycleOutcome)> = parallel_map(configs(), |&(layout, adm, faults)| {
        let spec = spec(faults);
        let cfg = cycle_config(scale, layout, adm);
        let plan = faults.then(|| campaign(&cfg, spec.engines()));
        let out = run_nwp_cycle(spec, &cfg, plan.as_ref()).expect("valid cycle config");
        ((layout, adm, faults), out)
    });

    let cfg = cycle_config(scale, IndexLayout::Shared, AdmissionPolicy::Fifo);
    let mut rep = Report::new(
        "nwp-cycle",
        "Extension: operational NWP cycle — writer deadlines vs reader fleet, shared vs split index, FIFO vs writer-priority admission",
        &[
            "layout",
            "admission",
            "faults",
            "writer_p99_us",
            "reader_p99_us",
            "missed_deadlines",
            "aged_grants",
            "backlog_peak",
            "failed_reads",
            "secs",
        ],
    );
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"nwp-cycle\",");
    let _ = writeln!(
        json,
        "  \"cluster\": \"tcp(server_nodes=1, client_nodes=2)\","
    );
    let _ = writeln!(json, "  \"writers\": {},", cfg.writers);
    let _ = writeln!(json, "  \"readers\": {},", cfg.readers);
    let _ = writeln!(json, "  \"steps\": {},", cfg.steps);
    let _ = writeln!(json, "  \"fields_per_step\": {},", cfg.fields_per_step);
    let _ = writeln!(json, "  \"field_bytes\": {},", cfg.field_bytes);
    let _ = writeln!(
        json,
        "  \"step_interval_ms\": {},",
        cfg.step_interval.as_nanos() / 1_000_000
    );
    let _ = writeln!(json, "  \"rows\": [");
    for (i, ((_, adm, faults), out)) in results.iter().enumerate() {
        let (wp50, wp99) = p50_p99(&out.writer_lat);
        let (rp50, rp99) = p50_p99(&out.reader_lat);
        rep.row(vec![
            out.layout.name().to_string(),
            adm.name().to_string(),
            faults.to_string(),
            format!("{wp99:.1}"),
            format!("{rp99:.1}"),
            out.deadlines_missed.to_string(),
            out.aged_grants.to_string(),
            out.backlog_peak.to_string(),
            out.resilience.failed_reads.to_string(),
            format!("{:.4}", out.end_secs),
        ]);
        let series: Vec<String> = out
            .backlog_series
            .iter()
            .map(|(t, d)| format!("[{t}, {d}]"))
            .collect();
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"layout\": \"{}\",", out.layout.name());
        let _ = writeln!(json, "      \"admission\": \"{}\",", adm.name());
        let _ = writeln!(json, "      \"faults\": {faults},");
        let _ = writeln!(json, "      \"end_secs\": {},", out.end_secs);
        let _ = writeln!(json, "      \"writer_p50_us\": {wp50},");
        let _ = writeln!(json, "      \"writer_p99_us\": {wp99},");
        let _ = writeln!(json, "      \"reader_p50_us\": {rp50},");
        let _ = writeln!(json, "      \"reader_p99_us\": {rp99},");
        let _ = writeln!(
            json,
            "      \"writer_class_p99_us\": {},",
            out.writer_p99_us
        );
        let _ = writeln!(
            json,
            "      \"reader_class_p99_us\": {},",
            out.reader_p99_us
        );
        let _ = writeln!(json, "      \"deadlines_met\": {},", out.deadlines_met);
        let _ = writeln!(
            json,
            "      \"deadlines_missed\": {},",
            out.deadlines_missed
        );
        let _ = writeln!(
            json,
            "      \"worst_lateness_ms\": {},",
            out.worst_lateness_ms
        );
        let _ = writeln!(json, "      \"aged_grants\": {},", out.aged_grants);
        let _ = writeln!(json, "      \"backlog_peak\": {},", out.backlog_peak);
        let _ = writeln!(json, "      \"backlog_series\": [{}],", series.join(", "));
        let _ = writeln!(json, "      \"fields_written\": {},", out.fields_written);
        let _ = writeln!(json, "      \"fields_read\": {},", out.fields_read);
        let _ = writeln!(
            json,
            "      \"failed_writes\": {},",
            out.resilience.failed_writes
        );
        let _ = writeln!(
            json,
            "      \"failed_reads\": {},",
            out.resilience.failed_reads
        );
        let _ = writeln!(json, "      \"retries\": {}", out.resilience.retries);
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ],");

    // The crossover figure: shared-index cost relative to split, clean,
    // both under FIFO admission (rows 0 and 4 of the axis order).
    let shared = &results[0].1;
    let split = &results[4].1;
    let end_ratio = shared.end_secs / split.end_secs;
    let (_, shared_p99) = p50_p99(&shared.writer_lat);
    let (_, split_p99) = p50_p99(&split.writer_lat);
    let p99_ratio = if split_p99 > 0.0 {
        shared_p99 / split_p99
    } else {
        0.0
    };
    let _ = writeln!(json, "  \"crossover\": {{");
    let _ = writeln!(json, "    \"shared_over_split_end_ratio\": {end_ratio},");
    let _ = writeln!(
        json,
        "    \"shared_over_split_writer_p99_ratio\": {p99_ratio}"
    );
    let _ = writeln!(json, "  }},");

    // The enforcement figure: what writer-priority admission buys the
    // saturated shared-index cycle (rows 0 fifo vs 2 writer-priority,
    // both clean) — and what the readers pay for it. Readers must still
    // complete every op: barging degrades them, never starves them.
    let fifo = &results[0].1;
    let prio = &results[2].1;
    let reader_ops = (cfg.readers * cfg.steps * cfg.reads_per_step) as u64;
    let _ = writeln!(json, "  \"enforcement\": {{");
    let _ = writeln!(json, "    \"layout\": \"{}\",", fifo.layout.name());
    let _ = writeln!(
        json,
        "    \"writer_class_p99_us_fifo\": {},",
        fifo.writer_p99_us
    );
    let _ = writeln!(
        json,
        "    \"writer_class_p99_us_writer_priority\": {},",
        prio.writer_p99_us
    );
    let _ = writeln!(
        json,
        "    \"deadlines_missed_fifo\": {},",
        fifo.deadlines_missed
    );
    let _ = writeln!(
        json,
        "    \"deadlines_missed_writer_priority\": {},",
        prio.deadlines_missed
    );
    let _ = writeln!(
        json,
        "    \"reader_class_p99_us_fifo\": {},",
        fifo.reader_p99_us
    );
    let _ = writeln!(
        json,
        "    \"reader_class_p99_us_writer_priority\": {},",
        prio.reader_p99_us
    );
    let _ = writeln!(json, "    \"aged_grants\": {},", prio.aged_grants);
    let _ = writeln!(json, "    \"reader_ops_expected\": {reader_ops},");
    let _ = writeln!(
        json,
        "    \"reader_ops_resolved\": {}",
        prio.fields_read + prio.resilience.failed_reads
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    rep.note(format!(
        "{} writers ({} steps x {} fields, deadline = step interval) vs {} readers x {} reads/step; \
         shared index is {end_ratio:.2}x split on cycle end, {p99_ratio:.2}x on writer p99; \
         writer-priority admission on shared/clean: writer p99 {:.0} -> {:.0} us, \
         deadlines missed {} -> {}",
        cfg.writers, cfg.steps, cfg.fields_per_step, cfg.readers, cfg.reads_per_step,
        fifo.writer_p99_us, prio.writer_p99_us, fifo.deadlines_missed, prio.deadlines_missed
    ));
    rep.artifact("BENCH_nwp_cycle.json", json);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_every_layout_admission_fault_combination() {
        let rep = nwp_cycle(&Scale::quick());
        assert_eq!(rep.rows().len(), 8, "2 layouts x 2 admissions x faults");
        assert_eq!(rep.artifacts().len(), 1);
        assert_eq!(rep.artifacts()[0].0, "BENCH_nwp_cycle.json");
        // Clean shared-index must never beat split on cycle end time
        // (FIFO admission rows 0 and 4).
        let secs: Vec<f64> = rep.rows().iter().map(|r| r[9].parse().unwrap()).collect();
        assert!(
            secs[0] >= secs[4],
            "shared {} vs split {}",
            secs[0],
            secs[4]
        );
    }

    #[test]
    fn writer_priority_improves_saturated_shared_writers() {
        // The tentpole claim: on the saturated shared-index cycle,
        // writer-priority admission improves the writer class p99 and
        // misses no more deadlines than FIFO, while every reader op
        // still resolves (degraded, not starved).
        let rep = nwp_cycle(&Scale::quick());
        let rows = rep.rows();
        let (fifo, prio) = (&rows[0], &rows[2]);
        assert_eq!(fifo[0], "shared-index");
        assert_eq!(fifo[1], "fifo");
        assert_eq!(prio[1], "writer-priority");
        let (fifo_p99, prio_p99): (f64, f64) = (fifo[3].parse().unwrap(), prio[3].parse().unwrap());
        assert!(
            prio_p99 < fifo_p99,
            "writer p99 must improve: fifo {fifo_p99} vs prio {prio_p99}"
        );
        let (fifo_missed, prio_missed): (u64, u64) =
            (fifo[5].parse().unwrap(), prio[5].parse().unwrap());
        assert!(
            prio_missed <= fifo_missed,
            "deadlines: fifo {fifo_missed} vs prio {prio_missed}"
        );
        // Readers degrade but finish: no starved (unresolved) reader op.
        let artifact = &rep.artifacts()[0].1;
        assert!(artifact.contains("\"reader_ops_resolved\""));
        let expected = artifact
            .lines()
            .find(|l| l.contains("reader_ops_expected"))
            .unwrap();
        let resolved = artifact
            .lines()
            .find(|l| l.contains("reader_ops_resolved"))
            .unwrap();
        let num = |l: &str| -> u64 {
            l.trim()
                .trim_end_matches(',')
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(num(expected), num(resolved), "a reader op never resolved");
    }

    #[test]
    fn cycle_experiment_is_deterministic() {
        let a = nwp_cycle(&Scale::quick());
        let b = nwp_cycle(&Scale::quick());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.artifacts(), b.artifacts());
    }
}
