//! The operational NWP contention cycle: mixed writer/reader fleets
//! under shared-index vs index-per-process layouts, with an optional
//! fault campaign riding on top.
//!
//! Reproduces the central comparison of "Reducing the Impact of I/O
//! Contention in NWP Workflows at Scale Using DAOS" (arXiv 2404.03107):
//! deadline-carrying model writers stream fields every step while a
//! larger product-generation reader fleet fetches the previous step's
//! fields from the same pool. The report compares writer/reader p99 op
//! latency, missed-deadline counts and target-queue backlog depth
//! across the two index layouts, clean and under a seeded fault
//! campaign; `BENCH_nwp_cycle.json` carries the full rows including the
//! backlog time series. Everything is sim-derived and seed-fixed, so
//! reruns are byte-identical.

use std::fmt::Write as _;

use daosim_cluster::{ClusterSpec, FaultPlan, RetryPolicy};
use daosim_core::cycle::{run_nwp_cycle, CycleConfig, CycleOutcome, IndexLayout};
use daosim_kernel::SimDuration;

use crate::harness::{parallel_map, Report, Scale};

/// The experiment's deployment: one dual-engine server node, clients on
/// two nodes — small enough for CI, contended enough to separate the
/// layouts.
fn spec(faults: bool) -> ClusterSpec {
    let mut spec = ClusterSpec::tcp(1, 2);
    if faults {
        spec.retry = RetryPolicy::builder().operational().build();
    }
    spec
}

/// Cycle shape at `scale`: the quick (CI) shape is the core crate's
/// small contended cycle; the full shape triples the fleet and doubles
/// the fields so the shared-index serialization is unmistakable.
fn cycle_config(scale: &Scale, layout: IndexLayout) -> CycleConfig {
    let mut cfg = CycleConfig::small(layout);
    if scale.ops_per_proc >= 30 {
        cfg.writers = 12;
        cfg.readers = 36;
        cfg.steps = 3;
        cfg.fields_per_step = 6;
        cfg.field_bytes = 1024 * 1024;
        cfg.step_interval = SimDuration::from_millis(80);
        cfg.write_window = 8;
        cfg.read_window = 8;
        cfg.reads_per_step = 4;
    }
    cfg
}

/// The optional contention + failure axis: a seeded random campaign over
/// the first half of the cycle.
fn campaign(cfg: &CycleConfig, engines: u32) -> FaultPlan {
    let horizon = SimDuration::from_nanos(cfg.step_interval.as_nanos() * cfg.steps as u64 / 2);
    FaultPlan::random_campaign(11, engines, horizon)
}

fn p50_p99(lat: &Option<daosim_core::metrics::LatencyStats>) -> (f64, f64) {
    lat.as_ref().map_or((0.0, 0.0), |l| (l.p50_us, l.p99_us))
}

/// Runs the four configurations (layouts × faults) and renders the
/// report plus the `BENCH_nwp_cycle.json` artifact.
pub fn nwp_cycle(scale: &Scale) -> Report {
    let configs: Vec<(IndexLayout, bool)> = IndexLayout::all()
        .into_iter()
        .flat_map(|l| [(l, false), (l, true)])
        .collect();
    let results: Vec<(bool, CycleOutcome)> = parallel_map(configs, |&(layout, faults)| {
        let spec = spec(faults);
        let cfg = cycle_config(scale, layout);
        let plan = faults.then(|| campaign(&cfg, spec.engines()));
        (faults, run_nwp_cycle(spec, &cfg, plan.as_ref()))
    });

    let cfg = cycle_config(scale, IndexLayout::Shared);
    let mut rep = Report::new(
        "nwp-cycle",
        "Extension: operational NWP cycle — writer deadlines vs reader fleet, shared vs split index",
        &[
            "layout",
            "faults",
            "writer_p99_us",
            "reader_p99_us",
            "missed_deadlines",
            "backlog_peak",
            "failed_reads",
            "secs",
        ],
    );
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"nwp-cycle\",");
    let _ = writeln!(
        json,
        "  \"cluster\": \"tcp(server_nodes=1, client_nodes=2)\","
    );
    let _ = writeln!(json, "  \"writers\": {},", cfg.writers);
    let _ = writeln!(json, "  \"readers\": {},", cfg.readers);
    let _ = writeln!(json, "  \"steps\": {},", cfg.steps);
    let _ = writeln!(json, "  \"fields_per_step\": {},", cfg.fields_per_step);
    let _ = writeln!(json, "  \"field_bytes\": {},", cfg.field_bytes);
    let _ = writeln!(
        json,
        "  \"step_interval_ms\": {},",
        cfg.step_interval.as_nanos() / 1_000_000
    );
    let _ = writeln!(json, "  \"rows\": [");
    for (i, (faults, out)) in results.iter().enumerate() {
        let (wp50, wp99) = p50_p99(&out.writer_lat);
        let (rp50, rp99) = p50_p99(&out.reader_lat);
        rep.row(vec![
            out.layout.name().to_string(),
            faults.to_string(),
            format!("{wp99:.1}"),
            format!("{rp99:.1}"),
            out.deadlines_missed.to_string(),
            out.backlog_peak.to_string(),
            out.resilience.failed_reads.to_string(),
            format!("{:.4}", out.end_secs),
        ]);
        let series: Vec<String> = out
            .backlog_series
            .iter()
            .map(|(t, d)| format!("[{t}, {d}]"))
            .collect();
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"layout\": \"{}\",", out.layout.name());
        let _ = writeln!(json, "      \"faults\": {faults},");
        let _ = writeln!(json, "      \"end_secs\": {},", out.end_secs);
        let _ = writeln!(json, "      \"writer_p50_us\": {wp50},");
        let _ = writeln!(json, "      \"writer_p99_us\": {wp99},");
        let _ = writeln!(json, "      \"reader_p50_us\": {rp50},");
        let _ = writeln!(json, "      \"reader_p99_us\": {rp99},");
        let _ = writeln!(
            json,
            "      \"writer_class_p99_us\": {},",
            out.writer_p99_us
        );
        let _ = writeln!(
            json,
            "      \"reader_class_p99_us\": {},",
            out.reader_p99_us
        );
        let _ = writeln!(json, "      \"deadlines_met\": {},", out.deadlines_met);
        let _ = writeln!(
            json,
            "      \"deadlines_missed\": {},",
            out.deadlines_missed
        );
        let _ = writeln!(
            json,
            "      \"worst_lateness_ms\": {},",
            out.worst_lateness_ms
        );
        let _ = writeln!(json, "      \"backlog_peak\": {},", out.backlog_peak);
        let _ = writeln!(json, "      \"backlog_series\": [{}],", series.join(", "));
        let _ = writeln!(json, "      \"fields_written\": {},", out.fields_written);
        let _ = writeln!(json, "      \"fields_read\": {},", out.fields_read);
        let _ = writeln!(
            json,
            "      \"failed_writes\": {},",
            out.resilience.failed_writes
        );
        let _ = writeln!(
            json,
            "      \"failed_reads\": {},",
            out.resilience.failed_reads
        );
        let _ = writeln!(json, "      \"retries\": {}", out.resilience.retries);
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ],");

    // The crossover figure: shared-index cost relative to split, clean.
    let shared = &results[0].1;
    let split = &results[2].1;
    let end_ratio = shared.end_secs / split.end_secs;
    let (_, shared_p99) = p50_p99(&shared.writer_lat);
    let (_, split_p99) = p50_p99(&split.writer_lat);
    let p99_ratio = if split_p99 > 0.0 {
        shared_p99 / split_p99
    } else {
        0.0
    };
    let _ = writeln!(json, "  \"crossover\": {{");
    let _ = writeln!(json, "    \"shared_over_split_end_ratio\": {end_ratio},");
    let _ = writeln!(
        json,
        "    \"shared_over_split_writer_p99_ratio\": {p99_ratio}"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    rep.note(format!(
        "{} writers ({} steps x {} fields, deadline = step interval) vs {} readers x {} reads/step; \
         shared index is {end_ratio:.2}x split on cycle end, {p99_ratio:.2}x on writer p99",
        cfg.writers, cfg.steps, cfg.fields_per_step, cfg.readers, cfg.reads_per_step
    ));
    rep.artifact("BENCH_nwp_cycle.json", json);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_every_layout_fault_combination() {
        let rep = nwp_cycle(&Scale::quick());
        assert_eq!(rep.rows().len(), 4, "2 layouts x faults on/off");
        assert_eq!(rep.artifacts().len(), 1);
        assert_eq!(rep.artifacts()[0].0, "BENCH_nwp_cycle.json");
        // Clean shared-index must never beat split on cycle end time.
        let secs: Vec<f64> = rep.rows().iter().map(|r| r[7].parse().unwrap()).collect();
        assert!(
            secs[0] >= secs[2],
            "shared {} vs split {}",
            secs[0],
            secs[2]
        );
    }

    #[test]
    fn cycle_experiment_is_deterministic() {
        let a = nwp_cycle(&Scale::quick());
        let b = nwp_cycle(&Scale::quick());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.artifacts(), b.artifacts());
    }
}
