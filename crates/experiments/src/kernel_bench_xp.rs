//! Beyond-paper extension: kernel hot-path trajectory benchmark.
//!
//! Measures the rebuilt kernel data structures against the pre-rebuild
//! baseline on the million-task regime the ROADMAP's contention scenario
//! needs: (1) timer churn through the hierarchical wheel vs the retired
//! `BinaryHeap` calendar, (2) the poll storage round-trip through the
//! slab arena vs a `HashMap` remove/reinsert, (3) the composite old vs
//! new event loop (calendar + task storage + wake dedup together), and
//! (4) an end-to-end IOR run with 100k simulated client processes —
//! the scale demonstration the tentpole names.
//!
//! All `ns_per_event` figures are **wall-clock** (like
//! `BENCH_net.json`), so `results/BENCH_kernel.json` tracks the kernel
//! trajectory but is *not* byte-compared by CI. The IOR rows' simulated
//! bandwidths are deterministic, and are emitted separately as
//! `kernel_ior_demo.txt` for the CI double-run `cmp` check.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::time::Instant;

use daosim_cluster::ClusterSpec;
use daosim_ior::{run_ior, FileMode, IorParams};
use daosim_kernel::calendar::{HeapCalendar, TimerWheel};
use daosim_kernel::{Sim, SimDuration};
use daosim_objstore::ObjectClass;

use crate::harness::{gib, Report, Scale};

/// Deterministic delta stream (splitmix64) shared by every variant, so
/// old and new structures process the identical event sequence.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mostly µs-scale service times, a tail of ms backoffs and far-future
/// deadlines — the delta mix simulated clients actually schedule.
fn churn_delta(rng: &mut u64) -> u64 {
    let r = splitmix64(rng);
    match r % 100 {
        0..=79 => 1 + (r >> 8) % (1 << 12),
        80..=97 => 1 + (r >> 8) % (1 << 24),
        _ => 1 + (r >> 8) % (1 << 34),
    }
}

struct Sizes {
    /// Timers resident in the calendar during churn.
    pending: u64,
    /// Pop-push cycles measured.
    events: u64,
    /// IOR scale: (server_nodes, client_nodes, procs_per_node, KiB/proc).
    ior: (u16, u16, u32, u64),
}

fn sizes(scale: &Scale) -> Sizes {
    if scale.ops_per_proc >= 60 {
        Sizes {
            pending: 1_000_000,
            events: 1_000_000,
            ior: (4, 250, 400, 256), // 100_000 client processes
        }
    } else {
        Sizes {
            pending: 50_000,
            events: 100_000,
            ior: (2, 16, 250, 64), // 4_000 client processes
        }
    }
}

/// Wall ns/event for `events` pop-push cycles with `pending` resident
/// timers, through either calendar.
fn churn_ns(pending: u64, events: u64, use_wheel: bool) -> f64 {
    let mut wheel = TimerWheel::new();
    let mut heap = HeapCalendar::new();
    let mut rng = 0x1234_5678u64;
    let (mut seq, mut now) = (0u64, 0u64);
    for _ in 0..pending {
        let at = now + churn_delta(&mut rng);
        if use_wheel {
            wheel.push(at, seq, seq);
        } else {
            heap.push(at, seq, seq);
        }
        seq += 1;
    }
    let t0 = Instant::now();
    for _ in 0..events {
        let (at, _, _) = if use_wheel {
            wheel.pop_next().unwrap()
        } else {
            heap.pop_next().unwrap()
        };
        now = at;
        let next = now + churn_delta(&mut rng);
        if use_wheel {
            wheel.push(next, seq, seq);
        } else {
            heap.push(next, seq, seq);
        }
        seq += 1;
    }
    t0.elapsed().as_nanos() as f64 / events as f64
}

/// Wall ns/poll for the task-storage round-trip: `HashMap` remove →
/// touch → reinsert (the pre-slab executor) vs direct slab indexing.
fn poll_ns(slots: u64, polls: u64, use_slab: bool) -> f64 {
    let mut rng = 0xFEEDu64;
    if use_slab {
        let mut tasks: Vec<Option<Box<u64>>> = (0..slots).map(|_| Some(Box::new(0u64))).collect();
        let t0 = Instant::now();
        for _ in 0..polls {
            let id = (splitmix64(&mut rng) % slots) as usize;
            let mut fut = tasks[id].take().unwrap();
            *fut += 1;
            tasks[id] = Some(fut);
        }
        t0.elapsed().as_nanos() as f64 / polls as f64
    } else {
        let mut tasks: HashMap<u64, Box<u64>> = (0..slots).map(|i| (i, Box::new(0u64))).collect();
        let t0 = Instant::now();
        for _ in 0..polls {
            let id = splitmix64(&mut rng) % slots;
            let mut fut = tasks.remove(&id).unwrap();
            *fut += 1;
            tasks.insert(id, fut);
        }
        t0.elapsed().as_nanos() as f64 / polls as f64
    }
}

/// The composite hot loop, old shape vs new shape. Per event the old
/// kernel did: heap pop, wake-`HashSet` remove, `HashMap` future
/// remove → poll → reinsert, `HashSet` insert + heap push to
/// reschedule. The new kernel: wheel pop, generation-stamp check, slab
/// index, stamp + wheel push.
fn loop_ns(pending: u64, events: u64, new_kernel: bool) -> f64 {
    let mut rng = 0x5EED_0001u64;
    let (mut seq, mut now) = (0u64, 0u64);
    if new_kernel {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut slab: Vec<Option<Box<u64>>> = (0..pending).map(|_| Some(Box::new(0u64))).collect();
        let mut stamps: Vec<u64> = vec![0; pending as usize];
        for slot in 0..pending {
            wheel.push(now + churn_delta(&mut rng), seq, slot);
            seq += 1;
        }
        let t0 = Instant::now();
        for round in 0..events {
            let (at, _, slot) = wheel.pop_next().unwrap();
            now = at;
            let gen = round + 1;
            if stamps[slot as usize] != gen {
                stamps[slot as usize] = gen;
                let fut = slab[slot as usize].as_mut().unwrap();
                **fut += 1;
            }
            wheel.push(now + churn_delta(&mut rng), seq, slot);
            seq += 1;
        }
        t0.elapsed().as_nanos() as f64 / events as f64
    } else {
        let mut heap: HeapCalendar<u64> = HeapCalendar::new();
        let mut tasks: HashMap<u64, Box<u64>> = (0..pending).map(|i| (i, Box::new(0u64))).collect();
        let mut woken: HashSet<u64> = HashSet::new();
        for slot in 0..pending {
            heap.push(now + churn_delta(&mut rng), seq, slot);
            seq += 1;
        }
        let t0 = Instant::now();
        for _ in 0..events {
            let (at, _, slot) = heap.pop_next().unwrap();
            now = at;
            woken.remove(&slot);
            let mut fut = tasks.remove(&slot).unwrap();
            *fut += 1;
            tasks.insert(slot, fut);
            woken.insert(slot);
            heap.push(now + churn_delta(&mut rng), seq, slot);
            seq += 1;
        }
        t0.elapsed().as_nanos() as f64 / events as f64
    }
}

/// End-to-end executor throughput: tasks sleeping in a loop, every
/// event exercising calendar, slab, waker and wake-queue together.
fn executor_ns(tasks: u32, sleeps: u32) -> f64 {
    let sim = Sim::new();
    for i in 0..tasks {
        let handle = sim.clone();
        sim.spawn(async move {
            for k in 0..sleeps {
                handle
                    .sleep(SimDuration::from_nanos(1 + ((i + k) % 97) as u64))
                    .await;
            }
        });
    }
    let t0 = Instant::now();
    sim.run().expect_quiescent();
    t0.elapsed().as_nanos() as f64 / (tasks as f64 * sleeps as f64)
}

/// The tentpole's scale demonstration plus the trajectory table.
pub fn kernel_bench(scale: &Scale) -> Report {
    let sz = sizes(scale);
    let wheel = churn_ns(sz.pending, sz.events, true);
    let heap = churn_ns(sz.pending, sz.events, false);
    let slab = poll_ns(sz.pending, sz.events, true);
    let hashmap = poll_ns(sz.pending, sz.events, false);
    let new_loop = loop_ns(sz.pending, sz.events, true);
    let old_loop = loop_ns(sz.pending, sz.events, false);
    let exec = executor_ns((sz.events / 10).max(1_000) as u32, 10);

    let (servers, client_nodes, ppn, kib) = sz.ior;
    let procs = client_nodes as u32 * ppn;
    let params = IorParams {
        transfer_bytes: kib * 1024,
        segments: 1,
        procs_per_node: ppn,
        class: ObjectClass::S1,
        iterations: 1,
        file_mode: FileMode::FilePerProcess,
        inflight: 1,
        api: daosim_ior::Api::Daos,
    };
    let t0 = Instant::now();
    let ior = run_ior(ClusterSpec::tcp(servers, client_nodes), params);
    let ior_wall = t0.elapsed().as_secs_f64();

    let mut rep = Report::new(
        "kernel-bench",
        "Extension: kernel hot-path ns/event (timer wheel + slab arena vs heap + hashmap)",
        &["workload", "variant", "ops", "ns_per_op", "speedup"],
    );
    let spd = |new: f64, old: f64| format!("{:.2}x", old / new);
    let mut pair =
        |workload: &str, new_name: &str, new: f64, old_name: &str, old: f64, ops: u64| {
            rep.row(vec![
                workload.into(),
                new_name.into(),
                ops.to_string(),
                format!("{new:.1}"),
                spd(new, old),
            ]);
            rep.row(vec![
                workload.into(),
                old_name.into(),
                ops.to_string(),
                format!("{old:.1}"),
                "1.00x".into(),
            ]);
        };
    pair("timer_churn", "wheel", wheel, "heap", heap, sz.events);
    pair("task_poll", "slab", slab, "hashmap", hashmap, sz.events);
    pair(
        "event_loop",
        "wheel+slab+stamp",
        new_loop,
        "heap+hashmap+hashset",
        old_loop,
        sz.events,
    );
    rep.row(vec![
        "executor_sleep".into(),
        "end-to-end".into(),
        sz.events.to_string(),
        format!("{exec:.1}"),
        "-".into(),
    ]);
    rep.row(vec![
        format!("ior_{procs}_clients"),
        "end-to-end".into(),
        procs.to_string(),
        format!("{:.2e}", ior_wall * 1e9 / procs as f64),
        "-".into(),
    ]);
    rep.note(format!(
        "{} pending timers; ns_per_op is wall-clock (machine-dependent, not byte-compared); \
         IOR: {} procs x {} KiB completed in {:.1}s wall",
        sz.pending, procs, kib, ior_wall
    ));

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"kernel-bench\",");
    let _ = writeln!(json, "  \"schema\": \"kernel-bench/v1\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"pending_timers\": {}, \"events\": {}}},",
        sz.pending, sz.events
    );
    let _ = writeln!(
        json,
        "  \"timer_churn\": {{\"wheel_ns_per_event\": {wheel:.1}, \
         \"heap_ns_per_event\": {heap:.1}, \"speedup\": {:.2}}},",
        heap / wheel
    );
    let _ = writeln!(
        json,
        "  \"task_poll\": {{\"slab_ns_per_poll\": {slab:.1}, \
         \"hashmap_ns_per_poll\": {hashmap:.1}, \"speedup\": {:.2}}},",
        hashmap / slab
    );
    let _ = writeln!(
        json,
        "  \"event_loop\": {{\"new_ns_per_event\": {new_loop:.1}, \
         \"old_ns_per_event\": {old_loop:.1}, \"speedup\": {:.2}}},",
        old_loop / new_loop
    );
    let _ = writeln!(
        json,
        "  \"executor_sleep\": {{\"ns_per_event\": {exec:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"ior_demo\": {{\"procs\": {procs}, \"kib_per_proc\": {kib}, \
         \"write_gib_s\": {}, \"read_gib_s\": {}, \"wall_s\": {ior_wall:.1}}}",
        gib(ior.write_bw()),
        gib(ior.read_bw())
    );
    let _ = writeln!(json, "}}");
    rep.artifact("BENCH_kernel.json", json);

    // Simulated results only — deterministic, byte-compared by the CI
    // double-run `cmp` smoke step.
    let mut demo = String::new();
    let _ = writeln!(demo, "kernel_ior_demo v1");
    let _ = writeln!(
        demo,
        "spec: servers={servers} client_nodes={client_nodes} ppn={ppn} procs={procs}"
    );
    let _ = writeln!(
        demo,
        "transfer: {kib} KiB x 1 segment, S1, file-per-process"
    );
    let _ = writeln!(demo, "write_gib_s: {}", gib(ior.write_bw()));
    let _ = writeln!(demo, "read_gib_s: {}", gib(ior.read_bw()));
    rep.artifact("kernel_ior_demo.txt", demo);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_kernel_bench_reports_and_demo_artifact() {
        let rep = kernel_bench(&Scale::quick());
        assert!(rep.rows().len() >= 8);
        let names: Vec<&str> = rep.artifacts().iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"BENCH_kernel.json"));
        assert!(names.contains(&"kernel_ior_demo.txt"));
        let demo = &rep
            .artifacts()
            .iter()
            .find(|(n, _)| n == "kernel_ior_demo.txt")
            .unwrap()
            .1;
        // The demo artifact must be simulated-time only (deterministic):
        // a positive bandwidth and no wall-clock figures.
        assert!(demo.contains("procs=4000"), "unexpected demo: {demo}");
        assert!(
            !demo.contains("wall"),
            "wall-clock leaked into demo: {demo}"
        );
    }
}
