//! Beyond-paper extension: the cost and value of replicated object
//! classes.
//!
//! The paper notes DAOS objects "can be configured for replication and
//! striping" (§3) but only benchmarks striping. This experiment measures
//! what the missing half would have shown: the write-bandwidth cost of
//! two-way replication (`RP_2G1`) and 2+1 erasure coding (`EC_2P1`)
//! versus unprotected classes, and the availability each buys — the
//! fraction of the archive that stays readable after an engine loss
//! (EC reads reconstruct lost cells from survivor + parity).

use std::rc::Rc;

use daosim_cluster::{ClusterSpec, Deployment, SimClient};
use daosim_core::workload::payload;
use daosim_kernel::Sim;
use daosim_net::GIB;
use daosim_objstore::api::{ArrayHandle, DaosApi};
use daosim_objstore::{DaosError, ObjectClass, OidAllocator, Uuid};

use crate::harness::{gib, parallel_map, Report, Scale};

const MIB: u64 = 1024 * 1024;

struct Run {
    write_bw: f64,
    read_bw: f64,
    survival_pct: f64,
}

/// Writes `ops` 1 MiB arrays per process, kills one engine, then reads
/// everything back, counting survivors.
fn run_class(class: ObjectClass, procs: u32, ops: u32) -> Run {
    let sim = Sim::new();
    // Two server nodes (4 engines) so EC's three cells always span more
    // fault domains than one engine loss removes.
    let spec = ClusterSpec::tcp(2, 2);
    let d = Deployment::new(&sim, spec);
    let data = payload(MIB, 11);
    let stats: Rc<std::cell::RefCell<(f64, f64, u64, u64)>> = Rc::default();

    {
        let (d, data, stats) = (Rc::clone(&d), data.clone(), Rc::clone(&stats));
        let sim2 = sim.clone();
        sim.spawn(async move {
            // Write phase: every process in parallel.
            let writers: Vec<_> = (0..procs)
                .map(|p| {
                    let d = Rc::clone(&d);
                    let data = data.clone();
                    Box::pin(async move {
                        let client = SimClient::for_process(&d, (p % 2) as u16, p / 2);
                        let cont = client
                            .cont_open_or_create(Uuid::from_name(b"repl"))
                            .await
                            .unwrap();
                        let mut alloc = OidAllocator::new(p + 1);
                        for _ in 0..ops {
                            let oid = alloc.next(class);
                            let h = client.array_create(&cont, oid).await.unwrap();
                            client
                                .array_write(&cont, &h, 0, data.clone())
                                .await
                                .unwrap();
                        }
                    })
                })
                .collect();
            let t0 = sim2.now();
            daosim_kernel::sync::join_all(writers).await;
            let write_secs = (sim2.now() - t0).as_secs_f64();

            // Fault: one of the two engines goes down.
            d.kill_engine(0);

            // Read phase: count what survives.
            let readers: Vec<_> = (0..procs)
                .map(|p| {
                    let d = Rc::clone(&d);
                    Box::pin(async move {
                        let client = SimClient::for_process(&d, (p % 2) as u16, p / 2);
                        let cont = client
                            .cont_open_or_create(Uuid::from_name(b"repl"))
                            .await
                            .unwrap();
                        let mut alloc = OidAllocator::new(p + 1);
                        let mut ok = 0u64;
                        let mut lost = 0u64;
                        for _ in 0..ops {
                            let oid = alloc.next(class);
                            // Readers skip the open round-trip on purpose:
                            // the experiment measures raw degraded reads.
                            let h = ArrayHandle::from_open(oid);
                            match client.array_read(&cont, &h, 0, MIB).await {
                                Ok(_) => ok += 1,
                                Err(DaosError::EngineUnavailable(_)) => lost += 1,
                                Err(e) => panic!("unexpected: {e}"),
                            }
                        }
                        (ok, lost)
                    })
                })
                .collect();
            let t1 = sim2.now();
            let results = daosim_kernel::sync::join_all(readers).await;
            let read_secs = (sim2.now() - t1).as_secs_f64();
            let (ok, lost) = results
                .iter()
                .fold((0u64, 0u64), |(a, b), (o, l)| (a + o, b + l));
            *stats.borrow_mut() = (write_secs, read_secs, ok, lost);
        });
    }
    sim.run().expect_quiescent();
    let (write_secs, read_secs, ok, lost) = *stats.borrow();
    let total_bytes = (procs as u64 * ops as u64 * MIB) as f64;
    Run {
        write_bw: total_bytes / GIB / write_secs,
        read_bw: (ok * MIB) as f64 / GIB / read_secs.max(1e-9),
        survival_pct: 100.0 * ok as f64 / (ok + lost) as f64,
    }
}

pub fn replication(scale: &Scale) -> Report {
    let ppn = *scale.fieldio_ppn.last().unwrap_or(&8);
    let ops = scale.ops_per_proc.min(40);
    let classes = vec![
        ObjectClass::S1,
        ObjectClass::S2,
        ObjectClass::RP2,
        ObjectClass::EC2P1,
    ];
    let results = parallel_map(classes, |&class| (class, run_class(class, ppn * 2, ops)));
    let mut rep = Report::new(
        "replication",
        "Extension: replication (RP_2G1) cost vs availability after engine loss",
        &["class", "write_GiB/s", "degraded_read_GiB/s", "survival_%"],
    );
    for (class, r) in results {
        rep.row(vec![
            class.name().to_string(),
            gib(r.write_bw),
            gib(r.read_bw),
            format!("{:.1}", r.survival_pct),
        ]);
    }
    rep.note("2 dual-engine server nodes; one engine killed between write and read phases");
    rep.note(
        "RP2 pays ~2x write cost, EC2P1 ~1.5x; both keep 100% readable \
              (EC degraded reads pay reconstruction)",
    );
    rep
}
