//! Beyond-paper extension: schedule-perturbation fuzzing as an
//! experiment.
//!
//! Runs the fixed fuzz corpus (`daosim_cluster::fuzz`, seeds `0..N`)
//! under the full policy roster — FIFO reference, LIFO, two random-pick
//! streams, two wake-delay magnitudes, plus one writer-priority
//! admission slot on the FIFO schedule — and reports, per policy
//! family, how many seeds were checked and how many diverged. A healthy kernel
//! reports zero divergences everywhere; any non-zero cell is a
//! schedule-invariance bug and the row's detail column carries the first
//! shrunk repro. Everything is seed-derived, so reruns are
//! byte-identical.

use std::fmt::Write as _;

use daosim_cluster::fuzz::{fuzz_corpus, FuzzReport};
use daosim_kernel::SchedPolicy;

use crate::harness::{parallel_map, Report, Scale};

/// Corpus sizes: quick keeps CI smoke cheap, full matches the
/// `daosctl fuzz --seeds 256` acceptance run.
fn corpus_len(scale: &Scale) -> u64 {
    if scale.ops_per_proc >= 60 {
        256
    } else {
        64
    }
}

fn family(name: &str) -> fn(&SchedPolicy) -> bool {
    match name {
        "lifo" => |p: &SchedPolicy| matches!(p, SchedPolicy::Lifo),
        "random" => |p: &SchedPolicy| matches!(p, SchedPolicy::Random { .. }),
        "wake-delay" => |p: &SchedPolicy| matches!(p, SchedPolicy::WakeDelay { .. }),
        _ => |_: &SchedPolicy| true,
    }
}

/// One row per perturbation family plus the combined roster.
pub fn sched_fuzz(scale: &Scale) -> Report {
    let n = corpus_len(scale);
    const FAMILIES: [&str; 4] = ["lifo", "random", "wake-delay", "all"];
    let results: Vec<(String, FuzzReport)> = parallel_map(FAMILIES.to_vec(), |name| {
        (name.to_string(), fuzz_corpus(0..n, family(name)))
    });

    let mut rep = Report::new(
        "sched-fuzz",
        "Extension: differential schedule-perturbation fuzzing of the kernel executor",
        &["policies", "seeds", "divergences", "first_failure"],
    );
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"sched-fuzz\",");
    let _ = writeln!(json, "  \"corpus\": \"seeds 0..{n}\",");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, (name, r)) in results.iter().enumerate() {
        let first = r
            .failures
            .first()
            .map(|f| f.repro())
            .unwrap_or_else(|| "-".into());
        rep.row(vec![
            name.clone(),
            r.seeds_run.to_string(),
            r.failures.len().to_string(),
            first.clone(),
        ]);
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"policies\": \"{name}\", \"seeds\": {}, \"divergences\": {}}}{comma}",
            r.seeds_run,
            r.failures.len()
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    rep.note(format!(
        "fixed corpus seeds 0..{n}; FIFO is the reference in every row and \
         every row also runs the writer-priority admission slot; divergence \
         = per-event outcome, final pool state, byte conservation or \
         quiescence differing from FIFO"
    ));
    rep.artifact("BENCH_sched_fuzz.json", json);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_corpus_reports_every_family_clean() {
        let rep = sched_fuzz(&Scale::quick());
        assert_eq!(rep.rows().len(), 4);
        for row in rep.rows() {
            assert_eq!(row[2], "0", "family {} diverged: {}", row[0], row[3]);
        }
    }
}
