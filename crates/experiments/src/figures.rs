//! Figure 3–7 runners.

use daosim_cluster::ClusterSpec;
use daosim_core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim_core::patterns::{run_pattern_a, run_pattern_b, PatternConfig, PatternResult};
use daosim_core::workload::Contention;
use daosim_ior::{best_over_ppn, IorParams};
use daosim_net::ProviderProfile;
use daosim_objstore::ObjectClass;

use crate::harness::{gib, parallel_map, Report, Scale};

const MIB: u64 = 1024 * 1024;

fn field_cfg(
    cluster: ClusterSpec,
    mode: FieldIoMode,
    contention: Contention,
    ppn: u32,
    ops: u32,
    field_bytes: u64,
) -> PatternConfig {
    PatternConfig {
        cluster,
        fieldio: FieldIoConfig::builder().mode(mode).build(),
        contention,
        procs_per_node: ppn,
        ops_per_proc: ops,
        field_bytes,
        verify: false,
    }
}

fn best_pattern<F: Fn(&PatternConfig) -> PatternResult>(
    run: F,
    mut cfg: PatternConfig,
    ppns: &[u32],
) -> PatternResult {
    let mut best: Option<PatternResult> = None;
    for &ppn in ppns {
        cfg.procs_per_node = ppn;
        let r = run(&cfg);
        let better = match &best {
            Some(b) => r.aggregate_gib() > b.aggregate_gib(),
            None => true,
        };
        if better {
            best = Some(r);
        }
    }
    best.expect("ppn sweep was empty")
}

/// Fig. 3 — IOR access pattern A over server-node × client-node counts.
pub fn fig3(scale: &Scale) -> Report {
    let combos: Vec<(u16, u16)> = vec![
        (1, 1),
        (1, 2),
        (1, 4),
        (2, 1),
        (2, 2),
        (2, 4),
        (4, 4),
        (4, 8),
        (8, 8),
        (8, 16),
        (10, 20),
    ];
    let segments = scale.segments;
    let (small, large) = (scale.ppn_sweep.clone(), scale.ppn_sweep_large.clone());
    let results = parallel_map(combos, |&(servers, clients)| {
        let spec = ClusterSpec::tcp(servers, clients);
        let ppns = if servers >= 8 || clients >= 8 {
            &large
        } else {
            &small
        };
        let params = IorParams {
            transfer_bytes: MIB,
            segments,
            procs_per_node: 0,
            class: ObjectClass::S1,
            iterations: 1,
            file_mode: daosim_ior::FileMode::FilePerProcess,
            inflight: 1,
            api: daosim_ior::Api::Daos,
        };
        let (w, r) = best_over_ppn(spec, ppns, params);
        (servers, clients, w, r)
    });
    let mut rep = Report::new(
        "fig3",
        "Fig. 3: IOR pattern A synchronous bandwidth vs server/client nodes",
        &[
            "server_nodes",
            "client_nodes",
            "write_GiB/s",
            "read_GiB/s",
            "write_per_engine",
            "read_per_engine",
        ],
    );
    for (s, c, w, r) in results {
        let engines = (s as f64) * 2.0;
        rep.row(vec![
            s.to_string(),
            c.to_string(),
            gib(w),
            gib(r),
            gib(w / engines),
            gib(r / engines),
        ]);
    }
    rep.note("paper scaling: ~2.5 GiB/s write, ~3.75 GiB/s read per engine; 2x clients best");
    rep
}

/// Fig. 4 — Field I/O, high contention (single shared forecast index KV),
/// patterns A and B, all three modes, over server node counts.
pub fn fig4(scale: &Scale) -> Report {
    fieldio_figure(
        scale,
        "fig4",
        "Fig. 4: Field I/O global timing bandwidth, HIGH contention",
        Contention::High,
        &[1, 2, 4, 8],
    )
}

/// Fig. 5 — Field I/O, low contention (forecast index KV per process).
pub fn fig5(scale: &Scale) -> Report {
    let mut rep = fieldio_figure(
        scale,
        "fig5",
        "Fig. 5: Field I/O global timing bandwidth, LOW contention",
        Contention::Low,
        &[1, 2, 4, 8, 12],
    );
    rep.note(
        "paper: full-mode pattern A failed (DAOS bug) beyond 8 server nodes; \
         the model shows throughput collapse instead of a crash",
    );
    rep
}

fn fieldio_figure(
    scale: &Scale,
    name: &str,
    title: &str,
    contention: Contention,
    server_counts: &[u16],
) -> Report {
    #[derive(Clone, Copy)]
    struct Cfg {
        pattern: char,
        mode: FieldIoMode,
        servers: u16,
    }
    let mut cfgs = Vec::new();
    for &servers in server_counts {
        for mode in FieldIoMode::all() {
            for pattern in ['A', 'B'] {
                cfgs.push(Cfg {
                    pattern,
                    mode,
                    servers,
                });
            }
        }
    }
    let ops = scale.ops_per_proc;
    let ppns = scale.fieldio_ppn.clone();
    let results = parallel_map(cfgs, |c| {
        let clients = c.servers * 2;
        let cluster = ClusterSpec::tcp(c.servers, clients);
        let cfg = field_cfg(cluster, c.mode, contention, 0, ops, MIB);
        let r = match c.pattern {
            'A' => best_pattern(run_pattern_a, cfg, &ppns),
            _ => best_pattern(run_pattern_b, cfg, &ppns),
        };
        (c.pattern, c.mode, c.servers, clients, r)
    });
    let mut rep = Report::new(
        name,
        title,
        &[
            "pattern",
            "mode",
            "server_nodes",
            "client_nodes",
            "write_GiB/s",
            "read_GiB/s",
            "aggregate_GiB/s",
            "agg_per_engine",
        ],
    );
    for (pattern, mode, servers, clients, r) in results {
        let engines = servers as f64 * 2.0;
        rep.row(vec![
            pattern.to_string(),
            mode.name().to_string(),
            servers.to_string(),
            clients.to_string(),
            gib(r.write.global_bw_gib),
            gib(r.read.global_bw_gib),
            gib(r.aggregate_gib()),
            gib(r.aggregate_gib() / engines),
        ]);
    }
    rep
}

/// Fig. 6 — object class × object size, Field I/O full mode, high
/// contention, 2 server nodes and 4 client nodes (pattern A).
pub fn fig6(scale: &Scale) -> Report {
    #[derive(Clone, Copy)]
    struct Cfg {
        class: ObjectClass,
        size_mib: u64,
    }
    let mut cfgs = Vec::new();
    for class in [ObjectClass::S1, ObjectClass::S2, ObjectClass::SX] {
        for size_mib in [1u64, 5, 10, 20] {
            cfgs.push(Cfg { class, size_mib });
        }
    }
    let ops = scale.ops_per_proc;
    let ppns = scale.fieldio_ppn.clone();
    let results = parallel_map(cfgs, |c| {
        let cluster = ClusterSpec::tcp(2, 4);
        let mut cfg = field_cfg(
            cluster,
            FieldIoMode::Full,
            Contention::High,
            0,
            // Keep total bytes comparable across sizes.
            (ops * 2 / c.size_mib.max(1) as u32).max(8),
            c.size_mib * MIB,
        );
        cfg.fieldio.array_class = c.class;
        cfg.fieldio.kv_class = c.class;
        let r = best_pattern(run_pattern_a, cfg, &ppns);
        (c.class, c.size_mib, r)
    });
    let mut rep = Report::new(
        "fig6",
        "Fig. 6: Field I/O full mode, object class x size (2 servers, 4 clients)",
        &["class", "size_MiB", "write_GiB/s", "read_GiB/s"],
    );
    for (class, size, r) in results {
        rep.row(vec![
            class.name().to_string(),
            size.to_string(),
            gib(r.write.global_bw_gib),
            gib(r.read.global_bw_gib),
        ]);
    }
    rep.note("paper: 1->5/10 MiB roughly doubles bandwidth, plateau/slight drop at 20 MiB");
    rep.note("paper: SX best for write, S2 best for read");
    rep
}

/// Fig. 7 — IOR over 4 DAOS server nodes, TCP vs PSM2 (single engine per
/// server, single socket per client — the PSM2 restriction).
pub fn fig7(scale: &Scale) -> Report {
    #[derive(Clone, Copy)]
    struct Cfg {
        provider: &'static str,
        clients: u16,
    }
    let mut cfgs = Vec::new();
    for provider in ["tcp", "psm2"] {
        for clients in [1u16, 2, 4, 8, 16] {
            cfgs.push(Cfg { provider, clients });
        }
    }
    let segments = scale.segments;
    let ppns: Vec<u32> = vec![4, 8, 12, 24];
    let results = parallel_map(cfgs, |c| {
        let mut spec = ClusterSpec::psm2(4, c.clients);
        spec.provider = ProviderProfile::by_name(c.provider).expect("known provider");
        let params = IorParams {
            transfer_bytes: MIB,
            segments,
            procs_per_node: 0,
            class: ObjectClass::S1,
            iterations: 1,
            file_mode: daosim_ior::FileMode::FilePerProcess,
            inflight: 1,
            api: daosim_ior::Api::Daos,
        };
        let (w, r) = best_over_ppn(spec, &ppns, params);
        (c.provider, c.clients, w, r)
    });
    let mut rep = Report::new(
        "fig7",
        "Fig. 7: IOR, 4 server nodes, TCP vs PSM2 (single-rail restriction)",
        &["provider", "client_nodes", "write_GiB/s", "read_GiB/s"],
    );
    for (p, c, w, r) in results {
        rep.row(vec![p.to_string(), c.to_string(), gib(w), gib(r)]);
    }
    rep.note("paper: PSM2 delivers 10-25% higher bandwidth with the same scaling shape");
    rep
}
