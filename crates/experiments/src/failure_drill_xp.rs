//! Beyond-paper extension: an operational failure drill.
//!
//! Runs a *paced* operational trace (forecast steps emitting replicated
//! fields on a fixed cadence, product generation reading them a step
//! later) while a deterministic fault campaign plays out underneath:
//! an engine is killed mid-window and rebuilt, a second engine suffers
//! a transient brownout, and the dead engine is eventually restarted.
//! Clients run the `RetryPolicy::builder().operational()` policy, so transient
//! failures are retried with backoff and the pool map is re-consulted
//! after failover.
//!
//! The report is an availability timeline — write/read throughput per
//! bucket with the injected fault marked — plus the resilience counters.
//! The drill's invariants (this is a drill, so they are asserted, not
//! just reported): every replicated field survives (zero failed
//! operations) and the retry machinery actually engaged (non-zero retry
//! count). Fixed seeds end to end make two runs byte-identical.

use daosim_cluster::{ClusterSpec, FaultPlan, RetryPolicy};
use daosim_core::fieldio::FieldIoConfig;
use daosim_core::metrics::anchored_bandwidth_timeline;
use daosim_core::trace::{replay_detailed, Pacing, ReplayOutcome, Trace};
use daosim_kernel::{SimDuration, SimTime};
use daosim_objstore::ObjectClass;

use crate::harness::{Report, Scale};

const MIB: u64 = 1024 * 1024;

/// Forecast-step cadence of the synthetic schedule.
fn step_interval() -> SimDuration {
    SimDuration::from_millis(60)
}

/// Cluster under drill: one dual-engine server node, operational retry.
fn drill_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::tcp(1, 2);
    spec.retry = RetryPolicy::builder().operational().build();
    spec
}

/// Replicate the whole lookup chain: arrays *and* index KVs, otherwise
/// the index is a single point of failure and fields are lost with the
/// engine even though their payload survives.
fn drill_fieldio() -> FieldIoConfig {
    FieldIoConfig {
        array_class: ObjectClass::RP2,
        kv_class: ObjectClass::RP2,
        ..Default::default()
    }
}

/// The campaign: kill engine 0 just before the step-1 write wave (60 ms)
/// and rebuild it immediately, brown out the surviving engine across the
/// 120 ms wave, restart the dead engine during step 3 (its remaps stay
/// installed — reintegration is not modelled). Fault times sit 1 ms
/// before op waves so in-flight operations genuinely collide with them.
fn drill_plan() -> FaultPlan {
    FaultPlan::new()
        .kill_and_rebuild(SimDuration::from_millis(59), 0)
        .brownout(
            SimDuration::from_millis(119),
            1,
            SimDuration::from_millis(10),
        )
        .restart(SimDuration::from_millis(170), 0)
}

/// Human label for the fault (if any) scheduled inside `[t, t+bucket)`.
fn fault_label(plan: &FaultPlan, t: SimTime, bucket: SimDuration) -> String {
    let (lo, hi) = (t.as_nanos(), t.as_nanos() + bucket.as_nanos());
    let mut labels = Vec::new();
    for ev in plan.events() {
        let at = ev.at().as_nanos();
        if at < lo || at >= hi {
            continue;
        }
        use daosim_cluster::FaultEvent::*;
        labels.push(match ev {
            Kill { engine, .. } => format!("kill+rebuild e{engine}"),
            Restart { engine, .. } => format!("restart e{engine}"),
            Brownout { engine, .. } => format!("brownout e{engine}"),
            DegradeNic { engine, .. } => format!("degrade-nic e{engine}"),
        });
    }
    labels.join(" + ")
}

/// Runs the drill and packages the availability/tardiness timeline.
pub fn failure_drill(scale: &Scale) -> Report {
    let procs = *scale.fieldio_ppn.first().unwrap_or(&8);
    let fields_per_step = (scale.ops_per_proc / 10).clamp(2, 6);
    let trace = Trace::synthesize_operational(procs, 4, fields_per_step, MIB, step_interval());
    let plan = drill_plan();
    let out: ReplayOutcome = replay_detailed(
        drill_spec(),
        drill_fieldio(),
        &trace,
        Pacing::Paced,
        Some(&plan),
    );

    let stats = out.stats;
    let r = stats.resilience;
    // Drill invariants: replication + retry must carry every field
    // through the campaign, and the campaign must actually have bitten.
    assert_eq!(
        (r.failed_writes, r.failed_reads),
        (0, 0),
        "replicated fields lost under the drill: {r:?}"
    );
    assert!(r.retries > 0, "the drill never exercised a retry: {r:?}");
    assert_eq!(r.faults_injected, plan.events().len() as u64);

    let bucket = SimDuration::from_millis(30);
    let end = SimTime::from_nanos((stats.end_secs * 1e9) as u64);
    let writes = anchored_bandwidth_timeline(&out.write_events, bucket, end);
    let reads = anchored_bandwidth_timeline(&out.read_events, bucket, end);

    let mut rep = Report::new(
        "failure-drill",
        "Failure drill: paced operational trace through kill -> rebuild -> restart",
        &["t_ms", "write_gib_s", "read_gib_s", "fault"],
    );
    for (w, rd) in writes.iter().zip(&reads) {
        rep.row(vec![
            format!("{}", w.t_ns / 1_000_000),
            format!("{:.2}", w.bw_gib),
            format!("{:.2}", rd.bw_gib),
            fault_label(&plan, SimTime::from_nanos(w.t_ns), bucket),
        ]);
    }
    rep.note(format!(
        "{} procs x 4 steps x {fields_per_step} fields of 1 MiB (RP2 arrays + RP2 index), paced",
        procs
    ));
    rep.note(format!(
        "resilience: {} retries, {} timeouts, {} failovers, {} gave up, {} faults injected",
        r.retries, r.timeouts, r.failovers, r.gave_up, r.faults_injected
    ));
    rep.note(format!(
        "failed ops: {} writes, {} reads (drill asserts both zero)",
        r.failed_writes, r.failed_reads
    ));
    rep.note(format!(
        "tardiness: mean {:.2} ms, max {:.2} ms; trace completed in {:.3} s",
        stats.mean_tardiness_ms, stats.max_tardiness_ms, stats.end_secs
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drill_is_deterministic_and_loses_nothing() {
        // Invariants (zero failed ops, retries > 0) are asserted inside
        // failure_drill; here we additionally pin run-to-run determinism
        // on the fully rendered artifact.
        let a = failure_drill(&Scale::quick()).render();
        let b = failure_drill(&Scale::quick()).render();
        assert_eq!(a, b, "two drill runs must be byte-identical");
        assert!(a.contains("kill+rebuild e0"));
        assert!(a.contains("brownout e1"));
        assert!(a.contains("restart e0"));
    }
}
