//! Two-tier media under the saturated NWP cycle: SCM-only vs SCM+NVMe,
//! with the background aggregation service on and off.
//!
//! The paper's NEXTGenIO testbed is SCM-only, but production DAOS pairs
//! the persistent-memory write buffer with an NVMe capacity tier and a
//! per-target aggregation service that migrates cold extents down once
//! the buffer fills past a watermark (DESIGN.md §14). This experiment
//! reruns the saturated shared-index `nwp-cycle` workload over the
//! {scm-only, tiered} × {aggregation on, off} grid with the write
//! buffer shrunk far below the cycle's foreground volume, so the tier
//! split actually engages: spill writes pay NVMe media time, reads pay
//! the occupancy-weighted NVMe mixture, and with aggregation on the
//! migration traffic contends with foreground I/O on the same target
//! service queues — the *aggregation-induced tail inflation* the
//! artifact quantifies. Everything is sim-derived and seed-fixed, so
//! reruns are byte-identical.

use std::fmt::Write as _;

use daosim_cluster::{AggregationConfig, ClusterSpec, NvmeSpec, ScmSpec, TierPolicy};
use daosim_core::cycle::{run_nwp_cycle, CycleConfig, CycleOutcome, IndexLayout};
use daosim_kernel::{AdmissionPolicy, SimDuration};

use crate::harness::{parallel_map, Report, Scale};

const MIB: u64 = 1024 * 1024;

/// Per-socket SCM budget for the tiered rows: 12 MiB per socket = 1 MiB
/// per target (12 targets/engine), far below the cycle's foreground
/// volume so the write buffer fills and the watermark machinery runs.
const TIERED_SCM_PER_SOCKET: u64 = 12 * MIB;

/// Placement threshold for the tiered rows: every cycle shard prefers
/// the write buffer (production small-I/O behaviour); NVMe fills by
/// spill and by aggregation, not by direct placement.
const TIERED_SCM_THRESHOLD: u64 = MIB;

/// The experiment's deployment — same one-server/two-client-node shape
/// as `nwp-cycle`; the tiered rows swap the media configuration only.
fn spec(tiered: bool) -> ClusterSpec {
    let mut spec = ClusterSpec::tcp(1, 2);
    if tiered {
        spec.calibration.scm = ScmSpec {
            capacity: TIERED_SCM_PER_SOCKET,
            ..spec.calibration.scm
        };
        // Aggressive watermarks: a single 512 KiB field parks a target
        // slice at 50% occupancy — under the default 75% high mark the
        // service would never activate while every further write
        // spills. 30%/10% makes any resident field eligible for
        // migration, which is the regime the experiment measures.
        spec.tiering = TierPolicy {
            nvme: Some(NvmeSpec::p4510_gen1()),
            scm_threshold: TIERED_SCM_THRESHOLD,
            high_watermark: 0.30,
            low_watermark: 0.10,
        };
    }
    spec
}

/// The saturated shared-index cycle shape from `nwp-cycle` (FIFO
/// admission), with the aggregation service optionally enabled. The
/// cycle is backlogged — it finishes steps well past the nominal
/// `steps × interval` — so the aggregation horizon runs 4× that span:
/// the service must outlive the congested tail of the workload, where
/// most writes are actually serviced (and most SCM fills happen), and
/// still leave the simulation quiescent-terminating. Aggregation-on
/// rows therefore report `end_secs` = the horizon when it exceeds the
/// workload's own end.
fn cycle_config(scale: &Scale, aggregation: bool) -> CycleConfig {
    let mut b = CycleConfig::builder(IndexLayout::Shared)
        .writers(6)
        .readers(32)
        .steps(3)
        .fields_per_step(3)
        .field_bytes(512 * 1024)
        .step_interval(SimDuration::from_millis(16))
        .write_window(4)
        .read_window(8)
        .reads_per_step(8);
    if scale.ops_per_proc >= 30 {
        b = b
            .writers(8)
            .readers(48)
            .steps(4)
            .fields_per_step(4)
            .step_interval(SimDuration::from_millis(25))
            .write_window(8);
    }
    let cfg = b
        .admission(AdmissionPolicy::Fifo)
        .build()
        .expect("experiment cycle shape is statically nonzero");
    let horizon =
        SimDuration::from_nanos(cfg.step_interval.as_nanos() * (cfg.steps as u64 + 1) * 4);
    CycleConfig {
        aggregation: aggregation.then(|| AggregationConfig::operational(horizon, 0xA66)),
        ..cfg
    }
}

/// One grid point: `(tiered media, aggregation service on)`.
type Config = (bool, bool);

fn configs() -> Vec<Config> {
    vec![(false, false), (false, true), (true, false), (true, true)]
}

fn media_name(tiered: bool) -> &'static str {
    if tiered {
        "tiered"
    } else {
        "scm-only"
    }
}

fn p50_p99(lat: &Option<daosim_core::metrics::LatencyStats>) -> (f64, f64) {
    lat.as_ref().map_or((0.0, 0.0), |l| (l.p50_us, l.p99_us))
}

/// Runs the four grid points and renders the report plus the
/// `BENCH_tiering.json` artifact.
pub fn tiering(scale: &Scale) -> Report {
    let results: Vec<(Config, CycleOutcome)> = parallel_map(configs(), |&(tiered, agg)| {
        let cfg = cycle_config(scale, agg);
        let out = run_nwp_cycle(spec(tiered), &cfg, None).expect("valid cycle config");
        ((tiered, agg), out)
    });

    let cfg = cycle_config(scale, false);
    let mut rep = Report::new(
        "tiering",
        "Extension: two-tier SCM+NVMe media — write-buffer spill and background aggregation under the saturated shared-index cycle",
        &[
            "media",
            "aggregation",
            "writer_p99_us",
            "reader_p99_us",
            "missed_deadlines",
            "scm_used_mib",
            "nvme_used_mib",
            "aggregated_mib",
            "secs",
        ],
    );
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"tiering\",");
    let _ = writeln!(
        json,
        "  \"cluster\": \"tcp(server_nodes=1, client_nodes=2)\","
    );
    let _ = writeln!(json, "  \"layout\": \"shared-index\",");
    let _ = writeln!(json, "  \"admission\": \"fifo\",");
    let _ = writeln!(json, "  \"writers\": {},", cfg.writers);
    let _ = writeln!(json, "  \"readers\": {},", cfg.readers);
    let _ = writeln!(json, "  \"steps\": {},", cfg.steps);
    let _ = writeln!(json, "  \"fields_per_step\": {},", cfg.fields_per_step);
    let _ = writeln!(json, "  \"field_bytes\": {},", cfg.field_bytes);
    let _ = writeln!(
        json,
        "  \"step_interval_ms\": {},",
        cfg.step_interval.as_nanos() / 1_000_000
    );
    let _ = writeln!(
        json,
        "  \"tiered_scm_per_socket\": {TIERED_SCM_PER_SOCKET},"
    );
    let _ = writeln!(json, "  \"tiered_scm_threshold\": {TIERED_SCM_THRESHOLD},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, ((tiered, agg), out)) in results.iter().enumerate() {
        let (wp50, wp99) = p50_p99(&out.writer_lat);
        let (rp50, rp99) = p50_p99(&out.reader_lat);
        rep.row(vec![
            media_name(*tiered).to_string(),
            agg.to_string(),
            format!("{wp99:.1}"),
            format!("{rp99:.1}"),
            out.deadlines_missed.to_string(),
            format!("{:.2}", out.scm_used as f64 / MIB as f64),
            format!("{:.2}", out.nvme_used as f64 / MIB as f64),
            format!("{:.2}", out.aggregated_bytes as f64 / MIB as f64),
            format!("{:.4}", out.end_secs),
        ]);
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"media\": \"{}\",", media_name(*tiered));
        let _ = writeln!(json, "      \"aggregation\": {agg},");
        let _ = writeln!(json, "      \"end_secs\": {},", out.end_secs);
        let _ = writeln!(json, "      \"writer_p50_us\": {wp50},");
        let _ = writeln!(json, "      \"writer_p99_us\": {wp99},");
        let _ = writeln!(json, "      \"reader_p50_us\": {rp50},");
        let _ = writeln!(json, "      \"reader_p99_us\": {rp99},");
        let _ = writeln!(
            json,
            "      \"writer_class_p99_us\": {},",
            out.writer_p99_us
        );
        let _ = writeln!(
            json,
            "      \"reader_class_p99_us\": {},",
            out.reader_p99_us
        );
        let _ = writeln!(json, "      \"deadlines_met\": {},", out.deadlines_met);
        let _ = writeln!(
            json,
            "      \"deadlines_missed\": {},",
            out.deadlines_missed
        );
        let _ = writeln!(json, "      \"backlog_peak\": {},", out.backlog_peak);
        let _ = writeln!(json, "      \"scm_used\": {},", out.scm_used);
        let _ = writeln!(json, "      \"nvme_used\": {},", out.nvme_used);
        let _ = writeln!(
            json,
            "      \"aggregated_bytes\": {},",
            out.aggregated_bytes
        );
        let _ = writeln!(json, "      \"fields_written\": {},", out.fields_written);
        let _ = writeln!(json, "      \"fields_read\": {},", out.fields_read);
        let _ = writeln!(
            json,
            "      \"failed_writes\": {},",
            out.resilience.failed_writes
        );
        let _ = writeln!(
            json,
            "      \"failed_reads\": {}",
            out.resilience.failed_reads
        );
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ],");

    // The headline figures. Tier cost: tiered/agg-off vs scm-only (both
    // clean FIFO) — what the shrunken write buffer plus NVMe spill does
    // to the writer tail. Aggregation tail inflation: tiered/agg-on vs
    // tiered/agg-off — what the migration traffic's service-queue grants
    // add on top.
    let scm_only = &results[0].1;
    let agg_off = &results[2].1;
    let agg_on = &results[3].1;
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let (_, scm_wp99) = p50_p99(&scm_only.writer_lat);
    let (_, off_wp99) = p50_p99(&agg_off.writer_lat);
    let (_, on_wp99) = p50_p99(&agg_on.writer_lat);
    let (_, off_rp99) = p50_p99(&agg_off.reader_lat);
    let (_, on_rp99) = p50_p99(&agg_on.reader_lat);
    let tier_cost = ratio(off_wp99, scm_wp99);
    let w_inflation = ratio(on_wp99, off_wp99);
    let r_inflation = ratio(on_rp99, off_rp99);
    let _ = writeln!(json, "  \"aggregation_tail\": {{");
    let _ = writeln!(
        json,
        "    \"tiered_over_scm_writer_p99_ratio\": {tier_cost},"
    );
    let _ = writeln!(
        json,
        "    \"agg_on_over_off_writer_p99_ratio\": {w_inflation},"
    );
    let _ = writeln!(
        json,
        "    \"agg_on_over_off_reader_p99_ratio\": {r_inflation},"
    );
    let _ = writeln!(
        json,
        "    \"aggregated_bytes\": {},",
        agg_on.aggregated_bytes
    );
    let _ = writeln!(json, "    \"scm_used_agg_on\": {},", agg_on.scm_used);
    let _ = writeln!(json, "    \"scm_used_agg_off\": {}", agg_off.scm_used);
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    rep.note(format!(
        "{} writers x {} steps x {} fields ({} KiB) vs {} readers on a {} MiB/socket write buffer; \
         tiered/agg-off writer p99 is {tier_cost:.2}x scm-only; aggregation migrates {:.2} MiB \
         and inflates writer p99 {w_inflation:.2}x, reader p99 {r_inflation:.2}x over agg-off",
        cfg.writers,
        cfg.steps,
        cfg.fields_per_step,
        cfg.field_bytes / 1024,
        cfg.readers,
        TIERED_SCM_PER_SOCKET / MIB,
        agg_on.aggregated_bytes as f64 / MIB as f64,
    ));
    rep.artifact("BENCH_tiering.json", json);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_media_by_aggregation_grid() {
        let rep = tiering(&Scale::quick());
        assert_eq!(rep.rows().len(), 4, "2 media x aggregation on/off");
        assert_eq!(rep.artifacts().len(), 1);
        assert_eq!(rep.artifacts()[0].0, "BENCH_tiering.json");
        // scm-only rows must never touch the capacity tier; the
        // aggregation service without an NVMe tier is inert.
        for row in &rep.rows()[..2] {
            assert_eq!(row[0], "scm-only");
            assert_eq!(row[6], "0.00", "scm-only row used NVMe: {row:?}");
            assert_eq!(row[7], "0.00", "scm-only row aggregated: {row:?}");
        }
    }

    #[test]
    fn tiered_rows_spill_and_aggregation_migrates() {
        let rep = tiering(&Scale::quick());
        let rows = rep.rows();
        let mib = |s: &str| s.parse::<f64>().unwrap();
        // The write buffer is sized far below the cycle's foreground
        // volume: both tiered rows must land bytes on NVMe.
        assert!(mib(&rows[2][6]) > 0.0, "agg-off spilled nothing: {rows:?}");
        assert!(mib(&rows[3][6]) > 0.0, "agg-on spilled nothing: {rows:?}");
        // With the service off nothing migrates; on, it must move real
        // bytes and leave SCM no fuller than the agg-off run.
        assert_eq!(mib(&rows[2][7]), 0.0);
        assert!(mib(&rows[3][7]) > 0.0, "aggregation never ran: {rows:?}");
        assert!(
            mib(&rows[3][5]) <= mib(&rows[2][5]),
            "aggregation must drain the write buffer: {rows:?}"
        );
    }

    #[test]
    fn tiering_experiment_is_deterministic() {
        let a = tiering(&Scale::quick());
        let b = tiering(&Scale::quick());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.artifacts(), b.artifacts());
    }
}
