//! `xp` — regenerate the paper's tables and figures.
//!
//! ```text
//! xp <experiment>... [--quick] [--out DIR] [--trace-out FILE]
//! xp all [--quick] [--out DIR]
//! xp --trace-out FILE            # only write the trace artifact
//! ```
//!
//! Experiments: table1 table2 fig3 fig4 fig5 fig6 fig7 ablations.
//! Results are printed and saved as `.txt`/`.csv` under `--out`
//! (default `results/`).

use std::path::PathBuf;
use std::time::Instant;

use daosim_experiments::harness::Scale;
use daosim_experiments::{run_and_save_to, write_fieldio_trace, EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: xp <experiment>... [--quick] [--out DIR] [--trace-out FILE]\n       \
         experiments: {} | all",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut scale = Scale::full();
    let mut out = PathBuf::from("results");
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "all" => names.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            "-h" | "--help" => usage(),
            other if EXPERIMENTS.contains(&other) => names.push(other.to_string()),
            _ => usage(),
        }
    }
    if names.is_empty() && trace_out.is_none() {
        usage();
    }
    names.dedup();
    let (mut stdout, mut stderr) = (std::io::stdout(), std::io::stderr());
    for name in &names {
        let t0 = Instant::now();
        run_and_save_to(&[name.as_str()], &scale, &out, &mut stdout, &mut stderr);
        eprintln!("[{name}] completed in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if let Some(path) = trace_out {
        let t0 = Instant::now();
        if let Err(e) = write_fieldio_trace(&path, &mut stderr) {
            eprintln!("trace export failed: {e}");
            std::process::exit(1);
        }
        eprintln!("[trace] completed in {:.1}s", t0.elapsed().as_secs_f64());
    }
}
