//! `xp` — regenerate the paper's tables and figures.
//!
//! ```text
//! xp <experiment>... [--quick] [--out DIR]
//! xp all [--quick] [--out DIR]
//! ```
//!
//! Experiments: table1 table2 fig3 fig4 fig5 fig6 fig7 ablations.
//! Results are printed and saved as `.txt`/`.csv` under `--out`
//! (default `results/`).

use std::path::PathBuf;
use std::time::Instant;

use daosim_experiments::harness::Scale;
use daosim_experiments::{run_and_save, EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: xp <experiment>... [--quick] [--out DIR]\n       \
         experiments: {} | all",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut scale = Scale::full();
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            "all" => names.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            "-h" | "--help" => usage(),
            other if EXPERIMENTS.contains(&other) => names.push(other.to_string()),
            _ => usage(),
        }
    }
    if names.is_empty() {
        usage();
    }
    names.dedup();
    for name in &names {
        let t0 = Instant::now();
        run_and_save(&[name.as_str()], &scale, &out);
        eprintln!("[{name}] completed in {:.1}s", t0.elapsed().as_secs_f64());
    }
}
