//! Beyond-paper extension: the in-flight window ablation for pipelined
//! field writes.
//!
//! The paper's FDB backend issues field writes synchronously; the DAOS
//! event-queue API (`daos_eq_*`) makes asynchronous pipelining natural.
//! This experiment sweeps the writer's in-flight window W over the same
//! workload and reports the achieved write throughput, isolating what
//! overlapping the index KV put with the array data write (and keeping W
//! fields in flight) buys on the default simulated deployment.
//!
//! Unlike the paper-replication experiments, *every* point here — W = 1
//! included — goes through [`FieldStore::pipelined_writer`], so the sweep
//! measures the window alone, not the writer implementation.

use std::rc::Rc;

use std::fmt::Write as _;

use daosim_cluster::{ClusterSpec, Deployment, SimClient};
use daosim_core::fieldio::{FieldIoConfig, FieldStore};
use daosim_core::key::FieldKey;
use daosim_core::workload::payload;
use daosim_kernel::Sim;
use daosim_net::GIB;

use crate::harness::{gib, parallel_map, Report, Scale};

const MIB: u64 = 1024 * 1024;

/// Windows swept; W = 1 is the synchronous baseline.
pub const WINDOWS: [u32; 5] = [1, 2, 4, 8, 16];

fn field_key(proc_id: u32, op: u32) -> FieldKey {
    FieldKey::from_pairs([
        ("class", "od".to_string()),
        ("stream", "oper".to_string()),
        ("expver", "0001".to_string()),
        ("date", "20290101".to_string()),
        ("time", "0000".to_string()),
        ("number", proc_id.to_string()),
        ("step", (op / 8).to_string()),
        ("field", (op % 8).to_string()),
    ])
}

/// One sweep point: `procs` writers, each pushing `fields` payloads of
/// `field_bytes` through a pipelined writer with window `w`. Returns
/// (simulated seconds, aggregate GiB/s).
fn run_window(w: u32, procs: u32, fields: u32, field_bytes: u64) -> (f64, f64) {
    let sim = Sim::new();
    let d = Deployment::new(&sim, ClusterSpec::tcp(1, 2));
    let data = payload(field_bytes, 17);
    for p in 0..procs {
        let (d, data) = (Rc::clone(&d), data.clone());
        sim.spawn(async move {
            let client = SimClient::for_process(&d, (p % 2) as u16, p / 2);
            let fs = FieldStore::connect(client, FieldIoConfig::default(), p + 1)
                .await
                .expect("connect failed");
            let mut writer = fs.pipelined_writer(w);
            for op in 0..fields {
                writer
                    .submit(&field_key(p, op), data.clone())
                    .await
                    .expect("write failed");
            }
            writer.flush().await.expect("flush failed");
        });
    }
    let end = sim.run().expect_quiescent().as_secs_f64();
    let total = procs as u64 * fields as u64 * field_bytes;
    (end, total as f64 / GIB / end)
}

/// Runs the window sweep and renders the report plus the
/// `BENCH_pipeline.json` artifact (attached to the report, saved next to
/// its CSV). All numbers are sim-derived, so reruns are byte-identical.
pub fn window_sweep(scale: &Scale) -> Report {
    let procs = 2u32;
    let fields = scale.ops_per_proc.max(8) * 2;
    let field_bytes = MIB;
    let results = parallel_map(WINDOWS.to_vec(), |&w| {
        let (secs, gib_s) = run_window(w, procs, fields, field_bytes);
        (w, secs, gib_s)
    });
    let base = results[0].2;
    let mut rep = Report::new(
        "pipeline-window",
        "Extension: pipelined field-write throughput vs in-flight window W",
        &["window", "write_GiB/s", "speedup_vs_W1", "secs"],
    );
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"pipeline-window\",");
    let _ = writeln!(
        json,
        "  \"cluster\": \"tcp(server_nodes=1, client_nodes=2)\","
    );
    let _ = writeln!(json, "  \"procs\": {procs},");
    let _ = writeln!(json, "  \"fields_per_proc\": {fields},");
    let _ = writeln!(json, "  \"field_bytes\": {field_bytes},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, (w, secs, gib_s)) in results.iter().enumerate() {
        let speedup = gib_s / base;
        rep.row(vec![
            w.to_string(),
            gib(*gib_s),
            format!("{speedup:.2}"),
            format!("{secs:.4}"),
        ]);
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"window\": {w}, \"secs\": {secs}, \"gib_s\": {gib_s}, \"speedup_vs_w1\": {speedup}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    rep.note(format!(
        "{procs} writer procs x {fields} x 1 MiB fields, Full mode, every W through the pipelined writer"
    ));
    rep.artifact("BENCH_pipeline.json", json);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_every_window_and_monotone_gain() {
        let rep = window_sweep(&Scale::quick());
        assert_eq!(rep.rows().len(), WINDOWS.len());
        let speedups: Vec<f64> = rep.rows().iter().map(|r| r[2].parse().unwrap()).collect();
        assert_eq!(speedups[0], 1.0, "W=1 is its own baseline");
        assert!(
            speedups.iter().all(|&s| s >= 0.99),
            "pipelining should never lose throughput: {speedups:?}"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let (s1, g1) = run_window(4, 2, 16, MIB);
        let (s2, g2) = run_window(4, 2, 16, MIB);
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(g1.to_bits(), g2.to_bits());
    }
}
