//! Shared experiment harness: scale presets, a parallel sweep runner, and
//! table/CSV reporting.
//!
//! Each simulation world is single-threaded and deterministic; sweeps
//! parallelise across configurations, one world per OS thread.

use std::cell::UnsafeCell;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::mem::MaybeUninit;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How big to run an experiment.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Field I/O operations per process (the paper uses 2000 purely to
    /// amortise real-world start-up jitter; the simulator reaches steady
    /// state far sooner).
    pub ops_per_proc: u32,
    /// IOR segments per process.
    pub segments: u32,
    /// Client process counts per node to sweep (best is reported).
    pub ppn_sweep: Vec<u32>,
    /// A reduced ppn sweep for the largest configurations.
    pub ppn_sweep_large: Vec<u32>,
    /// Process counts per node swept for the Field I/O patterns.
    pub fieldio_ppn: Vec<u32>,
}

impl Scale {
    /// The default evaluation scale (minutes of wall-clock on a laptop).
    pub fn full() -> Self {
        Scale {
            ops_per_proc: 60,
            segments: 100,
            ppn_sweep: vec![8, 16, 24, 48],
            ppn_sweep_large: vec![16, 32],
            fieldio_ppn: vec![16, 32],
        }
    }

    /// Smoke-test scale for CI and benches.
    pub fn quick() -> Self {
        Scale {
            ops_per_proc: 10,
            segments: 10,
            ppn_sweep: vec![4, 8],
            ppn_sweep_large: vec![8],
            fieldio_ppn: vec![4],
        }
    }
}

/// Per-slot output cells for [`parallel_map`]. The work-index counter
/// hands each slot to exactly one worker, so every cell has a single
/// writer and the scope join orders all writes before the read-back —
/// no lock needed around result storage.
struct OutputSlots<R> {
    cells: Vec<UnsafeCell<MaybeUninit<R>>>,
}

// SAFETY: workers access disjoint cells (one writer per index, enforced
// by the fetch_add work counter), and the thread-scope join synchronises
// their writes with the collecting thread.
unsafe impl<R: Send> Sync for OutputSlots<R> {}

/// Runs `f` over `items` on up to `available_parallelism` threads,
/// preserving input order in the output. Each worker writes results
/// straight into its claimed slots; the only shared mutable state is the
/// atomic work index.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let next = AtomicUsize::new(0);
    let out = OutputSlots {
        cells: (0..n)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
    };
    // Capture the Sync wrapper by reference, not its field (disjoint
    // closure capture would otherwise grab the Vec directly).
    let out_ref = &out;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                // SAFETY: `i` was claimed by this worker alone, so no
                // other thread reads or writes `cells[i]` until the scope
                // joins. A panic in `f` aborts the whole map via scope
                // propagation before any uninitialised cell is read.
                unsafe { (*out_ref.cells[i].get()).write(r) };
            });
        }
    });
    // The scope join guarantees every index < n was claimed and written.
    out.cells
        .into_iter()
        .map(|c| unsafe { c.into_inner().assume_init() })
        .collect()
}

/// A rendered results table with an attached CSV form.
pub struct Report {
    pub name: String,
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
    artifacts: Vec<(String, String)>,
}

impl Report {
    pub fn new(name: &str, title: &str, headers: &[&str]) -> Self {
        Report {
            name: name.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            artifacts: Vec::new(),
        }
    }

    /// Attaches an extra file saved verbatim alongside the CSV/text
    /// renderings (e.g. a machine-readable benchmark JSON).
    pub fn artifact(&mut self, filename: impl Into<String>, contents: impl Into<String>) {
        self.artifacts.push((filename.into(), contents.into()));
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Attached artifacts as `(filename, contents)` pairs, in attach
    /// order (exactly what [`save`](Self::save) writes to disk).
    pub fn artifacts(&self) -> &[(String, String)] {
        &self.artifacts
    }

    /// Fixed-width text rendering.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "== {} ==", self.title);
        let line = |s: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
            }
            let _ = writeln!(s);
        };
        line(&mut s, &self.headers);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut s, &rule);
        for row in &self.rows {
            line(&mut s, row);
        }
        for n in &self.notes {
            let _ = writeln!(s, "note: {n}");
        }
        s
    }

    /// GitHub-flavoured markdown table (for pasting into EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### {}\n", self.title);
        let _ = writeln!(s, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(s, "| {} |", row.join(" | "));
        }
        for n in &self.notes {
            let _ = writeln!(s, "\n_{n}_");
        }
        s
    }

    /// CSV rendering (RFC-4180-lite; our cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        s
    }

    /// Writes `results/<name>.csv` and `results/<name>.txt`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut csv = fs::File::create(dir.join(format!("{}.csv", self.name)))?;
        csv.write_all(self.to_csv().as_bytes())?;
        let mut txt = fs::File::create(dir.join(format!("{}.txt", self.name)))?;
        txt.write_all(self.render().as_bytes())?;
        for (filename, contents) in &self.artifacts {
            fs::write(dir.join(filename), contents)?;
        }
        Ok(())
    }
}

/// Formats a bandwidth cell.
pub fn gib(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single_inputs() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
        assert_eq!(parallel_map(vec![41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn parallel_map_slots_hold_owned_values() {
        // Heap-owning results exercise the per-slot writes: every value
        // must come back exactly once, in order, and drop cleanly.
        let items: Vec<usize> = (0..257).collect();
        let out = parallel_map(items, |&x| vec![x; (x % 5) + 1]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), (i % 5) + 1);
            assert!(v.iter().all(|&e| e == i));
        }
    }

    #[test]
    fn report_renders_and_csvs() {
        let mut r = Report::new("t", "Test", &["a", "bee"]);
        r.row(vec!["1".into(), "2".into()]);
        r.note("hello");
        let txt = r.render();
        assert!(txt.contains("Test") && txt.contains("bee") && txt.contains("note: hello"));
        assert_eq!(r.to_csv(), "a,bee\n1,2\n");
    }

    #[test]
    fn markdown_rendering() {
        let mut r = Report::new("t", "Test", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        let md = r.to_markdown();
        assert!(md.contains("### Test"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn report_rejects_ragged_rows() {
        let mut r = Report::new("t", "Test", &["a"]);
        r.row(vec!["1".into(), "2".into()]);
    }
}
