//! Shared experiment harness: scale presets, a parallel sweep runner, and
//! table/CSV reporting.
//!
//! Each simulation world is single-threaded and deterministic; sweeps
//! parallelise across configurations, one world per OS thread.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How big to run an experiment.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Field I/O operations per process (the paper uses 2000 purely to
    /// amortise real-world start-up jitter; the simulator reaches steady
    /// state far sooner).
    pub ops_per_proc: u32,
    /// IOR segments per process.
    pub segments: u32,
    /// Client process counts per node to sweep (best is reported).
    pub ppn_sweep: Vec<u32>,
    /// A reduced ppn sweep for the largest configurations.
    pub ppn_sweep_large: Vec<u32>,
    /// Process counts per node swept for the Field I/O patterns.
    pub fieldio_ppn: Vec<u32>,
}

impl Scale {
    /// The default evaluation scale (minutes of wall-clock on a laptop).
    pub fn full() -> Self {
        Scale {
            ops_per_proc: 60,
            segments: 100,
            ppn_sweep: vec![8, 16, 24, 48],
            ppn_sweep_large: vec![16, 32],
            fieldio_ppn: vec![16, 32],
        }
    }

    /// Smoke-test scale for CI and benches.
    pub fn quick() -> Self {
        Scale {
            ops_per_proc: 10,
            segments: 10,
            ppn_sweep: vec![4, 8],
            ppn_sweep_large: vec![8],
            fieldio_ppn: vec![4],
        }
    }
}

/// Runs `f` over `items` on up to `available_parallelism` threads,
/// preserving input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                out.lock().unwrap()[i] = Some(r);
            });
        }
    });
    out.into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker skipped an item"))
        .collect()
}

/// A rendered results table with an attached CSV form.
pub struct Report {
    pub name: String,
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    pub fn new(name: &str, title: &str, headers: &[&str]) -> Self {
        Report {
            name: name.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Fixed-width text rendering.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "== {} ==", self.title);
        let line = |s: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
            }
            let _ = writeln!(s);
        };
        line(&mut s, &self.headers);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut s, &rule);
        for row in &self.rows {
            line(&mut s, row);
        }
        for n in &self.notes {
            let _ = writeln!(s, "note: {n}");
        }
        s
    }

    /// GitHub-flavoured markdown table (for pasting into EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### {}\n", self.title);
        let _ = writeln!(s, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(s, "| {} |", row.join(" | "));
        }
        for n in &self.notes {
            let _ = writeln!(s, "\n_{n}_");
        }
        s
    }

    /// CSV rendering (RFC-4180-lite; our cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        s
    }

    /// Writes `results/<name>.csv` and `results/<name>.txt`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut csv = fs::File::create(dir.join(format!("{}.csv", self.name)))?;
        csv.write_all(self.to_csv().as_bytes())?;
        let mut txt = fs::File::create(dir.join(format!("{}.txt", self.name)))?;
        txt.write_all(self.render().as_bytes())?;
        Ok(())
    }
}

/// Formats a bandwidth cell.
pub fn gib(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn report_renders_and_csvs() {
        let mut r = Report::new("t", "Test", &["a", "bee"]);
        r.row(vec!["1".into(), "2".into()]);
        r.note("hello");
        let txt = r.render();
        assert!(txt.contains("Test") && txt.contains("bee") && txt.contains("note: hello"));
        assert_eq!(r.to_csv(), "a,bee\n1,2\n");
    }

    #[test]
    fn markdown_rendering() {
        let mut r = Report::new("t", "Test", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        let md = r.to_markdown();
        assert!(md.contains("### Test"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn report_rejects_ragged_rows() {
        let mut r = Report::new("t", "Test", &["a"]);
        r.row(vec!["1".into(), "2".into()]);
    }
}
