//! Beyond-paper extension: the I/O-server pipeline study.
//!
//! The paper's operational context (§1.2) routes model output through
//! dedicated I/O-server nodes before it reaches storage; the evaluation
//! benchmarks only the storage side. This experiment closes the loop:
//! it sweeps the model-rank to I/O-server ratio and reports storage-side
//! bandwidth alongside the end-to-end (model-to-durable) field latency —
//! the figure an operational deployment actually cares about.

use daosim_cluster::ClusterSpec;
use daosim_core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim_core::ioserver::{run_ioserver_pipeline, IoServerConfig};
use daosim_kernel::SimDuration;

use crate::harness::{gib, parallel_map, Report, Scale};

const MIB: u64 = 1024 * 1024;

pub fn pipeline(scale: &Scale) -> Report {
    #[derive(Clone, Copy)]
    struct Cfg {
        model_nodes: u16,
        ioserver_nodes: u16,
        ioservers_per_node: u32,
    }
    let cfgs = vec![
        Cfg {
            model_nodes: 2,
            ioserver_nodes: 1,
            ioservers_per_node: 2,
        },
        Cfg {
            model_nodes: 2,
            ioserver_nodes: 1,
            ioservers_per_node: 8,
        },
        Cfg {
            model_nodes: 4,
            ioserver_nodes: 1,
            ioservers_per_node: 8,
        },
        Cfg {
            model_nodes: 4,
            ioserver_nodes: 2,
            ioservers_per_node: 8,
        },
        Cfg {
            model_nodes: 8,
            ioserver_nodes: 2,
            ioservers_per_node: 8,
        },
    ];
    let fields_per_rank = (scale.ops_per_proc / 4).max(4);
    let results = parallel_map(cfgs, |c| {
        let cfg = IoServerConfig {
            cluster: ClusterSpec::tcp(2, c.model_nodes + c.ioserver_nodes),
            fieldio: FieldIoConfig::builder().mode(FieldIoMode::Full).build(),
            model_nodes: c.model_nodes,
            ranks_per_node: 8,
            ioservers_per_node: c.ioservers_per_node,
            fields_per_rank,
            steps: 2,
            field_bytes: 2 * MIB,
            encode_cost: SimDuration::from_micros(120),
        };
        let r = run_ioserver_pipeline(&cfg);
        (*c, r)
    });
    let mut rep = Report::new(
        "pipeline",
        "Extension: model -> I/O server -> DAOS pipeline (2 server nodes)",
        &[
            "model_nodes",
            "ioserver_nodes",
            "ioservers/node",
            "storage_GiB/s",
            "e2e_p50_ms",
            "e2e_p99_ms",
        ],
    );
    for (c, r) in results {
        rep.row(vec![
            c.model_nodes.to_string(),
            c.ioserver_nodes.to_string(),
            c.ioservers_per_node.to_string(),
            gib(r.storage.global_bw_gib),
            format!("{:.2}", r.end_to_end.p50_us / 1000.0),
            format!("{:.2}", r.end_to_end.p99_us / 1000.0),
        ]);
    }
    rep.note(
        "more I/O servers raise storage bandwidth until DAOS saturates; \
              over-subscribed model ranks show up as p99 latency growth",
    );
    rep
}
