//! Ablation studies: which modelled mechanisms are load-bearing for the
//! reproduced results (DESIGN.md §5).

use daosim_cluster::{Calibration, ClusterSpec};
use daosim_core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim_core::patterns::{run_pattern_a, run_pattern_b, PatternConfig};
use daosim_core::workload::Contention;
use daosim_ior::{run_ior, IorParams};
use daosim_kernel::SimDuration;
use daosim_net::mpi::{run_p2p, MpiP2pConfig};
use daosim_net::ProviderProfile;
use daosim_objstore::ObjectClass;

use crate::harness::{gib, Report, Scale};

const MIB: u64 = 1024 * 1024;

pub fn all(scale: &Scale) -> Vec<Report> {
    vec![
        single_stream_cap(scale),
        cont_table_cost(scale),
        kv_update_serialization(scale),
        ideal_vs_realistic(scale),
        frictionless(scale),
    ]
}

/// Removing the TCP single-stream cap (and its parallel-stream exponent)
/// collapses Table 2's scaling story: one stream saturates the host.
pub fn single_stream_cap(scale: &Scale) -> Report {
    let mut uncapped = ProviderProfile::tcp();
    uncapped.per_flow_cap_gib = 1e6;
    uncapped.stream_alpha = 0.0;
    let messages = scale.segments.max(10);
    let mut rep = Report::new(
        "ablation_stream_cap",
        "Ablation: TCP single-stream cap (Table 2 mechanism)",
        &["variant", "pairs", "aggregate_GiB/s"],
    );
    for (name, provider) in [("tcp", ProviderProfile::tcp()), ("tcp-uncapped", uncapped)] {
        for pairs in [1usize, 2, 8] {
            let r = run_p2p(MpiP2pConfig {
                provider,
                pairs,
                msg_bytes: 2 * MIB,
                messages,
            });
            rep.row(vec![
                name.to_string(),
                pairs.to_string(),
                gib(r.aggregate_gib_s),
            ]);
        }
    }
    rep.note("uncapped: one stream saturates the host link; pair-count scaling vanishes");
    rep
}

fn field_cfg(
    cluster: ClusterSpec,
    mode: FieldIoMode,
    contention: Contention,
    ppn: u32,
    ops: u32,
) -> PatternConfig {
    PatternConfig {
        cluster,
        fieldio: FieldIoConfig::builder().mode(mode).build(),
        contention,
        procs_per_node: ppn,
        ops_per_proc: ops,
        field_bytes: MIB,
        verify: false,
    }
}

/// Zeroing the container-handle table cost recovers full-mode performance
/// to the no-containers level — isolating the paper's unexplained
/// container-mode slowdown.
pub fn cont_table_cost(scale: &Scale) -> Report {
    let ppn = *scale.fieldio_ppn.last().unwrap_or(&8);
    let ops = scale.ops_per_proc;
    let mut rep = Report::new(
        "ablation_cont_table",
        "Ablation: container-handle cost (Fig. 5 full-mode slowdown)",
        &["variant", "mode", "aggregate_GiB/s"],
    );
    let mut zeroed = Calibration::nextgenio();
    zeroed.cont_table_cost_per_cont = SimDuration::ZERO;
    zeroed.cont_table_cost_cap = SimDuration::ZERO;
    for (variant, cal) in [
        ("calibrated", Calibration::nextgenio()),
        ("no-cont-cost", zeroed),
    ] {
        for mode in [FieldIoMode::Full, FieldIoMode::NoContainers] {
            let mut cluster = ClusterSpec::tcp(2, 4);
            cluster.calibration = cal;
            let r = run_pattern_b(&field_cfg(cluster, mode, Contention::Low, ppn, ops));
            rep.row(vec![
                variant.to_string(),
                mode.name().to_string(),
                gib(r.aggregate_gib()),
            ]);
        }
    }
    rep.note("with the cost zeroed, full mode converges to no-containers");
    rep
}

/// Zeroing the KV update serialization removes the shared-index rolloff
/// (Fig. 4's high-contention mechanism).
pub fn kv_update_serialization(scale: &Scale) -> Report {
    let ppn = *scale.fieldio_ppn.last().unwrap_or(&8);
    let ops = scale.ops_per_proc;
    let mut rep = Report::new(
        "ablation_kv_serial",
        "Ablation: KV update serialization (Fig. 4 contention mechanism)",
        &["variant", "server_nodes", "write_GiB/s"],
    );
    let mut zeroed = Calibration::nextgenio();
    zeroed.kv_update_serial_cost = SimDuration::ZERO;
    for (variant, cal) in [
        ("calibrated", Calibration::nextgenio()),
        ("no-kv-serial", zeroed),
    ] {
        for servers in [2u16, 4] {
            let mut cluster = ClusterSpec::tcp(servers, servers * 2);
            cluster.calibration = cal;
            let r = run_pattern_a(&field_cfg(
                cluster,
                FieldIoMode::NoContainers,
                Contention::High,
                ppn,
                ops,
            ));
            rep.row(vec![
                variant.to_string(),
                servers.to_string(),
                gib(r.write.global_bw_gib),
            ]);
        }
    }
    rep.note("without update serialization the shared index stops limiting scale");
    rep
}

/// IOR's synchronous bandwidth ("best possible") vs the Field I/O global
/// timing bandwidth ("achievable realistic") on the same deployment — the
/// motivation for the paper's new metric.
pub fn ideal_vs_realistic(scale: &Scale) -> Report {
    let spec = ClusterSpec::tcp(2, 4);
    let ppn = *scale.fieldio_ppn.last().unwrap_or(&8);
    let ior = run_ior(
        spec,
        IorParams {
            transfer_bytes: MIB,
            segments: scale.segments,
            procs_per_node: ppn,
            class: ObjectClass::S1,
            iterations: 1,
            file_mode: daosim_ior::FileMode::FilePerProcess,
            inflight: 1,
            api: daosim_ior::Api::Daos,
        },
    );
    let fio = run_pattern_a(&field_cfg(
        spec,
        FieldIoMode::Full,
        Contention::Low,
        ppn,
        scale.ops_per_proc,
    ));
    let mut rep = Report::new(
        "ablation_metric",
        "Ablation: synchronous (IOR) vs global timing (Field I/O) bandwidth",
        &["benchmark", "metric", "write_GiB/s", "read_GiB/s"],
    );
    rep.row(vec![
        "ior-segments".into(),
        "synchronous (Eq.1)".into(),
        gib(ior.write_bw()),
        gib(ior.read_bw()),
    ]);
    rep.row(vec![
        "fieldio-full".into(),
        "global timing (Eq.2)".into(),
        gib(fio.write.global_bw_gib),
        gib(fio.read.global_bw_gib),
    ]);
    rep.note("application-level field I/O achieves a fraction of the IOR ceiling");
    rep
}

/// With every software cost zeroed and stack caps removed the model is
/// bound only by raw network and media — an upper bound showing the
/// calibrated costs are load-bearing.
pub fn frictionless(scale: &Scale) -> Report {
    let ppn = *scale.fieldio_ppn.last().unwrap_or(&8);
    let ops = scale.ops_per_proc;
    let mut rep = Report::new(
        "ablation_frictionless",
        "Ablation: calibrated vs frictionless software stack",
        &["variant", "write_GiB/s", "read_GiB/s"],
    );
    for (variant, cal) in [
        ("calibrated", Calibration::nextgenio()),
        ("frictionless", Calibration::frictionless()),
    ] {
        let mut cluster = ClusterSpec::tcp(1, 2);
        cluster.calibration = cal;
        let r = run_pattern_a(&field_cfg(
            cluster,
            FieldIoMode::NoIndex,
            Contention::Low,
            ppn,
            ops,
        ));
        rep.row(vec![
            variant.to_string(),
            gib(r.write.global_bw_gib),
            gib(r.read.global_bw_gib),
        ]);
    }
    rep.note("frictionless is bound only by provider caps, raw links and media");
    rep
}
