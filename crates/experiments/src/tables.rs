//! Table 1 and Table 2 runners.

use daosim_cluster::ClusterSpec;
use daosim_ior::{best_over_ppn, IorParams};
use daosim_net::mpi::best_over_sizes;
use daosim_net::ProviderProfile;
use daosim_objstore::ObjectClass;

use crate::harness::{gib, parallel_map, Report, Scale};

const MIB: u64 = 1024 * 1024;

/// Table 2 — MPI-style process-to-process transfer bandwidth over the raw
/// fabric model, TCP vs PSM2, picking the optimal transfer size per row.
pub fn table2(scale: &Scale) -> Report {
    struct Row {
        provider: &'static str,
        pairs: usize,
        paper_gib: f64,
    }
    let rows = vec![
        Row {
            provider: "psm2",
            pairs: 1,
            paper_gib: 12.1,
        },
        Row {
            provider: "tcp",
            pairs: 1,
            paper_gib: 3.1,
        },
        Row {
            provider: "tcp",
            pairs: 2,
            paper_gib: 4.1,
        },
        Row {
            provider: "tcp",
            pairs: 4,
            paper_gib: 6.9,
        },
        Row {
            provider: "tcp",
            pairs: 8,
            paper_gib: 9.5,
        },
        Row {
            provider: "tcp",
            pairs: 16,
            paper_gib: 9.0,
        },
    ];
    let sizes: Vec<u64> = (18..=25).map(|p| 1u64 << p).collect(); // 256 KiB..32 MiB
    let messages = scale.segments.max(10);
    let results = parallel_map(rows, |r| {
        let p = ProviderProfile::by_name(r.provider).expect("known provider");
        let (size, bw) = best_over_sizes(p, r.pairs, &sizes, messages);
        (r.provider, r.pairs, size, bw, r.paper_gib)
    });
    let mut rep = Report::new(
        "table2",
        "Table 2: MPI p2p transfer bandwidth (TCP vs PSM2)",
        &[
            "provider",
            "pairs",
            "opt_size_MiB",
            "measured_GiB/s",
            "paper_GiB/s",
        ],
    );
    for (provider, pairs, size, bw, paper) in results {
        rep.row(vec![
            provider.to_string(),
            pairs.to_string(),
            format!("{}", size / MIB),
            gib(bw),
            gib(paper),
        ]);
    }
    rep.note("paper sweeps 0-32 MiB transfer sizes; model sweeps 256 KiB-32 MiB");
    rep
}

/// Table 1 — IOR segments mode against a single server node, varying
/// engines per server node, interfaces per client node and client nodes.
pub fn table1(scale: &Scale) -> Report {
    struct Cfg {
        engines: u8,
        client_sockets: u8,
        client_nodes: u16,
        paper_w: f64,
        paper_r: f64,
    }
    let cfgs = vec![
        Cfg {
            engines: 1,
            client_sockets: 1,
            client_nodes: 1,
            paper_w: 3.0,
            paper_r: 4.2,
        },
        Cfg {
            engines: 1,
            client_sockets: 1,
            client_nodes: 2,
            paper_w: 2.6,
            paper_r: 6.2,
        },
        Cfg {
            engines: 1,
            client_sockets: 2,
            client_nodes: 1,
            paper_w: 3.0,
            paper_r: 7.4,
        },
        Cfg {
            engines: 1,
            client_sockets: 2,
            client_nodes: 2,
            paper_w: 2.9,
            paper_r: 7.7,
        },
        Cfg {
            engines: 2,
            client_sockets: 2,
            client_nodes: 1,
            paper_w: 5.5,
            paper_r: 7.5,
        },
        Cfg {
            engines: 2,
            client_sockets: 2,
            client_nodes: 2,
            paper_w: 5.5,
            paper_r: 9.5,
        },
    ];
    let ppns = scale.ppn_sweep.clone();
    let segments = scale.segments;
    let results = parallel_map(cfgs, |c| {
        let spec = ClusterSpec {
            server_nodes: 1,
            engines_per_node: c.engines,
            targets_per_engine: 12,
            client_nodes: c.client_nodes,
            client_sockets: c.client_sockets,
            provider: ProviderProfile::tcp(),
            calibration: daosim_cluster::Calibration::nextgenio(),
            retry: daosim_cluster::RetryPolicy::builder().build(),
            admission: daosim_kernel::AdmissionPolicy::Fifo,
            tiering: daosim_cluster::TierPolicy::scm_only(),
        };
        let params = IorParams {
            transfer_bytes: MIB,
            segments,
            procs_per_node: 0,
            class: ObjectClass::S1,
            iterations: 1,
            file_mode: daosim_ior::FileMode::FilePerProcess,
            inflight: 1,
            api: daosim_ior::Api::Daos,
        };
        let (w, r) = best_over_ppn(spec, &ppns, params);
        (
            c.engines,
            c.client_sockets,
            c.client_nodes,
            w,
            r,
            c.paper_w,
            c.paper_r,
        )
    });
    let mut rep = Report::new(
        "table1",
        "Table 1: IOR segments, 1 server node (best over client process counts)",
        &[
            "engines/server",
            "ifaces/client",
            "client_nodes",
            "write_GiB/s",
            "read_GiB/s",
            "paper_w",
            "paper_r",
        ],
    );
    for (e, s, c, w, r, pw, pr) in results {
        rep.row(vec![
            e.to_string(),
            s.to_string(),
            c.to_string(),
            gib(w),
            gib(r),
            gib(pw),
            gib(pr),
        ]);
    }
    rep.note("paper reports the max of 36 repetitions; the simulator is deterministic");
    rep
}
