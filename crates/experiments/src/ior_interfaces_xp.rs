//! Beyond-paper extension: IOR `api=DFS` vs `api=DAOS` interface
//! overhead per transfer size.
//!
//! The interface studies around the source paper run IOR twice per
//! configuration — once against raw DAOS Arrays, once through the DFS
//! POSIX emulation — and report how much the namespace costs. The data
//! path is identical (DFS files *are* Arrays); the delta is purely
//! dirent traffic: a conditional dirent insert per create, a path walk
//! per open, a size update per dirty close. This experiment sweeps the
//! transfer size at a fixed segment count and reports the
//! `DAOS_bw / DFS_bw` overhead ratio for writes and reads, reproducing
//! the papers' ranking: the metadata tax is visible on small transfers
//! and vanishes (ratio → 1) once transfers are large enough to amortize
//! it.
//!
//! All numbers are sim-derived, so reruns are byte-identical.

use std::fmt::Write as _;

use daosim_cluster::ClusterSpec;
use daosim_ior::{run_ior, Api, FileMode, IorParams};
use daosim_objstore::prelude::ObjectClass;

use crate::harness::{gib, parallel_map, Report, Scale};

const KIB: u64 = 1024;

/// Transfer sizes swept (`-t = -b`), small enough that dirent traffic
/// shows, large enough that it drowns.
pub const TRANSFER_KIB: [u64; 5] = [16, 64, 256, 1024, 4096];

fn point(transfer_kib: u64, segments: u32, api: Api) -> IorParams {
    // SX striping: every file spreads over all targets, so the two runs
    // share one data-path shape and the measured delta is purely the
    // namespace (S1 would add single-stripe placement luck per oid draw).
    IorParams {
        transfer_bytes: transfer_kib * KIB,
        segments,
        procs_per_node: 4,
        class: ObjectClass::SX,
        iterations: 1,
        file_mode: FileMode::FilePerProcess,
        inflight: 1,
        api,
    }
}

/// Runs the interface sweep and renders the report plus the
/// `BENCH_ior_interfaces.json` artifact.
pub fn ior_interfaces(scale: &Scale) -> Report {
    let spec = ClusterSpec::tcp(1, 2);
    // Few segments per point: the per-file dirent cost is fixed, so a
    // small byte total keeps it visible at the small-transfer end.
    let segments = scale.segments.clamp(2, 8);
    let results = parallel_map(TRANSFER_KIB.to_vec(), |&t| {
        let daos = run_ior(spec, point(t, segments, Api::Daos));
        let dfs = run_ior(spec, point(t, segments, Api::Dfs));
        (t, daos, dfs)
    });
    let mut rep = Report::new(
        "ior-interfaces",
        "Extension: IOR api=DFS vs api=DAOS — namespace overhead vs transfer size",
        &[
            "transfer_KiB",
            "daos_write_GiB/s",
            "dfs_write_GiB/s",
            "write_overhead",
            "daos_read_GiB/s",
            "dfs_read_GiB/s",
            "read_overhead",
        ],
    );
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"ior-interfaces\",");
    let _ = writeln!(
        json,
        "  \"cluster\": \"tcp(server_nodes=1, client_nodes=2)\","
    );
    let _ = writeln!(json, "  \"procs_per_node\": 4,");
    let _ = writeln!(json, "  \"segments\": {segments},");
    let _ = writeln!(json, "  \"file_mode\": \"file-per-process\",");
    let _ = writeln!(json, "  \"overhead\": \"daos_bw / dfs_bw\",");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, (t, daos, dfs)) in results.iter().enumerate() {
        let w_over = daos.write_bw() / dfs.write_bw();
        let r_over = daos.read_bw() / dfs.read_bw();
        rep.row(vec![
            t.to_string(),
            gib(daos.write_bw()),
            gib(dfs.write_bw()),
            format!("{w_over:.3}"),
            gib(daos.read_bw()),
            gib(dfs.read_bw()),
            format!("{r_over:.3}"),
        ]);
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"transfer_kib\": {t}, \"daos_write_gib_s\": {}, \"dfs_write_gib_s\": {}, \"write_overhead\": {w_over}, \"daos_read_gib_s\": {}, \"dfs_read_gib_s\": {}, \"read_overhead\": {r_over}}}{comma}",
            daos.write_bw(),
            dfs.write_bw(),
            daos.read_bw(),
            dfs.read_bw(),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    rep.note(format!(
        "8 procs x {segments} segments per point, inflight 1; DFS adds per-file dirent create/walk/update inside the measured window"
    ));
    rep.artifact("BENCH_ior_interfaces.json", json);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_shrinks_with_transfer_size() {
        let rep = ior_interfaces(&Scale::quick());
        assert_eq!(rep.rows().len(), TRANSFER_KIB.len());
        let write_over: Vec<f64> = rep.rows().iter().map(|r| r[3].parse().unwrap()).collect();
        let read_over: Vec<f64> = rep.rows().iter().map(|r| r[6].parse().unwrap()).collect();
        // DFS never beats raw DAOS (same data path plus extra metadata).
        assert!(
            write_over.iter().chain(&read_over).all(|&o| o >= 1.0),
            "overhead below 1: {write_over:?} {read_over:?}"
        );
        // The papers' ranking: the smallest transfer pays the most, the
        // largest has amortized the namespace almost completely away.
        let (w_first, w_last) = (write_over[0], *write_over.last().unwrap());
        assert!(
            w_first > w_last,
            "small-transfer write overhead {w_first} should exceed large-transfer {w_last}"
        );
        assert!(
            w_last < 1.10,
            "large transfers should amortize DFS write overhead, got {w_last}"
        );
        let (r_first, r_last) = (read_over[0], *read_over.last().unwrap());
        assert!(
            r_first > r_last,
            "small-transfer read overhead {r_first} should exceed large-transfer {r_last}"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = ior_interfaces(&Scale::quick());
        let b = ior_interfaces(&Scale::quick());
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.artifacts(), b.artifacts());
    }
}
