//! One benchmark per paper artifact: each runs a reduced-scale version of
//! the corresponding experiment (`xp <name>` regenerates the full table).
//! The measured quantity is the wall-clock cost of regenerating the
//! artifact, making regressions in the simulation pipeline visible.

use criterion::{criterion_group, criterion_main, Criterion};
use daosim_cluster::ClusterSpec;
use daosim_core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim_core::patterns::{run_pattern_a, run_pattern_b, PatternConfig};
use daosim_core::workload::Contention;
use daosim_ior::{run_ior, IorParams};
use daosim_net::mpi::{run_p2p, MpiP2pConfig};
use daosim_net::ProviderProfile;
use daosim_objstore::ObjectClass;

const MIB: u64 = 1024 * 1024;

fn ior_params(ppn: u32) -> IorParams {
    IorParams {
        transfer_bytes: MIB,
        segments: 10,
        procs_per_node: ppn,
        class: ObjectClass::S1,
        iterations: 1,
        file_mode: daosim_ior::FileMode::FilePerProcess,
        inflight: 1,
        api: daosim_ior::Api::Daos,
    }
}

fn pattern_cfg(mode: FieldIoMode, contention: Contention, servers: u16) -> PatternConfig {
    PatternConfig {
        cluster: ClusterSpec::tcp(servers, servers * 2),
        fieldio: FieldIoConfig::builder().mode(mode).build(),
        contention,
        procs_per_node: 8,
        ops_per_proc: 10,
        field_bytes: MIB,
        verify: false,
    }
}

fn table1_ior_single_node(c: &mut Criterion) {
    c.bench_function("table1_ior_single_node", |b| {
        b.iter(|| run_ior(ClusterSpec::tcp(1, 2), ior_params(16)));
    });
}

fn table2_mpi_p2p(c: &mut Criterion) {
    c.bench_function("table2_mpi_p2p", |b| {
        b.iter(|| {
            let tcp = run_p2p(MpiP2pConfig {
                provider: ProviderProfile::tcp(),
                pairs: 8,
                msg_bytes: 2 * MIB,
                messages: 20,
            });
            let psm2 = run_p2p(MpiP2pConfig {
                provider: ProviderProfile::psm2(),
                pairs: 1,
                msg_bytes: 8 * MIB,
                messages: 20,
            });
            (tcp.aggregate_gib_s, psm2.aggregate_gib_s)
        });
    });
}

fn fig3_ior_scaling(c: &mut Criterion) {
    c.bench_function("fig3_ior_scaling", |b| {
        b.iter(|| {
            let one = run_ior(ClusterSpec::tcp(1, 2), ior_params(8));
            let four = run_ior(ClusterSpec::tcp(4, 8), ior_params(8));
            assert!(four.write_bw() > one.write_bw());
            (one.write_bw(), four.write_bw())
        });
    });
}

fn fig4_fieldio_contended(c: &mut Criterion) {
    c.bench_function("fig4_fieldio_contended", |b| {
        b.iter(|| {
            let a = run_pattern_a(&pattern_cfg(FieldIoMode::Full, Contention::High, 2));
            let bb = run_pattern_b(&pattern_cfg(FieldIoMode::Full, Contention::High, 2));
            (a.aggregate_gib(), bb.aggregate_gib())
        });
    });
}

fn fig5_fieldio_low_contention(c: &mut Criterion) {
    c.bench_function("fig5_fieldio_low_contention", |b| {
        b.iter(|| {
            let nc = run_pattern_b(&pattern_cfg(FieldIoMode::NoContainers, Contention::Low, 2));
            let ni = run_pattern_b(&pattern_cfg(FieldIoMode::NoIndex, Contention::Low, 2));
            assert!(nc.aggregate_gib() > ni.aggregate_gib());
            (nc.aggregate_gib(), ni.aggregate_gib())
        });
    });
}

fn fig6_oclass_size(c: &mut Criterion) {
    c.bench_function("fig6_oclass_size", |b| {
        b.iter(|| {
            let mut small = pattern_cfg(FieldIoMode::Full, Contention::High, 2);
            small.field_bytes = MIB;
            let mut large = pattern_cfg(FieldIoMode::Full, Contention::High, 2);
            large.field_bytes = 5 * MIB;
            large.ops_per_proc = 4;
            let s = run_pattern_a(&small);
            let l = run_pattern_a(&large);
            assert!(l.write.global_bw_gib > s.write.global_bw_gib);
            (s.write.global_bw_gib, l.write.global_bw_gib)
        });
    });
}

fn fig7_provider_comparison(c: &mut Criterion) {
    c.bench_function("fig7_provider_comparison", |b| {
        b.iter(|| {
            let tcp = {
                let mut spec = ClusterSpec::psm2(4, 4);
                spec.provider = ProviderProfile::tcp();
                run_ior(spec, ior_params(8))
            };
            let psm2 = run_ior(ClusterSpec::psm2(4, 4), ior_params(8));
            assert!(psm2.write_bw() > tcp.write_bw());
            (tcp.write_bw(), psm2.write_bw())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets =
        table1_ior_single_node,
        table2_mpi_p2p,
        fig3_ior_scaling,
        fig4_fieldio_contended,
        fig5_fieldio_low_contention,
        fig6_oclass_size,
        fig7_provider_comparison
}
criterion_main!(benches);
