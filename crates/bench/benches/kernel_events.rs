//! Kernel hot-path microbenchmarks: the event calendar (hierarchical
//! timer wheel vs the pre-wheel binary heap) and task storage (slab
//! arena vs the pre-slab HashMap round-trip), plus the end-to-end
//! executor cost per simulated event.
//!
//! The `xp kernel-bench` experiment re-runs the same workloads at full
//! scale (1M events) and persists `results/BENCH_kernel.json`; this
//! bench is the interactive/regression view of the same comparisons.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use daosim_kernel::calendar::{HeapCalendar, TimerWheel};
use daosim_kernel::{Sim, SimDuration};

/// Deterministic 64-bit stream for timer deltas (splitmix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Timer churn: keep `pending` events in flight; each pop schedules a
/// replacement a pseudo-random delta ahead — the steady state of a
/// large simulation. Deltas are biased across wheel levels the way
/// sim workloads are (mostly near, a tail of far-future deadlines).
fn churn_delta(rng: &mut u64) -> u64 {
    let r = splitmix64(rng);
    match r % 100 {
        0..=79 => 1 + (r >> 8) % (1 << 12),  // µs-scale service times
        80..=97 => 1 + (r >> 8) % (1 << 24), // ms-scale backoffs
        _ => 1 + (r >> 8) % (1 << 34),       // tens-of-seconds deadlines
    }
}

const CHURN_EVENTS: u64 = 100_000;
const CHURN_PENDING: u64 = 4_096;

fn bench_calendar(c: &mut Criterion) {
    let mut g = c.benchmark_group("calendar");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CHURN_EVENTS));
    g.bench_function("churn_100k_wheel", |b| {
        b.iter(|| {
            let mut w: TimerWheel<u64> = TimerWheel::new();
            let mut rng = 0x1234_5678u64;
            let (mut seq, mut now) = (0u64, 0u64);
            for _ in 0..CHURN_PENDING {
                w.push(now + churn_delta(&mut rng), seq, seq);
                seq += 1;
            }
            let mut fired = 0u64;
            while fired < CHURN_EVENTS {
                let (at, _, _) = w.pop_next().unwrap();
                now = at;
                fired += 1;
                w.push(now + churn_delta(&mut rng), seq, seq);
                seq += 1;
            }
            (w.len(), now)
        })
    });
    g.bench_function("churn_100k_heap", |b| {
        b.iter(|| {
            let mut h: HeapCalendar<u64> = HeapCalendar::new();
            let mut rng = 0x1234_5678u64;
            let (mut seq, mut now) = (0u64, 0u64);
            for _ in 0..CHURN_PENDING {
                h.push(now + churn_delta(&mut rng), seq, seq);
                seq += 1;
            }
            let mut fired = 0u64;
            while fired < CHURN_EVENTS {
                let (at, _, _) = h.pop_next().unwrap();
                now = at;
                fired += 1;
                h.push(now + churn_delta(&mut rng), seq, seq);
                seq += 1;
            }
            (h.len(), now)
        })
    });
    g.finish();
}

const TASK_SLOTS: usize = 65_536;
const TASK_POLLS: u64 = 262_144;

fn bench_task_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("task_storage");
    g.sample_size(10);
    g.throughput(Throughput::Elements(TASK_POLLS));
    // The pre-slab executor stored futures in HashMap<TaskId, Fut> and
    // did remove → poll → reinsert on every poll; the slab indexes a
    // Vec directly and takes/puts in place. The boxed u64 stands in for
    // the future: what's measured is the storage round-trip.
    g.bench_function("poll_roundtrip_hashmap", |b| {
        b.iter(|| {
            let mut tasks: HashMap<u64, Box<u64>> = (0..TASK_SLOTS as u64)
                .map(|i| (i, Box::new(0u64)))
                .collect();
            let mut rng = 0xFEEDu64;
            for _ in 0..TASK_POLLS {
                let id = splitmix64(&mut rng) % TASK_SLOTS as u64;
                let mut fut = tasks.remove(&id).unwrap();
                *fut += 1;
                tasks.insert(id, fut);
            }
            tasks.len()
        })
    });
    g.bench_function("poll_roundtrip_slab", |b| {
        b.iter(|| {
            let mut tasks: Vec<Option<Box<u64>>> =
                (0..TASK_SLOTS).map(|_| Some(Box::new(0u64))).collect();
            let mut rng = 0xFEEDu64;
            for _ in 0..TASK_POLLS {
                let id = (splitmix64(&mut rng) % TASK_SLOTS as u64) as usize;
                let mut fut = tasks[id].take().unwrap();
                *fut += 1;
                tasks[id] = Some(fut);
            }
            tasks.len()
        })
    });
    g.finish();
}

const EXEC_TASKS: u32 = 10_000;
const EXEC_SLEEPS: u32 = 10;

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    g.sample_size(10);
    // Each sleep is one calendar event plus one wake/poll round trip.
    g.throughput(Throughput::Elements(EXEC_TASKS as u64 * EXEC_SLEEPS as u64));
    g.bench_function("sleep_churn_10k_tasks", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..EXEC_TASKS {
                let handle = sim.clone();
                sim.spawn(async move {
                    for k in 0..EXEC_SLEEPS {
                        handle
                            .sleep(SimDuration::from_nanos(1 + ((i + k) % 97) as u64))
                            .await;
                    }
                });
            }
            sim.run().expect_quiescent().as_nanos()
        })
    });
    g.bench_function("spawn_churn_100k_tasks", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let spawner = sim.clone();
            sim.spawn(async move {
                for wave in 0..10u32 {
                    for i in 0..10_000u32 {
                        let h = spawner.clone();
                        spawner.spawn(async move {
                            h.sleep(SimDuration::from_nanos((i % 13) as u64)).await;
                        });
                    }
                    spawner
                        .sleep(SimDuration::from_micros(wave as u64 + 1))
                        .await;
                }
            });
            sim.run().expect_quiescent().as_nanos()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_calendar, bench_task_storage, bench_executor);
criterion_main!(benches);
