//! Ablation benches: the design choices DESIGN.md calls out, measured as
//! paired runs so Criterion tracks both the calibrated model and its
//! ablated twin. Each bench asserts the qualitative effect the ablation
//! is supposed to demonstrate, so a silent model regression fails loudly.

use criterion::{criterion_group, criterion_main, Criterion};
use daosim_cluster::{Calibration, ClusterSpec};
use daosim_core::fieldio::{FieldIoConfig, FieldIoMode};
use daosim_core::patterns::{run_pattern_a, run_pattern_b, PatternConfig};
use daosim_core::workload::Contention;
use daosim_kernel::SimDuration;
use daosim_net::mpi::{run_p2p, MpiP2pConfig};
use daosim_net::ProviderProfile;

const MIB: u64 = 1024 * 1024;

fn cfg(mode: FieldIoMode, contention: Contention, cal: Calibration) -> PatternConfig {
    let mut cluster = ClusterSpec::tcp(2, 4);
    cluster.calibration = cal;
    PatternConfig {
        cluster,
        fieldio: FieldIoConfig::builder().mode(mode).build(),
        contention,
        procs_per_node: 8,
        ops_per_proc: 10,
        field_bytes: MIB,
        verify: false,
    }
}

fn ablation_stream_cap(c: &mut Criterion) {
    c.bench_function("ablation_stream_cap", |b| {
        b.iter(|| {
            let capped = run_p2p(MpiP2pConfig {
                provider: ProviderProfile::tcp(),
                pairs: 1,
                msg_bytes: 2 * MIB,
                messages: 20,
            });
            let mut open = ProviderProfile::tcp();
            open.per_flow_cap_gib = 1e6;
            open.stream_alpha = 0.0;
            let uncapped = run_p2p(MpiP2pConfig {
                provider: open,
                pairs: 1,
                msg_bytes: 2 * MIB,
                messages: 20,
            });
            assert!(uncapped.aggregate_gib_s > 1.5 * capped.aggregate_gib_s);
            (capped.aggregate_gib_s, uncapped.aggregate_gib_s)
        });
    });
}

fn ablation_cont_table(c: &mut Criterion) {
    c.bench_function("ablation_cont_table", |b| {
        b.iter(|| {
            let with = run_pattern_b(&cfg(
                FieldIoMode::Full,
                Contention::Low,
                Calibration::nextgenio(),
            ));
            let mut zeroed = Calibration::nextgenio();
            zeroed.cont_table_cost_per_cont = SimDuration::ZERO;
            zeroed.cont_table_cost_cap = SimDuration::ZERO;
            let without = run_pattern_b(&cfg(FieldIoMode::Full, Contention::Low, zeroed));
            assert!(without.aggregate_gib() > with.aggregate_gib());
            (with.aggregate_gib(), without.aggregate_gib())
        });
    });
}

fn ablation_kv_serialization(c: &mut Criterion) {
    c.bench_function("ablation_kv_serialization", |b| {
        b.iter(|| {
            let with = run_pattern_a(&cfg(
                FieldIoMode::NoContainers,
                Contention::High,
                Calibration::nextgenio(),
            ));
            let mut zeroed = Calibration::nextgenio();
            zeroed.kv_update_serial_cost = SimDuration::ZERO;
            zeroed.kv_fetch_serial_cost = SimDuration::ZERO;
            let without = run_pattern_a(&cfg(FieldIoMode::NoContainers, Contention::High, zeroed));
            assert!(without.aggregate_gib() > with.aggregate_gib());
            (with.aggregate_gib(), without.aggregate_gib())
        });
    });
}

fn ablation_frictionless(c: &mut Criterion) {
    c.bench_function("ablation_frictionless", |b| {
        b.iter(|| {
            let real = run_pattern_a(&cfg(
                FieldIoMode::NoIndex,
                Contention::Low,
                Calibration::nextgenio(),
            ));
            let ideal = run_pattern_a(&cfg(
                FieldIoMode::NoIndex,
                Contention::Low,
                Calibration::frictionless(),
            ));
            assert!(ideal.aggregate_gib() >= real.aggregate_gib());
            (real.aggregate_gib(), ideal.aggregate_gib())
        });
    });
}

fn ablation_redundancy_classes(c: &mut Criterion) {
    use daosim_cluster::{Deployment, SimClient};
    use daosim_kernel::Sim;
    use daosim_objstore::api::DaosApi;
    use daosim_objstore::{ObjectClass, OidAllocator, Uuid};
    use std::rc::Rc;

    fn write_run(class: ObjectClass) -> f64 {
        let sim = Sim::new();
        let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
        for p in 0..8u32 {
            let d = Rc::clone(&d);
            sim.spawn(async move {
                let client = SimClient::for_process(&d, 0, p);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"bench"))
                    .await
                    .unwrap();
                let mut alloc = OidAllocator::new(p + 1);
                let payload = bytes::Bytes::from(vec![1u8; MIB as usize]);
                for _ in 0..6 {
                    let oid = alloc.next(class);
                    let h = client.array_create(&cont, oid).await.unwrap();
                    client
                        .array_write(&cont, &h, 0, payload.clone())
                        .await
                        .unwrap();
                }
            });
        }
        sim.run().expect_quiescent().as_secs_f64()
    }

    c.bench_function("ablation_redundancy_classes", |b| {
        b.iter(|| {
            let s1 = write_run(ObjectClass::S1);
            let rp2 = write_run(ObjectClass::RP2);
            let ec = write_run(ObjectClass::EC2P1);
            // Redundancy must cost: RP2 slowest, EC between.
            assert!(rp2 > s1, "rp2 {rp2} vs s1 {s1}");
            assert!(ec > s1, "ec {ec} vs s1 {s1}");
            assert!(ec < rp2, "ec {ec} vs rp2 {rp2}");
            (s1, rp2, ec)
        });
    });
}

fn ablation_rebuild(c: &mut Criterion) {
    use daosim_cluster::{rebuild_engine, Deployment, SimClient};
    use daosim_kernel::Sim;
    use daosim_objstore::api::DaosApi;
    use daosim_objstore::{ObjectClass, OidAllocator, Uuid};
    use std::rc::Rc;

    c.bench_function("ablation_rebuild", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let d = Deployment::new(&sim, ClusterSpec::tcp(2, 1));
            let d2 = Rc::clone(&d);
            sim.spawn(async move {
                let client = SimClient::for_process(&d2, 0, 0);
                let cont = client
                    .cont_open_or_create(Uuid::from_name(b"rb"))
                    .await
                    .unwrap();
                let mut alloc = OidAllocator::new(1);
                let payload = bytes::Bytes::from(vec![2u8; MIB as usize]);
                for _ in 0..24 {
                    let oid = alloc.next(ObjectClass::RP2);
                    let h = client.array_create(&cont, oid).await.unwrap();
                    client
                        .array_write(&cont, &h, 0, payload.clone())
                        .await
                        .unwrap();
                }
                d2.kill_engine(0);
                let r = rebuild_engine(&d2, 0)
                    .await
                    .expect("rebuild of killed engine");
                assert!(r.objects_moved > 0);
            });
            sim.run().expect_quiescent()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets =
        ablation_stream_cap,
        ablation_cont_table,
        ablation_kv_serialization,
        ablation_frictionless,
        ablation_redundancy_classes,
        ablation_rebuild
}
criterion_main!(benches);
