//! Substrate benchmarks: how fast the simulator itself runs — events per
//! second in the kernel, fairness recomputation in the flow network.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use daosim_kernel::sync::{Barrier, Semaphore};
use daosim_kernel::{Sim, SimDuration};
use daosim_net::{FlowCap, FlowNet};

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("timer_events_10k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..10_000u64 {
                sim.schedule_at(daosim_kernel::SimTime::from_nanos(i % 997), || {});
            }
            sim.run()
        });
    });
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("task_sleep_chain_1k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.block_on(async move {
                for _ in 0..1_000 {
                    s.sleep(SimDuration::from_nanos(5)).await;
                }
            })
        });
    });
    g.bench_function("semaphore_contention_100x10", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let sem = Semaphore::new(4);
            for _ in 0..100 {
                let (s, m) = (sim.clone(), sem.clone());
                sim.spawn(async move {
                    for _ in 0..10 {
                        let _p = m.acquire_one().await;
                        s.sleep(SimDuration::from_nanos(3)).await;
                    }
                });
            }
            sim.run().expect_quiescent()
        });
    });
    g.bench_function("barrier_rounds_64x20", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let bar = Barrier::new(64);
            for i in 0..64u64 {
                let (s, br) = (sim.clone(), bar.clone());
                sim.spawn(async move {
                    for r in 0..20u64 {
                        s.sleep(SimDuration::from_nanos(1 + (i * r) % 7)).await;
                        br.wait().await;
                    }
                });
            }
            sim.run().expect_quiescent()
        });
    });
    g.finish();
}

fn bench_flows(c: &mut Criterion) {
    let mut g = c.benchmark_group("flownet");
    for flows in [16usize, 128, 512] {
        g.throughput(Throughput::Elements(flows as u64));
        g.bench_function(format!("concurrent_flows_{flows}"), |b| {
            b.iter(|| {
                let sim = Sim::new();
                let net = FlowNet::new(&sim);
                let links: Vec<_> = (0..16).map(|_| net.add_link(10.0)).collect();
                for i in 0..flows {
                    let route = vec![links[i % 16], links[(i * 7 + 3) % 16]];
                    let n = net.clone();
                    sim.spawn(async move {
                        n.transfer(&route, 1_000_000, FlowCap::capped(3.1)).await;
                    });
                }
                sim.run().expect_quiescent()
            });
        });
    }
    g.bench_function("staggered_arrivals_256", |b| {
        // Each arrival triggers a fairness recompute over live flows.
        b.iter(|| {
            let sim = Sim::new();
            let net = FlowNet::new(&sim);
            let l = net.add_link(100.0);
            for i in 0..256u64 {
                let n = net.clone();
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep(SimDuration::from_micros(i)).await;
                    n.transfer(&[l], 5_000_000, FlowCap::capped(3.1)).await;
                });
            }
            sim.run().expect_quiescent()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_kernel, bench_flows);
criterion_main!(benches);
