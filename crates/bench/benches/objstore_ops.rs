//! Microbenchmarks of the embedded object store — the real (non-sim)
//! data path a downstream embedder pays for.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use daosim_objstore::md5::md5;
use daosim_objstore::placement::{array_target_shards, kv_target, stripe_targets};
use daosim_objstore::{ArrayObject, Container, KvObject, ObjectClass, Oid, Uuid};

const MIB: usize = 1024 * 1024;

fn bench_md5(c: &mut Criterion) {
    let mut g = c.benchmark_group("md5");
    for size in [64usize, 4096, MIB] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| b.iter(|| md5(&data)));
    }
    g.finish();
}

fn bench_kv(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv");
    g.bench_function("put_1k_keys", |b| {
        let keys: Vec<String> = (0..1000).map(|i| format!("param=t,step={i}")).collect();
        b.iter_batched(
            KvObject::new,
            |mut kv| {
                for k in &keys {
                    kv.put(k.as_bytes(), Bytes::from_static(b"entry"));
                }
                kv
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("get_hit", |b| {
        let mut kv = KvObject::new();
        for i in 0..1000 {
            kv.put(format!("step={i}").as_bytes(), Bytes::from_static(b"v"));
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1000;
            kv.get(format!("step={i}").as_bytes())
        });
    });
    g.finish();
}

/// Million-key forecast index: the KV shape a year of archived fields
/// produces. Keys follow the canonical `keyword=value,...` scheme, so
/// prefix listing selects one forecast date out of many.
fn index_1m_pairs() -> Vec<(Bytes, Bytes)> {
    let mut pairs = Vec::with_capacity(1_000_000);
    for date in 0..250u32 {
        for param in ["t", "u", "v", "z"] {
            for level in [1000u32, 850, 500, 250, 100] {
                for step in 0..200u32 {
                    let key = format!("date={date:03},levelist={level},param={param},step={step}");
                    pairs.push((Bytes::from(key.into_bytes()), Bytes::from_static(b"ref")));
                }
            }
        }
    }
    pairs
}

fn bench_index_1m(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_1m");
    g.sample_size(10);
    let pairs = index_1m_pairs();
    g.throughput(Throughput::Elements(pairs.len() as u64));
    g.bench_function("build_put_many", |b| {
        b.iter_batched(
            || pairs.clone(), // Bytes clones: refcount bumps, no byte copies
            |batch| {
                let mut kv = KvObject::new();
                kv.put_many(batch);
                kv
            },
            BatchSize::LargeInput,
        );
    });

    let mut kv = KvObject::new();
    kv.put_many(pairs.clone());

    g.throughput(Throughput::Elements(1));
    g.bench_function("point_get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 997) % pairs.len();
            kv.get(&pairs[i].0).unwrap()
        });
    });

    // One forecast date out of 250: 4_000 of the 1M keys.
    g.throughput(Throughput::Elements(4_000));
    g.bench_function("prefix_list_one_date", |b| {
        b.iter(|| kv.list_prefix(b"date=125,"))
    });
    g.finish();
}

fn bench_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("array");
    let payload = Bytes::from(vec![7u8; MIB]);
    g.throughput(Throughput::Bytes(MIB as u64));
    g.bench_function("write_1MiB_fresh", |b| {
        b.iter_batched(
            ArrayObject::new,
            |mut a| {
                a.write(0, payload.clone());
                a
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("read_1MiB_zero_copy", |b| {
        let mut a = ArrayObject::new();
        a.write(0, payload.clone());
        b.iter(|| a.read(0, MIB as u64));
    });
    g.bench_function("read_1MiB_assembled", |b| {
        // Two half-extents force the copy path.
        let mut a = ArrayObject::new();
        a.write(0, payload.slice(0..MIB / 2));
        a.write(MIB as u64 / 2, payload.slice(0..MIB / 2));
        b.iter(|| a.read(0, MIB as u64));
    });
    g.bench_function("overwrite_middle", |b| {
        let small = Bytes::from(vec![1u8; 4096]);
        b.iter_batched(
            || {
                let mut a = ArrayObject::new();
                a.write(0, payload.clone());
                a
            },
            |mut a| {
                a.write(1000, small.clone());
                a
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_container(c: &mut Criterion) {
    let mut g = c.benchmark_group("container");
    g.bench_function("array_create_open_write_read", |b| {
        let cont = Container::new(Uuid::from_name(b"bench"));
        let payload = Bytes::from(vec![3u8; 64 * 1024]);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let oid = Oid::generate(1, n, ObjectClass::S1);
            cont.array_create(oid).unwrap();
            cont.array_write(oid, 0, payload.clone()).unwrap();
            cont.array_read(oid, 0, 64 * 1024).unwrap()
        });
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    let oid_sx = Oid::generate(1, 42, ObjectClass::SX);
    let oid_s1 = Oid::generate(1, 42, ObjectClass::S1);
    g.bench_function("stripe_targets_sx_192", |b| {
        b.iter(|| stripe_targets(oid_sx, 192))
    });
    g.bench_function("kv_target", |b| {
        b.iter(|| kv_target(oid_sx, b"levelist=500,param=t,step=24", 192))
    });
    g.bench_function("target_shards_20MiB_s1", |b| {
        b.iter(|| array_target_shards(oid_s1, 0, 20 * MIB as u64, 192))
    });
    g.bench_function("target_shards_20MiB_sx", |b| {
        b.iter(|| array_target_shards(oid_sx, 0, 20 * MIB as u64, 192))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_md5,
    bench_kv,
    bench_index_1m,
    bench_array,
    bench_container,
    bench_placement
);
criterion_main!(benches);
