//! Flow-solver throughput at cluster scale: 1024+ concurrent flows over a
//! dual-rail fabric, incremental (route-equivalence-class) solver vs the
//! retained per-flow baseline.
//!
//! Besides the usual criterion output this bench writes a machine-readable
//! summary — per-solver ns/run and the speedup — to
//! `results/BENCH_net.json`, so the solver's headline number is tracked in
//! the repo alongside the experiment artifacts.

use std::path::PathBuf;
use std::rc::Rc;
use std::time::Duration;

use criterion::{BenchResult, Criterion, Throughput};
use daosim_kernel::{Sim, SimDuration};
use daosim_net::{Endpoint, Fabric, FabricSpec, ProviderProfile};

/// Concurrent flow target (acceptance floor is 1024).
const FLOWS: usize = 1280;
/// Client nodes; two extra nodes act as servers.
const CLIENTS: u16 = 32;

/// One full churn: FLOWS transfers between 32 client nodes and 2 server
/// nodes on a dual-rail TCP fabric, arrivals spread over 64 distinct
/// instants (so same-instant batches and mid-flight arrivals both occur),
/// run to quiescence.
fn run_churn(naive: bool) -> u64 {
    let sim = Sim::new();
    let spec = FabricSpec::new(CLIENTS + 2, ProviderProfile::tcp());
    let fabric = Rc::new(if naive {
        Fabric::new_naive(&sim, spec)
    } else {
        Fabric::new(&sim, spec)
    });
    for i in 0..FLOWS {
        let src = Endpoint::new((i % CLIENTS as usize) as u16, ((i / 64) % 2) as u8);
        let dst = Endpoint::new(CLIENTS + (i % 2) as u16, ((i / 2) % 2) as u8);
        let bytes = (4u64 + (i as u64 % 28)) << 20; // 4–32 MiB
        let stagger = SimDuration::from_micros((i % 64) as u64 * 25);
        let (f, s) = (Rc::clone(&fabric), sim.clone());
        sim.spawn(async move {
            s.sleep(stagger).await;
            f.transfer(src, dst, bytes).await;
        });
    }
    sim.run().expect_quiescent();
    let stats = fabric.net().solver_stats();
    assert!(stats.recomputes > 0);
    stats.recomputes
}

fn bench_net_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_flow");
    g.throughput(Throughput::Elements(FLOWS as u64));
    g.bench_function(format!("incremental_{FLOWS}"), |b| {
        b.iter(|| run_churn(false))
    });
    g.bench_function(format!("naive_{FLOWS}"), |b| b.iter(|| run_churn(true)));
    g.finish();
}

/// Writes `results/BENCH_net.json` with per-solver timing and the speedup.
fn write_summary(results: &[BenchResult]) {
    let find = |needle: &str| {
        results
            .iter()
            .find(|r| r.id.contains(needle))
            .map(|r| r.ns_per_iter)
    };
    let (Some(incremental), Some(naive)) = (find("incremental_"), find("naive_")) else {
        return; // filtered run; nothing comparable to record
    };
    let speedup = naive / incremental;
    let json = format!(
        "{{\n  \"bench\": \"net_flow\",\n  \"flows\": {FLOWS},\n  \
         \"fabric\": \"dual-rail tcp, {CLIENTS} clients + 2 servers\",\n  \
         \"incremental_ns_per_run\": {incremental:.0},\n  \
         \"naive_ns_per_run\": {naive:.0},\n  \"speedup\": {speedup:.2}\n}}\n"
    );
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("BENCH_net.json");
        if std::fs::write(&path, &json).is_ok() {
            println!("wrote {}", path.display());
        }
    }
    println!("net_flow speedup: {speedup:.2}x (naive / incremental)");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let mut c = Criterion::default()
        .configure_from_args()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    bench_net_flow(&mut c);
    let results = c.take_results();
    // A --test smoke run measures nothing meaningful; don't clobber the
    // recorded summary with it.
    if !smoke {
        write_summary(&results);
    }
}
