//! Synchronization primitives for simulated processes.
//!
//! These mirror the primitives the modelled systems rely on: FIFO
//! semaphores (service queues at DAOS targets), barriers (MPI-style
//! synchronization in IOR), one-shot completions and unbounded channels.
//! All of them are single-threaded (`Rc`-based) and strictly FIFO, which
//! keeps runs deterministic.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemWaiter {
    n: usize,
    granted: Cell<bool>,
    cancelled: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

struct SemInner {
    permits: Cell<usize>,
    waiters: RefCell<VecDeque<Rc<SemWaiter>>>,
}

impl SemInner {
    /// Hands permits to queued waiters in FIFO order. A large request at
    /// the head blocks smaller ones behind it (no barging), which is the
    /// behaviour wanted for modelling service queues.
    fn drain(&self) {
        loop {
            let front = {
                let waiters = self.waiters.borrow();
                match waiters.front() {
                    Some(w) if w.cancelled.get() => Some(None),
                    Some(w) if w.n <= self.permits.get() => Some(Some(Rc::clone(w))),
                    _ => None,
                }
            };
            match front {
                Some(Some(w)) => {
                    self.waiters.borrow_mut().pop_front();
                    self.permits.set(self.permits.get() - w.n);
                    w.granted.set(true);
                    if let Some(waker) = w.waker.borrow_mut().take() {
                        waker.wake();
                    }
                }
                Some(None) => {
                    self.waiters.borrow_mut().pop_front();
                }
                None => break,
            }
        }
    }
}

/// A FIFO counting semaphore.
///
/// ```
/// use daosim_kernel::{Sim, SimDuration};
/// use daosim_kernel::sync::Semaphore;
///
/// let sim = Sim::new();
/// let sem = Semaphore::new(1); // a single-server service queue
/// for _ in 0..3 {
///     let (s, m) = (sim.clone(), sem.clone());
///     sim.spawn(async move {
///         let _permit = m.acquire_one().await;
///         s.sleep(SimDuration::from_micros(10)).await; // service time
///     });
/// }
/// // Three requests serialize: 30 us total.
/// assert_eq!(sim.run().expect_quiescent().as_nanos(), 30_000);
/// ```
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<SemInner>,
}

impl Semaphore {
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(SemInner {
                permits: Cell::new(permits),
                waiters: RefCell::new(VecDeque::new()),
            }),
        }
    }

    pub fn available(&self) -> usize {
        self.inner.permits.get()
    }

    /// Number of requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.inner
            .waiters
            .borrow()
            .iter()
            .filter(|w| !w.cancelled.get())
            .count()
    }

    /// Acquires `n` permits, waiting FIFO behind earlier requests. The
    /// returned guard releases the permits when dropped.
    pub fn acquire(&self, n: usize) -> Acquire {
        Acquire {
            sem: self.clone(),
            n,
            waiter: None,
        }
    }

    /// Acquires a single permit.
    pub fn acquire_one(&self) -> Acquire {
        self.acquire(1)
    }

    fn release(&self, n: usize) {
        self.inner.permits.set(self.inner.permits.get() + n);
        self.inner.drain();
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    n: usize,
    waiter: Option<Rc<SemWaiter>>,
}

impl Future for Acquire {
    type Output = SemPermit;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SemPermit> {
        let this = &mut *self;
        if let Some(w) = &this.waiter {
            if w.granted.get() {
                this.waiter = None;
                return Poll::Ready(SemPermit {
                    sem: this.sem.clone(),
                    n: this.n,
                });
            }
            *w.waker.borrow_mut() = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let inner = &this.sem.inner;
        if inner.waiters.borrow().is_empty() && inner.permits.get() >= this.n {
            inner.permits.set(inner.permits.get() - this.n);
            return Poll::Ready(SemPermit {
                sem: this.sem.clone(),
                n: this.n,
            });
        }
        let waiter = Rc::new(SemWaiter {
            n: this.n,
            granted: Cell::new(false),
            cancelled: Cell::new(false),
            waker: RefCell::new(Some(cx.waker().clone())),
        });
        inner.waiters.borrow_mut().push_back(Rc::clone(&waiter));
        this.waiter = Some(waiter);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(w) = self.waiter.take() {
            if w.granted.get() {
                // Granted but never observed: hand the permits back.
                self.sem.release(self.n);
            } else {
                // Remove the queue slot immediately and re-drain: a
                // cancelled waiter at the head (e.g. a big request whose
                // retry timeout fired) must not keep blocking grantable
                // waiters behind it until some unrelated release happens.
                w.cancelled.set(true);
                self.sem
                    .inner
                    .waiters
                    .borrow_mut()
                    .retain(|q| !Rc::ptr_eq(q, &w));
                self.sem.inner.drain();
            }
        }
    }
}

/// Permits held on a [`Semaphore`]; released on drop.
pub struct SemPermit {
    sem: Semaphore,
    n: usize,
}

impl Drop for SemPermit {
    fn drop(&mut self) {
        self.sem.release(self.n);
    }
}

// ---------------------------------------------------------------------------
// PrioritySemaphore
// ---------------------------------------------------------------------------

/// How a [`PrioritySemaphore`] picks the next waiter to admit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Strict arrival order across every class. Grant order (and therefore
    /// simulated timing) is byte-identical to a plain [`Semaphore`].
    #[default]
    Fifo,
    /// Urgent-class waiters (deadline-carrying writers) are admitted ahead
    /// of normal-class waiters. `aging` bounds starvation: once `aging`
    /// consecutive urgent grants have been made while a normal waiter sat
    /// queued, the next grant is forced to the normal lane's oldest
    /// waiter. Values below 1 behave as 1.
    WriterPriority { aging: u32 },
}

impl AdmissionPolicy {
    /// Default anti-starvation credit for [`Self::writer_priority`].
    pub const DEFAULT_AGING: u32 = 4;

    /// `WriterPriority` with the default aging credit.
    pub fn writer_priority() -> Self {
        AdmissionPolicy::WriterPriority {
            aging: Self::DEFAULT_AGING,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::WriterPriority { .. } => "writer-priority",
        }
    }

    /// Parses the CLI spelling (`fifo` / `writer-priority`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(AdmissionPolicy::Fifo),
            "writer-priority" => Some(Self::writer_priority()),
            _ => None,
        }
    }
}

/// The admission lane a waiter queues in. The kernel does not know about
/// QoS classes; callers map their traffic classes onto these two lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionClass {
    /// Deadline-carrying traffic: admitted first under
    /// [`AdmissionPolicy::WriterPriority`].
    Urgent,
    /// Everything else.
    #[default]
    Normal,
}

fn lane_of(class: AdmissionClass) -> usize {
    match class {
        AdmissionClass::Urgent => 0,
        AdmissionClass::Normal => 1,
    }
}

struct PrioWaiter {
    n: usize,
    /// Global arrival order across both lanes; the FIFO tie-break.
    seq: u64,
    class: AdmissionClass,
    granted: Cell<bool>,
    cancelled: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

struct PrioInner {
    policy: AdmissionPolicy,
    permits: Cell<usize>,
    next_seq: Cell<u64>,
    /// `lanes[0]` = urgent, `lanes[1]` = normal (see [`lane_of`]).
    lanes: [RefCell<VecDeque<Rc<PrioWaiter>>>; 2],
    /// Consecutive urgent grants made while a normal waiter sat queued.
    credit: Cell<u32>,
    /// Grants forced to the normal lane by the aging credit.
    aged_grants: Cell<u64>,
}

impl PrioInner {
    /// Drops cancelled waiters off the front of `lane` and returns its
    /// live head.
    fn head(&self, lane: usize) -> Option<Rc<PrioWaiter>> {
        let mut q = self.lanes[lane].borrow_mut();
        while q.front().is_some_and(|w| w.cancelled.get()) {
            q.pop_front();
        }
        q.front().cloned()
    }

    /// The waiter the policy would admit next, with its lane. Deterministic:
    /// within a lane FIFO by `seq`; across lanes either global `seq` order
    /// (Fifo) or urgent-first with the aging override (WriterPriority).
    fn pick(&self) -> Option<(usize, Rc<PrioWaiter>)> {
        match (self.head(0), self.head(1)) {
            (None, None) => None,
            (Some(w), None) => Some((0, w)),
            (None, Some(w)) => Some((1, w)),
            (Some(urgent), Some(normal)) => match self.policy {
                AdmissionPolicy::Fifo => {
                    if urgent.seq < normal.seq {
                        Some((0, urgent))
                    } else {
                        Some((1, normal))
                    }
                }
                AdmissionPolicy::WriterPriority { aging } => {
                    if self.credit.get() >= aging.max(1) {
                        Some((1, normal))
                    } else {
                        Some((0, urgent))
                    }
                }
            },
        }
    }

    /// Hands permits to waiters in policy order. The selected head blocks
    /// smaller requests behind it (no barging within the grant order),
    /// exactly like [`SemInner::drain`].
    fn drain(&self) {
        loop {
            let Some((lane, w)) = self.pick() else { break };
            if w.n > self.permits.get() {
                break;
            }
            self.lanes[lane].borrow_mut().pop_front();
            self.permits.set(self.permits.get() - w.n);
            w.granted.set(true);
            if let AdmissionPolicy::WriterPriority { aging } = self.policy {
                if lane == 0 {
                    let normal_waiting = self.lanes[1].borrow().iter().any(|q| !q.cancelled.get());
                    if normal_waiting {
                        self.credit.set(self.credit.get().saturating_add(1));
                    } else {
                        self.credit.set(0);
                    }
                } else {
                    if self.credit.get() >= aging.max(1) {
                        self.aged_grants.set(self.aged_grants.get() + 1);
                    }
                    self.credit.set(0);
                }
            }
            let waker = w.waker.borrow_mut().take();
            if let Some(waker) = waker {
                waker.wake();
            }
        }
    }
}

/// A counting semaphore with per-class FIFO lanes and a pluggable
/// admission policy — the QoS enforcement point for target service
/// queues.
///
/// Under [`AdmissionPolicy::Fifo`] the grant order is global arrival
/// order (unique `(class, seq)` tie-break), byte-identical to a plain
/// [`Semaphore`]. Under [`AdmissionPolicy::WriterPriority`] urgent
/// waiters go first, with an aging credit so normal waiters are never
/// starved forever. Dropping a pending [`PrioAcquire`] (a cancelled
/// retry attempt) removes its queue slot immediately and re-drains.
#[derive(Clone)]
pub struct PrioritySemaphore {
    inner: Rc<PrioInner>,
}

impl PrioritySemaphore {
    pub fn new(permits: usize, policy: AdmissionPolicy) -> Self {
        PrioritySemaphore {
            inner: Rc::new(PrioInner {
                policy,
                permits: Cell::new(permits),
                next_seq: Cell::new(0),
                lanes: [RefCell::new(VecDeque::new()), RefCell::new(VecDeque::new())],
                credit: Cell::new(0),
                aged_grants: Cell::new(0),
            }),
        }
    }

    /// A FIFO-admission instance (the default policy).
    pub fn fifo(permits: usize) -> Self {
        Self::new(permits, AdmissionPolicy::Fifo)
    }

    pub fn policy(&self) -> AdmissionPolicy {
        self.inner.policy
    }

    pub fn available(&self) -> usize {
        self.inner.permits.get()
    }

    /// Number of live requests queued across both lanes.
    pub fn queue_len(&self) -> usize {
        self.inner
            .lanes
            .iter()
            .map(|l| l.borrow().iter().filter(|w| !w.cancelled.get()).count())
            .sum()
    }

    /// Grants the aging credit forced to the normal lane so far — the
    /// anti-starvation counter surfaced in QoS metrics.
    pub fn aged_grants(&self) -> u64 {
        self.inner.aged_grants.get()
    }

    /// Acquires `n` permits in `class`'s lane. The returned guard
    /// releases the permits when dropped.
    pub fn acquire(&self, n: usize, class: AdmissionClass) -> PrioAcquire {
        PrioAcquire {
            sem: self.clone(),
            n,
            class,
            waiter: None,
        }
    }

    /// Acquires a single permit in `class`'s lane.
    pub fn acquire_one(&self, class: AdmissionClass) -> PrioAcquire {
        self.acquire(1, class)
    }

    fn release(&self, n: usize) {
        self.inner.permits.set(self.inner.permits.get() + n);
        self.inner.drain();
    }
}

/// Future returned by [`PrioritySemaphore::acquire`].
pub struct PrioAcquire {
    sem: PrioritySemaphore,
    n: usize,
    class: AdmissionClass,
    waiter: Option<Rc<PrioWaiter>>,
}

impl Future for PrioAcquire {
    type Output = PrioPermit;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<PrioPermit> {
        let this = &mut *self;
        if let Some(w) = &this.waiter {
            if w.granted.get() {
                this.waiter = None;
                return Poll::Ready(PrioPermit {
                    sem: this.sem.clone(),
                    n: this.n,
                });
            }
            *w.waker.borrow_mut() = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let inner = &this.sem.inner;
        let seq = inner.next_seq.get();
        inner.next_seq.set(seq + 1);
        let waiter = Rc::new(PrioWaiter {
            n: this.n,
            seq,
            class: this.class,
            granted: Cell::new(false),
            cancelled: Cell::new(false),
            waker: RefCell::new(None),
        });
        inner.lanes[lane_of(this.class)]
            .borrow_mut()
            .push_back(Rc::clone(&waiter));
        inner.drain();
        if waiter.granted.get() {
            // Drained synchronously (uncontended, or an urgent arrival
            // admitted past a blocked normal head): no wake round-trip,
            // matching the plain semaphore's fast path.
            return Poll::Ready(PrioPermit {
                sem: this.sem.clone(),
                n: this.n,
            });
        }
        *waiter.waker.borrow_mut() = Some(cx.waker().clone());
        this.waiter = Some(waiter);
        Poll::Pending
    }
}

impl Drop for PrioAcquire {
    fn drop(&mut self) {
        if let Some(w) = self.waiter.take() {
            if w.granted.get() {
                // Granted but never observed: hand the permits back.
                self.sem.release(self.n);
            } else {
                // Cancellation-safe removal: free the slot now and
                // re-drain so a cancelled head cannot swallow the wakeup
                // destined for the waiter behind it.
                w.cancelled.set(true);
                self.sem.inner.lanes[lane_of(w.class)]
                    .borrow_mut()
                    .retain(|q| !Rc::ptr_eq(q, &w));
                self.sem.inner.drain();
            }
        }
    }
}

/// Permits held on a [`PrioritySemaphore`]; released on drop.
pub struct PrioPermit {
    sem: PrioritySemaphore,
    n: usize,
}

impl Drop for PrioPermit {
    fn drop(&mut self) {
        self.sem.release(self.n);
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

struct BarrierInner {
    parties: usize,
    arrived: Cell<usize>,
    generation: Cell<u64>,
    wakers: RefCell<Vec<Waker>>,
}

/// An MPI-style reusable barrier for `parties` tasks.
///
/// ```
/// use daosim_kernel::{Sim, SimDuration};
/// use daosim_kernel::sync::Barrier;
///
/// let sim = Sim::new();
/// let bar = Barrier::new(2);
/// for i in 1..=2u64 {
///     let (s, b) = (sim.clone(), bar.clone());
///     sim.spawn(async move {
///         s.sleep(SimDuration::from_micros(i)).await;
///         b.wait().await; // both released when the slower one arrives
///         assert_eq!(s.now().as_nanos(), 2_000);
///     });
/// }
/// sim.run().expect_quiescent();
/// ```
#[derive(Clone)]
pub struct Barrier {
    inner: Rc<BarrierInner>,
}

impl Barrier {
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            inner: Rc::new(BarrierInner {
                parties,
                arrived: Cell::new(0),
                generation: Cell::new(0),
                wakers: RefCell::new(Vec::new()),
            }),
        }
    }

    pub fn parties(&self) -> usize {
        self.inner.parties
    }

    /// Waits until all parties have called `wait` for this generation.
    pub fn wait(&self) -> BarrierWait {
        let inner = &self.inner;
        let gen = inner.generation.get();
        let arrived = inner.arrived.get() + 1;
        if arrived == inner.parties {
            inner.arrived.set(0);
            inner.generation.set(gen + 1);
            for w in inner.wakers.borrow_mut().drain(..) {
                w.wake();
            }
        } else {
            inner.arrived.set(arrived);
        }
        BarrierWait {
            barrier: self.clone(),
            generation: gen,
        }
    }
}

/// Future returned by [`Barrier::wait`].
pub struct BarrierWait {
    barrier: Barrier,
    generation: u64,
}

impl Future for BarrierWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.barrier.inner.generation.get() > self.generation {
            Poll::Ready(())
        } else {
            self.barrier
                .inner
                .wakers
                .borrow_mut()
                .push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Oneshot completion
// ---------------------------------------------------------------------------

struct OneshotInner<T> {
    value: RefCell<Option<T>>,
    waker: RefCell<Option<Waker>>,
}

/// Creates a one-shot completion pair.
pub fn oneshot<T: 'static>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let inner = Rc::new(OneshotInner {
        value: RefCell::new(None),
        waker: RefCell::new(None),
    });
    (
        OneshotSender {
            inner: Rc::clone(&inner),
        },
        OneshotReceiver { inner },
    )
}

pub struct OneshotSender<T> {
    inner: Rc<OneshotInner<T>>,
}

impl<T> OneshotSender<T> {
    pub fn send(self, value: T) {
        *self.inner.value.borrow_mut() = Some(value);
        if let Some(w) = self.inner.waker.borrow_mut().take() {
            w.wake();
        }
    }
}

pub struct OneshotReceiver<T> {
    inner: Rc<OneshotInner<T>>,
}

impl<T> Future for OneshotReceiver<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        if let Some(v) = self.inner.value.borrow_mut().take() {
            Poll::Ready(v)
        } else {
            *self.inner.waker.borrow_mut() = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Unbounded channel
// ---------------------------------------------------------------------------

struct ChannelInner<T> {
    queue: RefCell<VecDeque<T>>,
    waker: RefCell<Option<Waker>>,
    senders: Cell<usize>,
}

/// Creates an unbounded single-consumer channel.
pub fn channel<T: 'static>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(ChannelInner {
        queue: RefCell::new(VecDeque::new()),
        waker: RefCell::new(None),
        senders: Cell::new(1),
    });
    (
        Sender {
            inner: Rc::clone(&inner),
        },
        Receiver { inner },
    )
}

pub struct Sender<T> {
    inner: Rc<ChannelInner<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.set(self.inner.senders.get() + 1);
        Sender {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let left = self.inner.senders.get() - 1;
        self.inner.senders.set(left);
        if left == 0 {
            if let Some(w) = self.inner.waker.borrow_mut().take() {
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) {
        self.inner.queue.borrow_mut().push_back(value);
        if let Some(w) = self.inner.waker.borrow_mut().take() {
            w.wake();
        }
    }
}

pub struct Receiver<T> {
    inner: Rc<ChannelInner<T>>,
}

impl<T> Receiver<T> {
    /// Receives the next value; resolves to `None` when every sender has
    /// been dropped and the queue is empty.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { rx: self }
    }
}

pub struct Recv<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let inner = &self.rx.inner;
        if let Some(v) = inner.queue.borrow_mut().pop_front() {
            return Poll::Ready(Some(v));
        }
        if inner.senders.get() == 0 {
            return Poll::Ready(None);
        }
        *inner.waker.borrow_mut() = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// join_all
// ---------------------------------------------------------------------------

/// Drives a set of futures concurrently within one task and collects their
/// outputs in input order. This is how one simulated process issues
/// parallel stripe transfers.
pub fn join_all<F: Future>(futures: Vec<F>) -> JoinAll<F> {
    JoinAll {
        slots: futures
            .into_iter()
            .map(|f| JoinSlot::Pending(Box::pin(f)))
            .collect(),
    }
}

enum JoinSlot<F: Future> {
    Pending(Pin<Box<F>>),
    Done(Option<F::Output>),
}

pub struct JoinAll<F: Future> {
    slots: Vec<JoinSlot<F>>,
}

impl<F: Future> Future for JoinAll<F> {
    type Output = Vec<F::Output>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Vec<F::Output>> {
        // Safety: the inner futures are heap-pinned (`Pin<Box<F>>`); nothing
        // here moves out of a pinned future.
        let this = unsafe { self.get_unchecked_mut() };
        let mut all_done = true;
        for slot in &mut this.slots {
            if let JoinSlot::Pending(fut) = slot {
                match fut.as_mut().poll(cx) {
                    Poll::Ready(v) => *slot = JoinSlot::Done(Some(v)),
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            let outs = this
                .slots
                .iter_mut()
                .map(|s| match s {
                    JoinSlot::Done(v) => v.take().expect("join_all polled after completion"),
                    JoinSlot::Pending(_) => unreachable!(),
                })
                .collect();
            Poll::Ready(outs)
        } else {
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// race / WaitGroup
// ---------------------------------------------------------------------------

/// Polls two futures concurrently; resolves with the first to finish
/// (`Either::Left` on ties, since the left side is polled first). The
/// loser is dropped, cancelling it; dropped sleeps disarm their calendar
/// entries, so an abandoned contestant leaves no trace on the clock.
pub fn race<A: Future, B: Future>(a: A, b: B) -> Race<A, B> {
    Race {
        a: Box::pin(a),
        b: Box::pin(b),
    }
}

/// Which contestant of a [`race`] won.
#[derive(Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    Left(A),
    Right(B),
}

pub struct Race<A: Future, B: Future> {
    a: Pin<Box<A>>,
    b: Pin<Box<B>>,
}

impl<A: Future, B: Future> Future for Race<A, B> {
    type Output = Either<A::Output, B::Output>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety: contestants stay heap-pinned; nothing moves out of them.
        let this = unsafe { self.get_unchecked_mut() };
        if let Poll::Ready(v) = this.a.as_mut().poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = this.b.as_mut().poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

/// Runs `fut` with a simulated-time deadline: `Ok(value)` if it resolves
/// within `limit`, `Err(Elapsed)` otherwise (the future is dropped, i.e.
/// cancelled). The deadline is armed as a *cancellable* calendar timer:
/// when the future wins — or the `Timeout` itself is dropped — the timer
/// is cancelled and leaves no trace on the clock, so wrapping fast
/// operations in generous deadlines does not stretch the simulation's
/// end time.
pub fn timeout<F: Future>(
    sim: &crate::executor::Sim,
    limit: crate::time::SimDuration,
    fut: F,
) -> Timeout<F> {
    let shared = Rc::new(TimeoutShared {
        fired: Cell::new(false),
        waker: RefCell::new(None),
    });
    let s2 = Rc::clone(&shared);
    let timer = sim.schedule_cancellable_after(limit, move || {
        s2.fired.set(true);
        if let Some(w) = s2.waker.borrow_mut().take() {
            w.wake();
        }
    });
    Timeout {
        fut: Box::pin(fut),
        timer: Some(timer),
        shared,
    }
}

/// Error returned when a [`timeout`] deadline passes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

struct TimeoutShared {
    fired: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

pub struct Timeout<F: Future> {
    fut: Pin<Box<F>>,
    timer: Option<crate::executor::TimerHandle>,
    shared: Rc<TimeoutShared>,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // The wrapped future gets the first look, so a same-instant
        // completion beats the deadline (left-biased, like `race`).
        if let Poll::Ready(v) = self.fut.as_mut().poll(cx) {
            if let Some(t) = self.timer.take() {
                t.cancel();
            }
            return Poll::Ready(Ok(v));
        }
        if self.shared.fired.get() {
            return Poll::Ready(Err(Elapsed));
        }
        *self.shared.waker.borrow_mut() = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl<F: Future> Drop for Timeout<F> {
    fn drop(&mut self) {
        if let Some(t) = self.timer.take() {
            t.cancel();
        }
    }
}

struct WaitGroupInner {
    count: Cell<usize>,
    wakers: RefCell<Vec<Waker>>,
}

/// Counts outstanding work; `wait` resolves when the count reaches zero.
/// The idiomatic way for an orchestrator task to join a set of spawned
/// simulated processes.
#[derive(Clone)]
pub struct WaitGroup {
    inner: Rc<WaitGroupInner>,
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitGroup {
    pub fn new() -> Self {
        WaitGroup {
            inner: Rc::new(WaitGroupInner {
                count: Cell::new(0),
                wakers: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Registers one unit of outstanding work; the returned token
    /// completes it on drop.
    pub fn add(&self) -> WorkToken {
        self.inner.count.set(self.inner.count.get() + 1);
        WorkToken {
            inner: Rc::clone(&self.inner),
        }
    }

    pub fn outstanding(&self) -> usize {
        self.inner.count.get()
    }

    /// Resolves once every token has been dropped.
    pub fn wait(&self) -> WaitGroupWait {
        WaitGroupWait {
            inner: Rc::clone(&self.inner),
        }
    }
}

/// One unit of outstanding [`WaitGroup`] work.
pub struct WorkToken {
    inner: Rc<WaitGroupInner>,
}

impl Drop for WorkToken {
    fn drop(&mut self) {
        let left = self.inner.count.get() - 1;
        self.inner.count.set(left);
        if left == 0 {
            for w in self.inner.wakers.borrow_mut().drain(..) {
                w.wake();
            }
        }
    }
}

pub struct WaitGroupWait {
    inner: Rc<WaitGroupInner>,
}

impl Future for WaitGroupWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.inner.count.get() == 0 {
            Poll::Ready(())
        } else {
            self.inner.wakers.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::{SimDuration, SimTime};
    use std::rc::Rc;

    #[test]
    fn semaphore_serializes_fifo() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::default();
        for i in 0..4u32 {
            let (s, sem, log) = (sim.clone(), sem.clone(), Rc::clone(&log));
            sim.spawn(async move {
                // Stagger arrivals so the queue order is well-defined.
                s.sleep(SimDuration::from_nanos(i as u64)).await;
                let _permit = sem.acquire_one().await;
                log.borrow_mut().push((i, s.now().as_nanos()));
                s.sleep(SimDuration::from_nanos(100)).await;
            });
        }
        sim.run().expect_quiescent();
        let got = log.borrow().clone();
        assert_eq!(got.len(), 4);
        // FIFO: tasks enter in arrival order, each 100ns apart.
        assert_eq!(got[0], (0, 0));
        assert_eq!(got[1], (1, 100));
        assert_eq!(got[2], (2, 200));
        assert_eq!(got[3], (3, 300));
    }

    #[test]
    fn semaphore_multi_permit_no_barging() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let (s1, m1, l1) = (sim.clone(), sem.clone(), Rc::clone(&log));
        sim.spawn(async move {
            let _p = m1.acquire(2).await;
            l1.borrow_mut().push("big-in");
            s1.sleep(SimDuration::from_nanos(50)).await;
            l1.borrow_mut().push("big-out");
        });
        let (s2, m2, l2) = (sim.clone(), sem.clone(), Rc::clone(&log));
        sim.spawn(async move {
            s2.sleep(SimDuration::from_nanos(1)).await;
            // Queued behind nothing, but only 0 permits free until big-out.
            let _p = m2.acquire(1).await;
            l2.borrow_mut().push("small");
        });
        sim.run().expect_quiescent();
        assert_eq!(*log.borrow(), vec!["big-in", "big-out", "small"]);
    }

    #[test]
    fn semaphore_cancelled_waiter_is_skipped() {
        let sim = Sim::new();
        let sem = Semaphore::new(0);
        {
            // Create and immediately drop a pending acquire.
            let mut acq = sem.acquire(1);
            let waker = Waker::noop();
            let mut cx = Context::from_waker(waker);
            assert!(Pin::new(&mut acq).poll(&mut cx).is_pending());
        }
        assert_eq!(sem.queue_len(), 0);
        let hit: Rc<Cell<bool>> = Rc::default();
        let (m, h) = (sem.clone(), Rc::clone(&hit));
        sim.spawn(async move {
            let _p = m.acquire_one().await;
            h.set(true);
        });
        sem.release(1);
        sim.run().expect_quiescent();
        assert!(hit.get());
    }

    #[test]
    fn cancelled_oversized_waiter_unblocks_queue() {
        // A waiter whose request can never be granted (n > permits) is
        // dropped while queued; the waiter behind it must be admitted
        // without any further release() happening.
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let mut big = sem.acquire(2);
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        assert!(Pin::new(&mut big).poll(&mut cx).is_pending());
        let hit: Rc<Cell<bool>> = Rc::default();
        let (m, h) = (sem.clone(), Rc::clone(&hit));
        sim.spawn(async move {
            let _p = m.acquire_one().await;
            h.set(true);
        });
        drop(big);
        assert_eq!(sem.queue_len(), 0);
        sim.run().expect_quiescent();
        assert!(
            hit.get(),
            "cancelled head swallowed the next waiter's wakeup"
        );
    }

    /// Staggered arrivals through `sem`, one task per entry of `plan`
    /// (`(class, hold_ns)`), logging `(task, grant_time)`.
    fn prio_grant_log(
        sim: &Sim,
        sem: &PrioritySemaphore,
        plan: &[(AdmissionClass, u64)],
    ) -> Vec<(u32, u64)> {
        let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::default();
        for (i, &(class, hold)) in plan.iter().enumerate() {
            let (s, m, log) = (sim.clone(), sem.clone(), Rc::clone(&log));
            sim.spawn(async move {
                s.sleep(SimDuration::from_nanos(i as u64)).await;
                let _p = m.acquire_one(class).await;
                log.borrow_mut().push((i as u32, s.now().as_nanos()));
                s.sleep(SimDuration::from_nanos(hold)).await;
            });
        }
        sim.run().expect_quiescent();
        Rc::try_unwrap(log).unwrap().into_inner()
    }

    #[test]
    fn priority_fifo_matches_plain_semaphore() {
        // Under AdmissionPolicy::Fifo the (class, seq) tie-break reduces
        // to global arrival order: grant times must match the plain
        // Semaphore exactly, whatever the class mix.
        let plan: Vec<(AdmissionClass, u64)> = (0..6)
            .map(|i| {
                let class = if i % 2 == 0 {
                    AdmissionClass::Urgent
                } else {
                    AdmissionClass::Normal
                };
                (class, 100)
            })
            .collect();
        let sim = Sim::new();
        let got = prio_grant_log(&sim, &PrioritySemaphore::fifo(1), &plan);
        let plain = Sim::new();
        let sem = Semaphore::new(1);
        let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::default();
        for (i, &(_, hold)) in plan.iter().enumerate() {
            let (s, m, log) = (plain.clone(), sem.clone(), Rc::clone(&log));
            plain.spawn(async move {
                s.sleep(SimDuration::from_nanos(i as u64)).await;
                let _p = m.acquire_one().await;
                log.borrow_mut().push((i as u32, s.now().as_nanos()));
                s.sleep(SimDuration::from_nanos(hold)).await;
            });
        }
        plain.run().expect_quiescent();
        assert_eq!(got, log.borrow().clone());
    }

    #[test]
    fn writer_priority_admits_urgent_before_earlier_normals() {
        // Normals arrive first (tasks 1..3), the urgent writer last
        // (task 4); while task 0 holds the permit the urgent waiter
        // jumps the whole normal lane.
        let plan = vec![
            (AdmissionClass::Normal, 100),
            (AdmissionClass::Normal, 100),
            (AdmissionClass::Normal, 100),
            (AdmissionClass::Normal, 100),
            (AdmissionClass::Urgent, 100),
        ];
        let sim = Sim::new();
        let sem = PrioritySemaphore::new(1, AdmissionPolicy::WriterPriority { aging: 10 });
        let got = prio_grant_log(&sim, &sem, &plan);
        let order: Vec<u32> = got.iter().map(|&(i, _)| i).collect();
        assert_eq!(order, vec![0, 4, 1, 2, 3]);
    }

    #[test]
    fn aging_credit_unstarves_the_normal_lane() {
        // One normal waiter queued at t=1 behind a stream of urgent
        // holders; with aging = 2 it must be admitted after exactly two
        // urgent grants made while it waited, and the forced grant is
        // counted.
        let plan = vec![
            (AdmissionClass::Urgent, 100), // holds [1, 101]
            (AdmissionClass::Normal, 100),
            (AdmissionClass::Urgent, 100),
            (AdmissionClass::Urgent, 100),
            (AdmissionClass::Urgent, 100),
            (AdmissionClass::Urgent, 100),
        ];
        let sim = Sim::new();
        let sem = PrioritySemaphore::new(1, AdmissionPolicy::WriterPriority { aging: 2 });
        let got = prio_grant_log(&sim, &sem, &plan);
        let order: Vec<u32> = got.iter().map(|&(i, _)| i).collect();
        // Two urgent grants accrue credit, then the normal waiter goes,
        // then the remaining urgents.
        assert_eq!(order, vec![0, 2, 3, 1, 4, 5]);
        assert_eq!(sem.aged_grants(), 1);
    }

    #[test]
    fn priority_cancelled_urgent_head_admits_normal() {
        // Mirror of cancelled_oversized_waiter_unblocked for the
        // priority lanes: an unsatisfiable urgent request is dropped and
        // the normal lane must be admitted with no release().
        let sim = Sim::new();
        let sem = PrioritySemaphore::new(1, AdmissionPolicy::writer_priority());
        let mut big = sem.acquire(2, AdmissionClass::Urgent);
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        assert!(Pin::new(&mut big).poll(&mut cx).is_pending());
        let hit: Rc<Cell<bool>> = Rc::default();
        let (m, h) = (sem.clone(), Rc::clone(&hit));
        sim.spawn(async move {
            let _p = m.acquire_one(AdmissionClass::Normal).await;
            h.set(true);
        });
        drop(big);
        assert_eq!(sem.queue_len(), 0);
        sim.run().expect_quiescent();
        assert!(hit.get());
        assert_eq!(
            sem.available(),
            1,
            "permit returned when the task's guard dropped"
        );
    }

    #[test]
    fn admission_policy_parse_roundtrip() {
        assert_eq!(AdmissionPolicy::parse("fifo"), Some(AdmissionPolicy::Fifo));
        assert_eq!(
            AdmissionPolicy::parse("writer-priority"),
            Some(AdmissionPolicy::WriterPriority {
                aging: AdmissionPolicy::DEFAULT_AGING
            })
        );
        assert_eq!(AdmissionPolicy::parse("lifo"), None);
        assert_eq!(AdmissionPolicy::Fifo.name(), "fifo");
        assert_eq!(AdmissionPolicy::writer_priority().name(), "writer-priority");
    }

    #[test]
    fn barrier_releases_all_parties_together() {
        let sim = Sim::new();
        let bar = Barrier::new(3);
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        for i in 0..3u64 {
            let (s, b, log) = (sim.clone(), bar.clone(), Rc::clone(&log));
            sim.spawn(async move {
                s.sleep(SimDuration::from_nanos(10 * (i + 1))).await;
                b.wait().await;
                log.borrow_mut().push(s.now().as_nanos());
            });
        }
        sim.run().expect_quiescent();
        // All released at the last arrival (t=30).
        assert_eq!(*log.borrow(), vec![30, 30, 30]);
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let sim = Sim::new();
        let bar = Barrier::new(2);
        let count: Rc<Cell<u32>> = Rc::default();
        for i in 0..2u64 {
            let (s, b, c) = (sim.clone(), bar.clone(), Rc::clone(&count));
            sim.spawn(async move {
                for round in 0..5u64 {
                    s.sleep(SimDuration::from_nanos(1 + i * round)).await;
                    b.wait().await;
                    c.set(c.get() + 1);
                }
            });
        }
        sim.run().expect_quiescent();
        assert_eq!(count.get(), 10);
    }

    #[test]
    fn oneshot_delivers() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            assert_eq!(rx.await, 42);
            assert_eq!(s.now().as_nanos(), 99);
        });
        sim.schedule_at(crate::time::SimTime::from_nanos(99), move || tx.send(42));
        sim.run().expect_quiescent();
    }

    #[test]
    fn channel_closes_when_senders_drop() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            assert_eq!(got, vec![1, 2, 3]);
            let _ = s;
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            for v in 1..=3 {
                tx.send(v);
                s2.sleep(SimDuration::from_nanos(5)).await;
            }
            // tx dropped here -> receiver sees None.
        });
        sim.run().expect_quiescent();
    }

    #[test]
    fn race_picks_the_faster_future() {
        let sim = Sim::new();
        let s = sim.clone();
        let end = sim.block_on(async move {
            let fast = {
                let s = s.clone();
                async move {
                    s.sleep(SimDuration::from_nanos(10)).await;
                    "fast"
                }
            };
            let slow = {
                let s = s.clone();
                async move {
                    s.sleep(SimDuration::from_nanos(100)).await;
                    "slow"
                }
            };
            let resolved_at = {
                let r = race(slow, fast).await;
                match r {
                    Either::Right(v) => assert_eq!(v, "fast"),
                    Either::Left(v) => panic!("slow future won: {v}"),
                }
                s.now().as_nanos()
            };
            // The race resolved at the fast contestant's time.
            assert_eq!(resolved_at, 10);
        });
        // The loser's sleep is dropped with the race, cancelling its
        // calendar entry: the abandoned deadline does not stretch the run.
        assert_eq!(end.as_nanos(), 10);
    }

    #[test]
    fn race_prefers_left_on_tie() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            let a = {
                let s = s.clone();
                async move { s.sleep(SimDuration::from_nanos(5)).await }
            };
            let b = {
                let s = s.clone();
                async move { s.sleep(SimDuration::from_nanos(5)).await }
            };
            assert!(matches!(race(a, b).await, Either::Left(())));
        });
    }

    #[test]
    fn timeout_resolves_or_elapses() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            // Completes in time.
            let quick = {
                let s = s.clone();
                async move {
                    s.sleep(SimDuration::from_nanos(10)).await;
                    7u32
                }
            };
            assert_eq!(
                timeout(&s, SimDuration::from_nanos(100), quick).await,
                Ok(7)
            );
            // Misses the deadline.
            let slow = {
                let s = s.clone();
                async move {
                    s.sleep(SimDuration::from_micros(1)).await;
                    7u32
                }
            };
            assert_eq!(
                timeout(&s, SimDuration::from_nanos(100), slow).await,
                Err(Elapsed)
            );
        });
    }

    #[test]
    fn timeout_leaves_no_calendar_residue_when_op_completes() {
        // A generous deadline around a fast operation must not stretch the
        // simulation's end time: the timer is cancelled when the op wins.
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            let quick = {
                let s = s.clone();
                async move {
                    s.sleep(SimDuration::from_nanos(10)).await;
                    1u32
                }
            };
            let r = timeout(&s, SimDuration::from_millis(5), quick).await;
            assert_eq!(r, Ok(1));
        });
        let outcome = sim.run();
        assert_eq!(outcome.end_time, SimTime::from_nanos(10));
    }

    #[test]
    fn waitgroup_joins_all_tokens() {
        let sim = Sim::new();
        let wg = WaitGroup::new();
        let done_at: Rc<Cell<u64>> = Rc::default();
        for i in 1..=4u64 {
            let token = wg.add();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_nanos(i * 10)).await;
                drop(token);
            });
        }
        {
            let (wg, s, done_at) = (wg.clone(), sim.clone(), Rc::clone(&done_at));
            sim.spawn(async move {
                wg.wait().await;
                done_at.set(s.now().as_nanos());
            });
        }
        assert_eq!(wg.outstanding(), 4);
        sim.run().expect_quiescent();
        assert_eq!(done_at.get(), 40);
        assert_eq!(wg.outstanding(), 0);
    }

    #[test]
    fn waitgroup_with_no_work_resolves_immediately() {
        let sim = Sim::new();
        let wg = WaitGroup::new();
        let end = sim.block_on(async move {
            wg.wait().await;
        });
        assert_eq!(end.as_nanos(), 0);
    }

    #[test]
    fn join_all_waits_for_slowest() {
        let sim = Sim::new();
        let s = sim.clone();
        let end = sim.block_on(async move {
            let futs = (1..=4u64)
                .map(|i| {
                    let s = s.clone();
                    async move {
                        s.sleep(SimDuration::from_nanos(i * 10)).await;
                        i
                    }
                })
                .collect::<Vec<_>>();
            let outs = join_all(futs).await;
            assert_eq!(outs, vec![1, 2, 3, 4]);
        });
        assert_eq!(end.as_nanos(), 40);
    }

    #[test]
    fn join_all_empty_is_immediate() {
        let sim = Sim::new();
        let end = sim.block_on(async move {
            let outs: Vec<u32> = join_all(Vec::<std::future::Ready<u32>>::new()).await;
            assert!(outs.is_empty());
        });
        assert_eq!(end.as_nanos(), 0);
    }
}
