//! Simulated time.
//!
//! Time is an integer number of nanoseconds since the start of the
//! simulation. Integer time keeps the event queue total-ordered and the
//! simulation bit-for-bit reproducible; floating point enters only at the
//! edges (durations derived from bandwidth models) and is rounded up so a
//! transfer never completes early.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

pub const NS_PER_US: u64 = 1_000;
pub const NS_PER_MS: u64 = 1_000_000;
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// Sentinel "never" time, used for events that are effectively disabled.
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// The duration from `earlier` to `self`. Panics if `earlier` is later.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier time is later than self"),
        )
    }

    /// Like `duration_since` but clamping to zero instead of panicking.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable duration (~584 simulated years). Used as
    /// the saturation cap by [`SimDuration::saturating_from_secs_f64`] and
    /// [`SimDuration::saturating_add`] so pathological byte counts degrade
    /// to "effectively forever" instead of panicking mid-simulation.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NS_PER_US)
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NS_PER_MS)
    }

    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NS_PER_SEC)
    }

    /// Builds a duration from a float second count, rounding *up* to the
    /// next nanosecond so modelled work never finishes early.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        let ns = (secs * NS_PER_SEC as f64).ceil();
        assert!(ns <= u64::MAX as f64, "duration overflows u64 nanoseconds");
        SimDuration(ns as u64)
    }

    /// Like [`SimDuration::from_secs_f64`], but saturating: a non-finite
    /// or nanosecond-overflowing second count clamps to
    /// [`SimDuration::MAX`], and a negative one clamps to
    /// [`SimDuration::ZERO`]. In the non-saturating range the result is
    /// bit-identical to `from_secs_f64` (same ceil, same cast), so timing
    /// models can switch over without perturbing calibrated runs.
    pub fn saturating_from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs == f64::INFINITY {
            return SimDuration::MAX;
        }
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = (secs * NS_PER_SEC as f64).ceil();
        if ns >= u64::MAX as f64 {
            return SimDuration::MAX;
        }
        SimDuration(ns as u64)
    }

    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    #[inline]
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulated time overflowed u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("simulated duration overflowed u64 nanoseconds"),
        )
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_nanos(500) + SimDuration::from_micros(2);
        assert_eq!(t.as_nanos(), 2_500);
        assert_eq!(t.duration_since(SimTime::from_nanos(500)).as_nanos(), 2_000);
        assert_eq!((t - SimTime::from_nanos(2_500)).as_nanos(), 0);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // 1.5 ns expressed in seconds must round up to 2 ns.
        let d = SimDuration::from_secs_f64(1.5e-9);
        assert_eq!(d.as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_nanos(), 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "earlier time is later")]
    fn duration_since_panics_backwards() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let d = SimTime::from_nanos(1).saturating_duration_since(SimTime::from_nanos(9));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimTime::from_nanos(NS_PER_SEC).as_secs_f64(), 1.0);
    }

    #[test]
    fn saturating_from_secs_f64_matches_in_range() {
        // Bit-identical to from_secs_f64 everywhere the latter accepts.
        for secs in [0.0, 1.5e-9, 1.0, 1234.567, 1e9] {
            assert_eq!(
                SimDuration::saturating_from_secs_f64(secs),
                SimDuration::from_secs_f64(secs),
                "diverged at {secs}"
            );
        }
    }

    #[test]
    fn saturating_from_secs_f64_clamps_extremes() {
        assert_eq!(
            SimDuration::saturating_from_secs_f64(f64::INFINITY),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::saturating_from_secs_f64(f64::NAN),
            SimDuration::MAX
        );
        // Just over the representable range in seconds (u64::MAX ns).
        assert_eq!(
            SimDuration::saturating_from_secs_f64(2e10),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::saturating_from_secs_f64(-5.0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_nanos(2).saturating_add(SimDuration::from_nanos(3)),
            SimDuration::from_nanos(5)
        );
    }
}
