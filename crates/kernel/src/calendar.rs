//! Event calendars: the priority structure behind [`crate::Sim`].
//!
//! The production calendar is a **hierarchical timer wheel**
//! ([`TimerWheel`]): six levels of 64 slots each, slot width growing by
//! 64× per level, so any deadline within ~68.7 simulated seconds of the
//! wheel's clock inserts in O(1). Deadlines beyond the horizon park in a
//! sorted overflow map and migrate into the wheel as the clock
//! approaches. Entries are `(at, seq, item)` and pop in `(at, seq)`
//! order — the exact contract of the binary heap it replaced, so the
//! default FIFO schedule stays bit-identical to checked-in artifacts.
//!
//! The old heap survives as [`HeapCalendar`], compiled under tests and
//! the `heap-calendar` feature only. It is the oracle for the proptest
//! equivalence suite (same idiom as PR 1's `naive-flow` reference path)
//! and the baseline side of the `kernel_events` bench.
//!
//! # Level placement and the cascade invariant
//!
//! An entry's level is derived from `at ^ now`: the highest bit where
//! the deadline differs from the wheel clock, divided by 6 (the slot
//! width in bits). Its slot at level `l` is bits `[6l, 6l+6)` of `at` —
//! absolute, not relative, so a slot never needs recomputation as `now`
//! advances. Three facts keep the pop loop correct:
//!
//! 1. a pending entry never leaves its rotation: `at >> 6(l+1)` equals
//!    `now >> 6(l+1)` for as long as the entry is stored at level `l`
//!    (the clock never passes the minimum pending deadline);
//! 2. at insert, the highest differing bit lies inside the slot field,
//!    so the entry's slot is strictly greater than the clock's slot at
//!    that level (level ≥ 1) — and stays ≥ it afterwards;
//! 3. therefore every level-`l ≥ 1` entry is later than every entry at
//!    levels below `l`, and the lowest non-empty level's lowest
//!    occupied slot always contains the global minimum.
//!
//! Popping a level-0 slot yields exact deadlines (level-0 slots are one
//! nanosecond wide, so a slot holds ties only, ordered by `seq`).
//! Selecting a level-`l ≥ 1` slot instead advances the clock to the
//! slot's base time and re-inserts its entries, which land at strictly
//! lower levels (they now share the slot field with the clock) — the
//! cascade terminates in at most [`LEVELS`] rounds per entry.

use std::collections::BTreeMap;

/// Bits per wheel level: 64 slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels. Six levels cover `2^36` ns ≈ 68.7 s of
/// simulated time ahead of the clock; later deadlines overflow.
const LEVELS: usize = 6;
/// First deadline distance (as `at ^ now`) that no longer fits the wheel.
const HORIZON: u64 = 1 << (SLOT_BITS as u64 * LEVELS as u64);

/// One calendar entry.
struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

/// Hierarchical timer wheel keyed on `(at, seq)`.
///
/// `push` is O(1) for deadlines within the horizon (O(log n) into the
/// overflow map beyond it); `pop_next` is amortized O(1) plus at most
/// [`LEVELS`] cascades over an entry's lifetime. Ties on `at` pop in
/// `seq` order, matching the binary-heap calendar bit for bit.
pub struct TimerWheel<T> {
    /// The wheel clock: greatest deadline popped so far (or a cascade
    /// base ≤ the minimum pending deadline). Monotone non-decreasing.
    now: u64,
    /// `levels[l][s]`: entries with slot `s` at level `l`.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Per-level occupancy bitmap; bit `s` set ⇔ `levels[l][s]` non-empty.
    occupied: [u64; LEVELS],
    /// Entries beyond the wheel horizon, sorted by `(at, seq)`.
    overflow: BTreeMap<(u64, u64), T>,
    /// Same-instant batch drained from a level-0 slot, sorted by `seq`
    /// descending so the next entry pops from the back in O(1).
    due: Vec<Entry<T>>,
    /// Number of entries across levels, overflow, and the due batch.
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    pub fn new() -> Self {
        TimerWheel {
            now: 0,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            overflow: BTreeMap::new(),
            due: Vec::new(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel clock (ns). Never decreases; never passes the minimum
    /// pending deadline.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn slot_of(at: u64, level: usize) -> usize {
        ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// Inserts an entry into the wheel proper (caller has checked the
    /// horizon).
    fn insert_wheel(&mut self, at: u64, seq: u64, item: T) {
        let delta = at ^ self.now;
        let level = if delta == 0 {
            0
        } else {
            ((63 - delta.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = Self::slot_of(at, level);
        self.levels[level][slot].push(Entry { at, seq, item });
        self.occupied[level] |= 1 << slot;
    }

    /// Schedules `item` at `(at, seq)`. `at` must be ≥ every pop the
    /// caller has *observed* and `seq` unique (the executor's clock and
    /// scheduling counter guarantee both). An empty wheel rewinds its
    /// clock to the pushed deadline: the internal clock may sit past the
    /// caller's (it advances over discarded dead entries — see
    /// [`TimerWheel::pop_next_alive`]) and with nothing pending there is
    /// nothing the rewind could disorder.
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        if self.len == 0 && at < self.now {
            self.now = at;
        }
        debug_assert!(at >= self.now, "push into the past: {at} < {}", self.now);
        if (at ^ self.now) >= HORIZON {
            self.overflow.insert((at, seq), item);
        } else {
            self.insert_wheel(at, seq, item);
        }
        self.len += 1;
    }

    /// Removes and returns the earliest entry by `(at, seq)`, advancing
    /// the clock to its deadline.
    pub fn pop_next(&mut self) -> Option<(u64, u64, T)> {
        self.pop_next_alive(|_| false)
    }

    /// [`TimerWheel::pop_next`], but entries for which `is_dead` returns
    /// true are discarded in passing (and dropped) rather than returned.
    /// The clock still rides the internal search (it never passes the
    /// minimum *remaining* deadline), but the caller only observes it at
    /// live entries — so a trailing run of dead entries leaves the
    /// caller's view of time untouched, matching the executor's
    /// "a cancelled deadline never advances the clock" contract.
    pub fn pop_next_alive(&mut self, mut is_dead: impl FnMut(&T) -> bool) -> Option<(u64, u64, T)> {
        loop {
            let e = self.pop_entry()?;
            if is_dead(&e.item) {
                continue;
            }
            return Some((e.at, e.seq, e.item));
        }
    }

    /// Removes the earliest entry by `(at, seq)` regardless of liveness.
    fn pop_entry(&mut self) -> Option<Entry<T>> {
        if self.len == 0 {
            return None;
        }
        // Same-instant batch first: everything in it precedes (by seq)
        // anything still in the wheel at this instant.
        if let Some(e) = self.due.pop() {
            self.len -= 1;
            debug_assert!(e.at == self.now);
            return Some(e);
        }
        loop {
            // Pull overflow entries that fit the horizon relative to the
            // current clock. Each entry migrates at most once.
            while let Some((&(at, seq), _)) = self.overflow.first_key_value() {
                if (at ^ self.now) < HORIZON {
                    let item = self.overflow.remove(&(at, seq)).expect("first key present");
                    self.insert_wheel(at, seq, item);
                } else {
                    break;
                }
            }
            let Some(level) = self.occupied.iter().position(|&b| b != 0) else {
                // Wheel empty: the overflow minimum is the global
                // minimum. Jump the clock to it and migrate.
                let (&(at, _), _) = self.overflow.first_key_value().expect("len > 0");
                self.now = at;
                continue;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            let entries = std::mem::take(&mut self.levels[level][slot]);
            self.occupied[level] &= !(1 << slot);
            if level == 0 {
                // One-nanosecond slot: all entries share `at`. Drain it
                // as the due batch, min seq popping first.
                self.due = entries;
                self.due.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
                let e = self.due.pop().expect("occupied slot is non-empty");
                self.now = e.at;
                self.len -= 1;
                return Some(e);
            }
            // Cascade: advance the clock to the slot's base time (≤ every
            // deadline in the slot, ≥ the old clock by the slot-order
            // invariant) and re-insert. Entries now share this level's
            // slot field with the clock, so they land strictly lower.
            let width = SLOT_BITS * level as u32;
            let base =
                (self.now >> (width + SLOT_BITS) << (width + SLOT_BITS)) | ((slot as u64) << width);
            debug_assert!(base >= self.now);
            self.now = base;
            for e in entries {
                self.insert_wheel(e.at, e.seq, e.item);
            }
        }
    }

    /// Drops every entry for which `is_dead` returns true and returns
    /// how many were removed. Used by the executor to compact cancelled
    /// timers out of the calendar.
    pub fn compact(&mut self, mut is_dead: impl FnMut(&T) -> bool) -> usize {
        let before = self.len;
        for level in 0..LEVELS {
            let mut occ = self.occupied[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let v = &mut self.levels[level][slot];
                v.retain(|e| !is_dead(&e.item));
                if v.is_empty() {
                    self.occupied[level] &= !(1 << slot);
                }
            }
        }
        self.due.retain(|e| !is_dead(&e.item));
        self.overflow.retain(|_, item| !is_dead(item));
        self.len = self.overflow.len()
            + self.due.len()
            + self
                .levels
                .iter()
                .flat_map(|slots| slots.iter())
                .map(Vec::len)
                .sum::<usize>();
        before - self.len
    }
}

/// The pre-wheel calendar: a binary heap on `(at, seq)`. Kept as the
/// proptest oracle and bench baseline under `cfg(test)` or the
/// `heap-calendar` feature; the executor no longer uses it.
#[cfg(any(test, feature = "heap-calendar"))]
pub struct HeapCalendar<T> {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<HeapEntry<T>>>,
}

#[cfg(any(test, feature = "heap-calendar"))]
struct HeapEntry<T> {
    at: u64,
    seq: u64,
    item: T,
}

#[cfg(any(test, feature = "heap-calendar"))]
mod heap_impl {
    use super::{HeapCalendar, HeapEntry};
    use std::cmp::Reverse;

    impl<T> PartialEq for HeapEntry<T> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<T> Eq for HeapEntry<T> {}
    impl<T> PartialOrd for HeapEntry<T> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<T> Ord for HeapEntry<T> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.at, self.seq).cmp(&(other.at, other.seq))
        }
    }

    impl<T> Default for HeapCalendar<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> HeapCalendar<T> {
        pub fn new() -> Self {
            HeapCalendar {
                heap: std::collections::BinaryHeap::new(),
            }
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }

        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        pub fn push(&mut self, at: u64, seq: u64, item: T) {
            self.heap.push(Reverse(HeapEntry { at, seq, item }));
        }

        pub fn pop_next(&mut self) -> Option<(u64, u64, T)> {
            self.heap.pop().map(|Reverse(e)| (e.at, e.seq, e.item))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(30, 0, "c");
        w.push(10, 1, "a");
        w.push(10, 2, "b");
        w.push(20, 3, "m");
        assert_eq!(w.pop_next(), Some((10, 1, "a")));
        assert_eq!(w.pop_next(), Some((10, 2, "b")));
        assert_eq!(w.pop_next(), Some((20, 3, "m")));
        assert_eq!(w.pop_next(), Some((30, 0, "c")));
        assert_eq!(w.pop_next(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_deadlines_cross_levels_and_horizon() {
        let mut w = TimerWheel::new();
        // One deadline per level plus two beyond the horizon.
        let ats = [
            3u64,
            100,
            5_000,
            300_000,
            20_000_000,
            1 << 33,
            HORIZON + 7,
            HORIZON * 3,
        ];
        for (i, &at) in ats.iter().enumerate() {
            w.push(at, i as u64, at);
        }
        let mut got = Vec::new();
        while let Some((at, _, item)) = w.pop_next() {
            assert_eq!(at, item);
            got.push(at);
        }
        let mut want = ats.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn push_while_popping_at_same_instant_keeps_seq_order() {
        let mut w = TimerWheel::new();
        w.push(50, 0, 0u32);
        w.push(50, 1, 1);
        assert_eq!(w.pop_next(), Some((50, 0, 0)));
        // An action fired at t=50 schedules more work at t=50: higher seq,
        // must pop after the rest of the batch.
        w.push(50, 2, 2);
        assert_eq!(w.pop_next(), Some((50, 1, 1)));
        assert_eq!(w.pop_next(), Some((50, 2, 2)));
        assert_eq!(w.pop_next(), None);
    }

    #[test]
    fn interleaved_pushes_track_the_clock() {
        let mut w = TimerWheel::new();
        w.push(1_000, 0, 0u32);
        assert_eq!(w.pop_next(), Some((1_000, 0, 0)));
        // The clock is 1000 now; near and far pushes still order.
        w.push(1_001, 1, 1);
        w.push(1_000, 2, 2);
        w.push(70_000, 3, 3);
        assert_eq!(w.pop_next(), Some((1_000, 2, 2)));
        assert_eq!(w.pop_next(), Some((1_001, 1, 1)));
        assert_eq!(w.pop_next(), Some((70_000, 3, 3)));
    }

    #[test]
    fn compact_removes_dead_entries_everywhere() {
        let mut w = TimerWheel::new();
        for i in 0..100u64 {
            // Spread across levels and overflow; odd items are "dead".
            w.push(i * i * i * 17 + 1, i, i);
        }
        let removed = w.compact(|&i| i % 2 == 1);
        assert_eq!(removed, 50);
        assert_eq!(w.len(), 50);
        let mut prev = None;
        while let Some((at, _, i)) = w.pop_next() {
            assert_eq!(i % 2, 0);
            assert!(prev <= Some(at));
            prev = Some(at);
        }
    }

    /// Drives the wheel and the heap oracle with the same operation
    /// sequence and requires identical pop streams. Deadline deltas are
    /// biased across all wheel levels and past the overflow horizon;
    /// interleaved pops advance the clock mid-stream.
    fn equivalence_ops() -> impl Strategy<Value = Vec<(u64, bool)>> {
        let delta = prop_oneof![
            4 => 0u64..64,               // level 0 / same instant
            4 => 64u64..4096,            // level 1
            3 => 4096u64..262_144,       // level 2
            2 => 262_144u64..(1 << 24),  // levels 3-4
            2 => (1u64 << 24)..(1 << 36), // level 5
            1 => (1u64 << 36)..(1 << 40), // overflow
        ];
        proptest::collection::vec((delta, any::<bool>()), 1..200)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn wheel_matches_heap_oracle(ops in equivalence_ops(), ties in 0u64..8) {
            let mut wheel = TimerWheel::new();
            let mut heap = HeapCalendar::new();
            let mut clock = 0u64; // mirror of the executor's `now`
            let mut seq = 0u64;
            for (delta, pop) in ops {
                // Schedule relative to the popped clock, plus a burst of
                // ties at the same instant to exercise seq ordering.
                for _ in 0..=(seq % (ties + 1)) {
                    let at = clock + delta;
                    wheel.push(at, seq, seq);
                    heap.push(at, seq, seq);
                    seq += 1;
                }
                if pop {
                    let a = wheel.pop_next();
                    let b = heap.pop_next();
                    prop_assert_eq!(a, b);
                    if let Some((at, _, _)) = a {
                        clock = at;
                    }
                }
            }
            loop {
                let a = wheel.pop_next();
                let b = heap.pop_next();
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert!(wheel.is_empty());
        }
    }
}
