//! # daosim-kernel — deterministic discrete-event simulation kernel
//!
//! The substrate every performance model in this workspace runs on. It
//! provides:
//!
//! * [`SimTime`]/[`SimDuration`] — integer-nanosecond simulated time,
//! * [`Sim`] — an event calendar plus a single-threaded async executor, so
//!   modelled processes are written as plain `async fn`s,
//! * FIFO [`sync::Semaphore`], MPI-style [`sync::Barrier`], one-shot
//!   completions, channels, [`sync::join_all`], [`sync::race`] and
//!   [`sync::WaitGroup`],
//! * [`rng::stream_rng`] — per-component deterministic random streams.
//!
//! Determinism contract: given the same program and seed, a simulation
//! produces the same event sequence and final time on every run. Ties in
//! the calendar are broken by scheduling order and the executor never uses
//! more than one OS thread. Parallelism belongs *outside*: run many
//! independent `Sim` worlds on many threads (each `Sim` is `!Send` by
//! design).
//!
//! ```
//! use daosim_kernel::{Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let handle = sim.clone();
//! let end = sim.block_on(async move {
//!     handle.sleep(SimDuration::from_micros(3)).await;
//! });
//! assert_eq!(end.as_nanos(), 3_000);
//! ```

pub mod calendar;
pub mod executor;
pub mod obs;
pub mod rng;
pub mod sync;
pub mod time;

pub use executor::{RunOutcome, SchedPolicy, Sim, Sleep, TaskId, TimerHandle};
pub use obs::{
    Counter, CounterHandle, Histogram, HistogramHandle, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, Obs, SpanEvent, SpanGuard, SpanId,
};
pub use sync::{AdmissionClass, AdmissionPolicy};
pub use time::{SimDuration, SimTime};
