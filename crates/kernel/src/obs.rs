//! Deterministic sim-time observability: hierarchical spans and a
//! metrics registry.
//!
//! Everything here is keyed on **simulated** time — no wall clock is ever
//! read — so enabling tracing cannot perturb a run and two runs with the
//! same seed produce byte-identical event streams.
//!
//! ## Spans
//!
//! A span is a named interval `[start, end]` in sim time with an optional
//! parent. Parenting is automatic: the executor tells the tracer which
//! task is being polled, and each task carries a stack of open spans —
//! `span_begin` parents to the top of the current task's stack. Spans
//! whose end fires in a *different* context than their begin (e.g. a
//! network flow that completes inside a settle event) use
//! [`Obs::span_begin_leaf`]: the span still parents to the current stack
//! top but is not pushed, so it cannot accidentally adopt children that
//! outlive it.
//!
//! Tracing is **off by default**; when disabled every probe is a single
//! `Cell` read.
//!
//! ## Metrics
//!
//! [`MetricsRegistry`] holds named monotonic counters and fixed-bucket
//! histograms. Handles are cheap `Rc` clones so hot paths bump a `Cell`
//! instead of re-resolving names. Snapshots are sorted by name and thus
//! deterministic.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use crate::executor::TaskId;

/// Identifier of a span, unique within one [`Obs`]. Ids are handed out in
/// begin order, so they are deterministic.
pub type SpanId = u64;

/// One entry of the trace event stream, in emission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpanEvent {
    /// A span opened.
    Begin {
        id: SpanId,
        parent: Option<SpanId>,
        /// Executor task the span was opened under, if any.
        task: Option<u64>,
        t_ns: u64,
        category: &'static str,
        name: String,
        /// Leaf span: not on its context's stack, so it may overlap its
        /// siblings (exports render these as async events).
        detached: bool,
    },
    /// A span closed. Matches the `Begin` with the same `id`.
    End { id: SpanId, t_ns: u64 },
    /// A point event (no duration).
    Instant {
        t_ns: u64,
        task: Option<u64>,
        category: &'static str,
        name: String,
    },
}

/// Where an open span lives, so `span_end` can unwind the right stack.
struct OpenSlot {
    /// `Some(stack_key)` if the span was pushed on a task stack;
    /// `None` for leaf spans.
    stack: Option<Option<u64>>,
}

/// Shared observability state of one simulation world. Obtain it with
/// `Sim::obs()`; one instance lives for the lifetime of the `Sim`.
pub struct Obs {
    enabled: Cell<bool>,
    /// Mirror of the kernel clock, maintained by the executor. Span
    /// probes read this instead of borrowing the kernel, so span guards
    /// are safe to drop even while the kernel itself is being torn down.
    now_ns: Cell<u64>,
    current_task: Cell<Option<TaskId>>,
    next_span: Cell<SpanId>,
    events: RefCell<Vec<SpanEvent>>,
    /// Per-context stacks of open (stacked) spans; key is the task id, or
    /// `None` for event-handler / setup context.
    stacks: RefCell<HashMap<Option<u64>, Vec<SpanId>>>,
    open: RefCell<HashMap<SpanId, OpenSlot>>,
    metrics: MetricsRegistry,
}

impl Default for Obs {
    fn default() -> Self {
        Obs {
            enabled: Cell::new(false),
            now_ns: Cell::new(0),
            current_task: Cell::new(None),
            next_span: Cell::new(0),
            events: RefCell::new(Vec::new()),
            stacks: RefCell::new(HashMap::new()),
            open: RefCell::new(HashMap::new()),
            metrics: MetricsRegistry::default(),
        }
    }
}

impl Obs {
    /// Turns span recording on or off. Metrics are always on.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.set(on);
    }

    /// Whether span recording is on. Call sites that build dynamic span
    /// names should gate the formatting on this.
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// The metrics registry of this world.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    pub(crate) fn set_now(&self, t_ns: u64) {
        self.now_ns.set(t_ns);
    }

    /// Sim time as the tracer sees it (mirrors the kernel clock).
    pub fn now_ns(&self) -> u64 {
        self.now_ns.get()
    }

    pub(crate) fn set_current_task(&self, id: Option<TaskId>) {
        self.current_task.set(id);
    }

    fn context_key(&self) -> Option<u64> {
        self.current_task.get().map(|t| t.as_u64())
    }

    fn alloc_id(&self) -> SpanId {
        let id = self.next_span.get() + 1;
        self.next_span.set(id);
        id
    }

    fn begin_common(&self, category: &'static str, name: &str, stacked: bool) -> Option<SpanId> {
        if !self.enabled.get() {
            return None;
        }
        let key = self.context_key();
        let id = self.alloc_id();
        let parent = {
            let stacks = self.stacks.borrow();
            stacks.get(&key).and_then(|s| s.last().copied())
        };
        self.events.borrow_mut().push(SpanEvent::Begin {
            id,
            parent,
            task: key,
            t_ns: self.now_ns.get(),
            category,
            name: name.to_string(),
            detached: !stacked,
        });
        let stack = if stacked {
            self.stacks.borrow_mut().entry(key).or_default().push(id);
            Some(key)
        } else {
            None
        };
        self.open.borrow_mut().insert(id, OpenSlot { stack });
        Some(id)
    }

    /// Opens a span parented to — and pushed onto — the current context's
    /// stack. Use for spans that begin and end in the same async scope
    /// (prefer the `Sim::span` guard).
    pub fn span_begin(&self, category: &'static str, name: &str) -> Option<SpanId> {
        self.begin_common(category, name, true)
    }

    /// Opens a parentless leaf span. The executor uses this for poll
    /// spans: a poll brackets arbitrary stack mutations (stacked spans
    /// open and close *inside* it), so claiming the stack top as parent
    /// would let the poll span outlive its parent.
    pub(crate) fn span_begin_orphan(&self, category: &'static str, name: &str) -> Option<SpanId> {
        if !self.enabled.get() {
            return None;
        }
        let id = self.alloc_id();
        self.events.borrow_mut().push(SpanEvent::Begin {
            id,
            parent: None,
            task: self.context_key(),
            t_ns: self.now_ns.get(),
            category,
            name: name.to_string(),
            detached: true,
        });
        self.open.borrow_mut().insert(id, OpenSlot { stack: None });
        Some(id)
    }

    /// Opens a span parented to the current stack top but *not* pushed:
    /// later spans in this context become its siblings, not children. Use
    /// for spans whose end fires in another context (e.g. a flow that
    /// completes inside a calendar event).
    pub fn span_begin_leaf(&self, category: &'static str, name: &str) -> Option<SpanId> {
        self.begin_common(category, name, false)
    }

    /// Closes a span at the current sim time. Unknown or already-closed
    /// ids are ignored (spans opened while tracing was off).
    pub fn span_end(&self, id: SpanId) {
        let Some(slot) = self.open.borrow_mut().remove(&id) else {
            return;
        };
        if let Some(key) = slot.stack {
            let mut stacks = self.stacks.borrow_mut();
            if let Some(stack) = stacks.get_mut(&key) {
                // Almost always the top; out-of-order ends (dropped
                // guards) search downwards.
                if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                    stack.remove(pos);
                }
            }
        }
        self.events.borrow_mut().push(SpanEvent::End {
            id,
            t_ns: self.now_ns.get(),
        });
    }

    /// Records a point event in the current context.
    pub fn instant(&self, category: &'static str, name: &str) {
        if !self.enabled.get() {
            return;
        }
        self.events.borrow_mut().push(SpanEvent::Instant {
            t_ns: self.now_ns.get(),
            task: self.context_key(),
            category,
            name: name.to_string(),
        });
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.events.borrow().len()
    }

    /// Drains and returns the recorded event stream.
    pub fn take_events(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.events.borrow_mut())
    }
}

/// Guard returned by `Sim::span`; closes the span when dropped. Holding
/// it across `.await`s is the intended use: the span then covers the
/// whole async scope in sim time.
pub struct SpanGuard {
    obs: Rc<Obs>,
    id: Option<SpanId>,
}

impl SpanGuard {
    pub(crate) fn new(obs: Rc<Obs>, id: Option<SpanId>) -> Self {
        SpanGuard { obs, id }
    }

    /// Closes the span now, before the guard would be dropped.
    pub fn end(mut self) {
        if let Some(id) = self.id.take() {
            self.obs.span_end(id);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id.take() {
            self.obs.span_end(id);
        }
    }
}

/// Handle to a named monotonic counter. Cloning shares the cell.
#[derive(Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

/// A pre-resolved counter handle. Resolving a name through
/// [`MetricsRegistry::counter`] walks a string-keyed map; hot paths
/// resolve once at setup, hold the handle, and bump a `Cell` per event.
/// The alias marks struct fields that exist for exactly that purpose.
pub type CounterHandle = Counter;

/// A pre-resolved histogram handle; see [`CounterHandle`].
pub type HistogramHandle = Histogram;

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.0.set(self.0.get() + delta);
    }

    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

struct HistInner {
    /// Upper bounds of the buckets, strictly increasing. An implicit
    /// overflow bucket catches values above the last bound.
    bounds: Vec<u64>,
    buckets: RefCell<Vec<u64>>,
    sum: Cell<u64>,
    count: Cell<u64>,
}

/// Handle to a fixed-bucket histogram. Cloning shares the storage.
#[derive(Clone)]
pub struct Histogram(Rc<HistInner>);

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram(Rc::new(HistInner {
            bounds: bounds.to_vec(),
            buckets: RefCell::new(vec![0; bounds.len() + 1]),
            sum: Cell::new(0),
            count: Cell::new(0),
        }))
    }

    pub fn observe(&self, value: u64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.buckets.borrow_mut()[idx] += 1;
        self.0.sum.set(self.0.sum.get() + value);
        self.0.count.set(self.0.count.get() + 1);
    }

    pub fn count(&self) -> u64 {
        self.0.count.get()
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    pub buckets: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile estimate from the bucketed counts: the upper
    /// bound of the bucket holding the rank-`⌈q·count⌉` observation
    /// (an upper bound on the true quantile, resolution-limited by the
    /// bucket layout). Observations in the overflow bucket report
    /// `u64::MAX`. Returns `None` for an empty histogram, so degenerate
    /// inputs can never produce a fabricated percentile.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        debug_assert!((0.0..=1.0).contains(&q));
        // Nearest-rank with the same clamp discipline as
        // `latency_stats`: rank 0 (q == 0.0) still selects the first
        // observation instead of underflowing.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        // Unreachable when buckets sum to count; be safe, not sorry.
        Some(u64::MAX)
    }
}

/// Point-in-time copy of a whole registry, sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Flat CSV rendering: `metric,value` rows; histogram buckets appear
    /// as `<name>.le_<bound>` plus `<name>.sum` / `<name>.count`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("{name},{v}\n"));
        }
        for h in &self.histograms {
            for (i, b) in h.bounds.iter().enumerate() {
                out.push_str(&format!("{}.le_{},{}\n", h.name, b, h.buckets[i]));
            }
            out.push_str(&format!(
                "{}.le_inf,{}\n",
                h.name,
                h.buckets[h.bounds.len()]
            ));
            out.push_str(&format!("{}.sum,{}\n", h.name, h.sum));
            out.push_str(&format!("{}.count,{}\n", h.name, h.count));
        }
        out
    }
}

/// Named counters and histograms for one simulation world. Metrics are
/// always on (the cost is a `Cell` bump); names are resolved once and the
/// returned handles cached by callers.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RefCell<BTreeMap<String, Counter>>,
    histograms: RefCell<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// Returns the counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, creating it with `bounds` on
    /// first use. Later calls ignore `bounds` and share the original.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.histograms
            .borrow_mut()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Deterministic (name-sorted) copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .borrow()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let histograms = self
            .histograms
            .borrow()
            .iter()
            .map(|(n, h)| HistogramSnapshot {
                name: n.clone(),
                bounds: h.0.bounds.clone(),
                buckets: h.0.buckets.borrow().clone(),
                sum: h.0.sum.get(),
                count: h.0.count.get(),
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantile_boundaries() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("q", &[10, 100, 1000]);
        // 0 samples: no quantile at all, never a fabricated value.
        let empty = reg.snapshot();
        let hs = empty.histogram("q").unwrap();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(hs.quantile(q), None);
        }
        // 1 sample: every quantile (including q=0) is that sample's
        // bucket bound — rank clamping must not underflow.
        h.observe(7);
        let one = reg.snapshot();
        let hs = one.histogram("q").unwrap();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(hs.quantile(q), Some(10));
        }
        // Spread samples: p50 and p99 land in different buckets, and an
        // overflow observation reports the sentinel.
        for v in [5, 50, 500, 5000] {
            h.observe(v);
        }
        let many = reg.snapshot();
        let hs = many.histogram("q").unwrap();
        assert_eq!(hs.quantile(0.5), Some(100));
        assert_eq!(hs.quantile(0.99), Some(u64::MAX));
        assert_eq!(hs.quantile(0.75), Some(1000));
    }

    #[test]
    fn snapshot_histogram_lookup() {
        let reg = MetricsRegistry::default();
        reg.histogram("a", &[1]);
        let snap = reg.snapshot();
        assert!(snap.histogram("a").is_some());
        assert!(snap.histogram("b").is_none());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let obs = Obs::default();
        assert_eq!(obs.span_begin("t", "a"), None);
        obs.instant("t", "b");
        assert_eq!(obs.event_count(), 0);
    }

    #[test]
    fn spans_nest_by_stack() {
        let obs = Obs::default();
        obs.set_enabled(true);
        let a = obs.span_begin("t", "outer").unwrap();
        obs.set_now(10);
        let b = obs.span_begin("t", "inner").unwrap();
        obs.set_now(20);
        obs.span_end(b);
        obs.set_now(30);
        obs.span_end(a);
        let ev = obs.take_events();
        assert_eq!(ev.len(), 4);
        match &ev[1] {
            SpanEvent::Begin { parent, .. } => assert_eq!(*parent, Some(a)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn leaf_spans_do_not_adopt_children() {
        let obs = Obs::default();
        obs.set_enabled(true);
        let outer = obs.span_begin("t", "outer").unwrap();
        let leaf = obs.span_begin_leaf("t", "leaf").unwrap();
        let next = obs.span_begin("t", "next").unwrap();
        let parent_of_next = match obs.take_events().last().unwrap() {
            SpanEvent::Begin { parent, .. } => *parent,
            other => panic!("unexpected {other:?}"),
        };
        // `next` is a sibling of the leaf, under `outer`.
        assert_eq!(parent_of_next, Some(outer));
        assert_ne!(parent_of_next, Some(leaf));
        obs.span_end(next);
        obs.span_end(leaf);
        obs.span_end(outer);
    }

    #[test]
    fn out_of_order_end_unwinds_correctly() {
        let obs = Obs::default();
        obs.set_enabled(true);
        let a = obs.span_begin("t", "a").unwrap();
        let b = obs.span_begin("t", "b").unwrap();
        // A dropped guard may end `a` before `b` (future teardown).
        obs.span_end(a);
        let c = obs.span_begin("t", "c").unwrap();
        // `c` parents to `b`, the remaining stack top.
        let ev = obs.take_events();
        let parent_of_c = ev
            .iter()
            .find_map(|e| match e {
                SpanEvent::Begin { id, parent, .. } if *id == c => Some(*parent),
                _ => None,
            })
            .unwrap();
        assert_eq!(parent_of_c, Some(b));
        obs.span_end(c);
        obs.span_end(b);
    }

    #[test]
    fn span_end_is_idempotent() {
        let obs = Obs::default();
        obs.set_enabled(true);
        let a = obs.span_begin("t", "a").unwrap();
        obs.span_end(a);
        obs.span_end(a);
        assert_eq!(obs.take_events().len(), 2);
    }

    #[test]
    fn counters_share_storage_by_name() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("x").get(), 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), Some(4));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("lat", &[10, 100]);
        for v in [5, 10, 50, 1000] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.buckets, vec![2, 1, 1]);
        assert_eq!(hs.sum, 1065);
        assert_eq!(hs.count, 4);
    }

    #[test]
    fn histogram_values_exactly_on_bounds_stay_in_range() {
        // Boundary audit: a value equal to a bound belongs to that
        // bound's bucket (le semantics); a value one past the last bound
        // must land in the overflow bucket, never out of range.
        let reg = MetricsRegistry::default();
        let h = reg.histogram("edge", &[10, 100]);
        for v in [10, 100, 101] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].buckets, vec![1, 1, 1]);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let reg = MetricsRegistry::default();
        reg.counter("zed").inc();
        reg.counter("abc").inc();
        let names: Vec<_> = reg
            .snapshot()
            .counters
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(names, vec!["abc", "zed"]);
    }

    #[test]
    fn metrics_csv_is_deterministic() {
        let reg = MetricsRegistry::default();
        reg.counter("ops").add(7);
        reg.histogram("lat", &[10]).observe(3);
        let csv = reg.snapshot().to_csv();
        assert_eq!(
            csv,
            "metric,value\nops,7\nlat.le_10,1\nlat.le_inf,0\nlat.sum,3\nlat.count,1\n"
        );
    }
}
