//! Deterministic random-number streams.
//!
//! Every stochastic component of a simulation draws from its own stream,
//! derived from `(master seed, stream id)` with a SplitMix64 scrambler.
//! Components therefore stay statistically independent and a run is fully
//! reproducible regardless of task interleaving.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Scrambles a 64-bit value (SplitMix64 finalizer). Good avalanche, cheap.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives an independent RNG for `(seed, stream)`.
pub fn stream_rng(seed: u64, stream: u64) -> SmallRng {
    let s = splitmix64(seed ^ splitmix64(stream));
    SmallRng::seed_from_u64(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = stream_rng(7, 3);
        let mut b = stream_rng(7, 3);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = stream_rng(7, 3);
        let mut b = stream_rng(7, 4);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value for SplitMix64 with seed state 0 (first output).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}
