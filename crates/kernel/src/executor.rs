//! The event-driven executor.
//!
//! A [`Sim`] owns an event calendar (a binary heap keyed on
//! `(time, sequence)`) and a set of cooperative async tasks. Tasks advance
//! only when an event they are waiting on fires, so simulated time moves in
//! discrete jumps and the whole run is deterministic: ties are broken by
//! insertion sequence and the executor is single-threaded.
//!
//! `Sim` is a cheap `Rc` handle; clone it freely into spawned tasks.
//!
//! The order in which *ready* tasks are polled within one instant is a
//! [`SchedPolicy`]. The default ([`SchedPolicy::Fifo`]) preserves the
//! historical wake order bit-for-bit; the other policies perturb it
//! deterministically from a seed so schedule-invariance can be fuzzed
//! (see DESIGN.md §7).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::obs::{Obs, SpanGuard};
use crate::rng::splitmix64;
use crate::time::{SimDuration, SimTime};

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskId(u64);

impl TaskId {
    /// The task's ordinal (spawn order). Stable for the lifetime of the
    /// sim; used as the lane id in trace exports.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

type TaskFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;
type EventAction = Box<dyn FnOnce() + 'static>;

/// What a calendar entry runs when it fires. Cancellable entries share
/// their action cell with a [`TimerHandle`]; an emptied cell means the
/// event was cancelled and the entry is discarded *without* advancing
/// simulated time (a cancelled deadline leaves no trace on the clock).
enum CalendarAction {
    Fixed(EventAction),
    Cancellable(Rc<RefCell<Option<EventAction>>>),
}

/// An entry in the event calendar. Ordered by `(at, seq)` so simultaneous
/// events fire in the order they were scheduled.
struct Scheduled {
    at: SimTime,
    seq: u64,
    action: CalendarAction,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// How the executor picks the next task from the ready set. Every policy
/// is deterministic: given the same seed and the same program, the same
/// schedule replays bit-for-bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Poll ready tasks in wake order. The default, and the contract for
    /// every checked-in artifact: byte-identical to historical runs.
    #[default]
    Fifo,
    /// Poll the most recently woken ready task first.
    Lifo,
    /// Poll a seeded-random member of the ready set.
    Random {
        /// Seed for the pick sequence (`splitmix64` stream).
        seed: u64,
    },
    /// FIFO order, but each wake may be deferred by a calendar entry up
    /// to `max_delay_ns` of virtual time (drawn per wake from `seed`).
    /// A deferred wake is deferred at most once, so progress is bounded.
    WakeDelay {
        /// Seed for the delay draws (`splitmix64` stream).
        seed: u64,
        /// Upper bound (inclusive) on one deferral, in simulated ns.
        max_delay_ns: u64,
    },
}

/// The deduplicated ready set: wake order in `queue`, membership in
/// `queued`. A task is enqueued at most once between polls — a wake
/// storm (N wakes with no intervening poll) costs one slot, not N.
#[derive(Default)]
struct ReadyState {
    queue: VecDeque<TaskId>,
    queued: HashSet<TaskId>,
}

impl ReadyState {
    fn push(&mut self, id: TaskId) {
        if self.queued.insert(id) {
            self.queue.push_back(id);
        }
    }
}

/// Queue of tasks whose wakers fired. A `Waker` must be `Send + Sync`, so
/// this small piece of shared state uses a real mutex even though the
/// executor itself is single-threaded.
#[derive(Default)]
struct WakeQueue {
    ready: Mutex<ReadyState>,
}

struct TaskWaker {
    id: TaskId,
    queue: Arc<WakeQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.queue.ready.lock().unwrap().push(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.ready.lock().unwrap().push(self.id);
    }
}

struct Kernel {
    now: SimTime,
    seq: u64,
    next_task: u64,
    events: BinaryHeap<Reverse<Scheduled>>,
    tasks: HashMap<TaskId, TaskFuture>,
    /// Tasks spawned while the executor is mid-step; folded in before the
    /// next poll round so `spawn` is safe from inside tasks and events.
    incoming: Vec<(TaskId, TaskFuture)>,
    /// Ready-set discipline; `SchedPolicy::Fifo` unless perturbed.
    policy: SchedPolicy,
    /// `splitmix64` counter state behind the policy's random draws.
    sched_rng: u64,
    /// Tasks whose current wake was already deferred once by
    /// `SchedPolicy::WakeDelay` (deferral is never compounded).
    deferred: HashSet<TaskId>,
}

impl Kernel {
    fn next_sched_rand(&mut self) -> u64 {
        self.sched_rng = self.sched_rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.sched_rng)
    }
}

/// Result of driving a simulation to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Simulated time when the run stopped.
    pub end_time: SimTime,
    /// Tasks still pending when the event calendar drained. Non-zero means
    /// a deadlock in the modelled system (e.g. a barrier nobody reaches).
    pub stranded_tasks: usize,
}

impl RunOutcome {
    /// Panics if any task was left stranded — the normal assertion after a
    /// complete benchmark run.
    pub fn expect_quiescent(self) -> SimTime {
        assert_eq!(
            self.stranded_tasks, 0,
            "simulation deadlocked with {} stranded task(s) at {}",
            self.stranded_tasks, self.end_time
        );
        self.end_time
    }
}

/// Handle to a simulation world. Cloning is cheap and all clones refer to
/// the same world.
#[derive(Clone)]
pub struct Sim {
    kernel: Rc<RefCell<Kernel>>,
    wakes: Arc<WakeQueue>,
    obs: Rc<Obs>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    pub fn new() -> Self {
        Self::with_policy(SchedPolicy::Fifo)
    }

    /// A world whose ready-set order follows `policy`. `Sim::new()` is
    /// `with_policy(SchedPolicy::Fifo)`.
    pub fn with_policy(policy: SchedPolicy) -> Self {
        let sched_rng = match policy {
            SchedPolicy::Random { seed } | SchedPolicy::WakeDelay { seed, .. } => seed,
            SchedPolicy::Fifo | SchedPolicy::Lifo => 0,
        };
        Sim {
            kernel: Rc::new(RefCell::new(Kernel {
                now: SimTime::ZERO,
                seq: 0,
                next_task: 0,
                events: BinaryHeap::new(),
                tasks: HashMap::new(),
                incoming: Vec::new(),
                policy,
                sched_rng,
                deferred: HashSet::new(),
            })),
            wakes: Arc::new(WakeQueue::default()),
            obs: Rc::new(Obs::default()),
        }
    }

    /// The ready-set discipline this world runs under.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.kernel.borrow().policy
    }

    /// The observability layer (span tracer + metrics registry) of this
    /// world. See [`crate::obs`].
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Whether span recording is on; gate dynamic span-name formatting on
    /// this at hot call sites.
    pub fn trace_enabled(&self) -> bool {
        self.obs.is_enabled()
    }

    /// Opens a stacked span and returns a guard that closes it on drop.
    /// When tracing is disabled this is a single flag check.
    pub fn span(&self, category: &'static str, name: &str) -> SpanGuard {
        let id = self.obs.span_begin(category, name);
        SpanGuard::new(Rc::clone(&self.obs), id)
    }

    /// Leaf-span variant of [`Sim::span`]: parented to the current stack
    /// top but not pushed, so concurrent branches of one task (e.g.
    /// `join_all` arms) can hold overlapping spans without adopting each
    /// other as children.
    pub fn span_leaf(&self, category: &'static str, name: &str) -> SpanGuard {
        let id = self.obs.span_begin_leaf(category, name);
        SpanGuard::new(Rc::clone(&self.obs), id)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.borrow().now
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        let k = self.kernel.borrow();
        k.tasks.len() + k.incoming.len()
    }

    /// Spawns a task onto the simulation. The task starts running at the
    /// current simulated time, when the executor next polls.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let mut k = self.kernel.borrow_mut();
        let id = TaskId(k.next_task);
        k.next_task += 1;
        k.incoming.push((id, Box::pin(fut)));
        drop(k);
        if self.obs.is_enabled() {
            self.obs
                .instant("executor", &format!("spawn t{}", id.as_u64()));
        }
        // Make sure the new task gets a first poll.
        self.wakes.ready.lock().unwrap().push(id);
        id
    }

    /// Schedules `action` to run at absolute time `at`. Actions scheduled
    /// for the same instant run in scheduling order.
    pub fn schedule_at(&self, at: SimTime, action: impl FnOnce() + 'static) {
        let mut k = self.kernel.borrow_mut();
        assert!(
            at >= k.now,
            "cannot schedule into the past: {at} < {}",
            k.now
        );
        let seq = k.seq;
        k.seq += 1;
        k.events.push(Reverse(Scheduled {
            at,
            seq,
            action: CalendarAction::Fixed(Box::new(action)),
        }));
    }

    /// Schedules `action` to run after `delay`.
    pub fn schedule_after(&self, delay: SimDuration, action: impl FnOnce() + 'static) {
        let at = self.now() + delay;
        self.schedule_at(at, action);
    }

    /// Schedules `action` at `at` and returns a handle that can cancel it.
    ///
    /// Cancellation drops the action immediately (so captured state is
    /// released right away, rather than living in the calendar until the
    /// deadline), and the run loop discards the dead calendar entry
    /// without advancing the clock — a cancelled deadline neither runs
    /// nor stretches the simulation's end time. This is the primitive
    /// components with *moving deadlines* (e.g. the flow network's
    /// next-completion event, client RPC timeouts) should use instead of
    /// the schedule-and-check-epoch pattern, which leaks one stale
    /// closure into the heap per reschedule.
    pub fn schedule_cancellable_at(
        &self,
        at: SimTime,
        action: impl FnOnce() + 'static,
    ) -> TimerHandle {
        let shared: Rc<RefCell<Option<EventAction>>> =
            Rc::new(RefCell::new(Some(Box::new(action))));
        let mut k = self.kernel.borrow_mut();
        assert!(
            at >= k.now,
            "cannot schedule into the past: {at} < {}",
            k.now
        );
        let seq = k.seq;
        k.seq += 1;
        k.events.push(Reverse(Scheduled {
            at,
            seq,
            action: CalendarAction::Cancellable(Rc::clone(&shared)),
        }));
        TimerHandle { at, shared }
    }

    /// Cancellable variant of [`Sim::schedule_after`].
    pub fn schedule_cancellable_after(
        &self,
        delay: SimDuration,
        action: impl FnOnce() + 'static,
    ) -> TimerHandle {
        self.schedule_cancellable_at(self.now() + delay, action)
    }

    /// Suspends the calling task for `delay` of simulated time. The
    /// wakeup is a cancellable calendar entry: dropping the `Sleep`
    /// (e.g. when a `timeout` or `race` abandons it) disarms the entry,
    /// so abandoned sleeps leave no trace on the simulation clock.
    pub fn sleep(&self, delay: SimDuration) -> Sleep {
        let shared = Rc::new(SleepShared {
            fired: std::cell::Cell::new(false),
            waker: RefCell::new(None),
        });
        let s2 = Rc::clone(&shared);
        let timer = self.schedule_cancellable_after(delay, move || {
            s2.fired.set(true);
            if let Some(w) = s2.waker.borrow_mut().take() {
                w.wake();
            }
        });
        Sleep {
            shared,
            timer: Some(timer),
        }
    }

    /// Runs the simulation until both the event calendar and the ready
    /// queue are empty.
    pub fn run(&self) -> RunOutcome {
        loop {
            // Drain all tasks runnable at the current instant first; only
            // when nothing is ready does time advance.
            self.poll_ready();
            let next = {
                let mut k = self.kernel.borrow_mut();
                loop {
                    match k.events.pop() {
                        Some(Reverse(ev)) => {
                            debug_assert!(ev.at >= k.now);
                            let action = match ev.action {
                                CalendarAction::Fixed(a) => a,
                                // Take before calling: the action must
                                // not observe the cell as borrowed (it
                                // may inspect or re-arm its timer).
                                CalendarAction::Cancellable(cell) => {
                                    match cell.borrow_mut().take() {
                                        Some(a) => a,
                                        // Cancelled: discard without
                                        // advancing the clock.
                                        None => continue,
                                    }
                                }
                            };
                            k.now = ev.at;
                            break Some((ev.at, action));
                        }
                        None => break None,
                    }
                }
            };
            match next {
                Some((at, action)) => {
                    // Keep the tracer's clock mirror in step so span
                    // probes never need to borrow the kernel.
                    self.obs.set_now(at.as_nanos());
                    action()
                }
                None => break,
            }
        }
        let k = self.kernel.borrow();
        RunOutcome {
            end_time: k.now,
            stranded_tasks: k.tasks.len() + k.incoming.len(),
        }
    }

    /// Picks and removes the next ready task per the scheduling policy.
    /// `WakeDelay` picks FIFO here; its perturbation happens in
    /// [`Sim::poll_ready`], where a pick can be re-queued as a calendar
    /// entry instead of being polled.
    fn next_ready(&self) -> Option<TaskId> {
        let mut st = self.wakes.ready.lock().unwrap();
        let len = st.queue.len();
        if len == 0 {
            return None;
        }
        let policy = self.kernel.borrow().policy;
        let idx = match policy {
            SchedPolicy::Fifo | SchedPolicy::WakeDelay { .. } => 0,
            SchedPolicy::Lifo => len - 1,
            SchedPolicy::Random { .. } => {
                (self.kernel.borrow_mut().next_sched_rand() % len as u64) as usize
            }
        };
        let id = st.queue.remove(idx).expect("index within ready queue");
        st.queued.remove(&id);
        Some(id)
    }

    /// Under `WakeDelay`, decides whether this pick is deferred: draws a
    /// delay in `[0, max_delay_ns]` and, if non-zero, re-queues the task
    /// via a calendar entry that many virtual ns from now. Each wake is
    /// deferred at most once (the `deferred` mark is consumed on the next
    /// pick), so a task is never pushed back indefinitely.
    fn maybe_defer(&self, id: TaskId) -> bool {
        let delay = {
            let mut k = self.kernel.borrow_mut();
            let SchedPolicy::WakeDelay { max_delay_ns, .. } = k.policy else {
                return false;
            };
            if k.deferred.remove(&id) {
                return false;
            }
            let d = k.next_sched_rand() % (max_delay_ns + 1);
            if d == 0 {
                return false;
            }
            k.deferred.insert(id);
            SimDuration::from_nanos(d)
        };
        let wakes = Arc::clone(&self.wakes);
        self.schedule_after(delay, move || {
            wakes.ready.lock().unwrap().push(id);
        });
        true
    }

    /// Polls every task currently in the ready queue (and any tasks they
    /// spawn) until the queue drains at this instant.
    fn poll_ready(&self) {
        loop {
            // Fold in freshly spawned tasks.
            {
                let mut k = self.kernel.borrow_mut();
                let incoming = std::mem::take(&mut k.incoming);
                for (id, fut) in incoming {
                    k.tasks.insert(id, fut);
                }
            }
            let Some(id) = self.next_ready() else { break };
            if self.maybe_defer(id) {
                continue;
            }
            let fut = self.kernel.borrow_mut().tasks.remove(&id);
            let Some(mut fut) = fut else {
                continue; // already completed; spurious wake
            };
            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                queue: Arc::clone(&self.wakes),
            }));
            let mut cx = Context::from_waker(&waker);
            // Attribute spans opened during the poll to this task, and
            // record the poll itself as a parentless leaf span (zero sim
            // duration — polls never advance the clock; parentless
            // because stacked spans open and close inside polls).
            self.obs.set_current_task(Some(id));
            let poll_span = self.obs.span_begin_orphan("executor", "poll");
            let polled = fut.as_mut().poll(&mut cx);
            if let Some(s) = poll_span {
                self.obs.span_end(s);
            }
            self.obs.set_current_task(None);
            match polled {
                Poll::Ready(()) => {
                    if self.obs.is_enabled() {
                        self.obs
                            .instant("executor", &format!("done t{}", id.as_u64()));
                    }
                }
                Poll::Pending => {
                    self.kernel.borrow_mut().tasks.insert(id, fut);
                }
            }
        }
    }

    /// Convenience: spawn a root task, run to quiescence, and assert no
    /// task was stranded. Returns the final simulated time.
    pub fn block_on(&self, fut: impl Future<Output = ()> + 'static) -> SimTime {
        self.spawn(fut);
        self.run().expect_quiescent()
    }
}

/// Handle to a pending event scheduled with
/// [`Sim::schedule_cancellable_at`]. Dropping the handle does *not*
/// cancel the event (fire-and-forget remains possible); call
/// [`TimerHandle::cancel`].
pub struct TimerHandle {
    at: SimTime,
    shared: Rc<RefCell<Option<EventAction>>>,
}

impl TimerHandle {
    /// The instant the event is scheduled for.
    pub fn deadline(&self) -> SimTime {
        self.at
    }

    /// True while the action has neither fired nor been cancelled.
    pub fn is_armed(&self) -> bool {
        self.shared.borrow().is_some()
    }

    /// Cancels the event, dropping its action immediately. Idempotent;
    /// returns whether the action was still pending.
    pub fn cancel(&self) -> bool {
        self.shared.borrow_mut().take().is_some()
    }
}

struct SleepShared {
    fired: std::cell::Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

/// Future returned by [`Sim::sleep`]. Dropping it before the deadline
/// cancels the underlying calendar entry.
pub struct Sleep {
    shared: Rc<SleepShared>,
    timer: Option<TimerHandle>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.shared.fired.get() {
            self.timer = None;
            Poll::Ready(())
        } else {
            *self.shared.waker.borrow_mut() = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(t) = self.timer.take() {
            t.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &t in &[30u64, 10, 20] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move || log.borrow_mut().push(t));
        }
        let out = sim.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(out.end_time, SimTime::from_nanos(30));
        assert_eq!(out.stranded_tasks, 0);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for i in 0..10u32 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(5), move || log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sleep_advances_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let end = sim.block_on(async move {
            assert_eq!(s.now(), SimTime::ZERO);
            s.sleep(SimDuration::from_micros(5)).await;
            assert_eq!(s.now().as_nanos(), 5_000);
            s.sleep(SimDuration::from_micros(7)).await;
            assert_eq!(s.now().as_nanos(), 12_000);
        });
        assert_eq!(end.as_nanos(), 12_000);
    }

    #[test]
    fn spawned_tasks_interleave_deterministically() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::default();
        for i in 0..3u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for step in 0..3u64 {
                    s.sleep(SimDuration::from_nanos(10 + i as u64)).await;
                    log.borrow_mut().push((i, s.now().as_nanos()));
                    let _ = step;
                }
            });
        }
        sim.run().expect_quiescent();
        let got = log.borrow().clone();
        // Task 0 ticks at 10,20,30; task 1 at 11,22,33; task 2 at 12,24,36.
        assert_eq!(
            got,
            vec![
                (0, 10),
                (1, 11),
                (2, 12),
                (0, 20),
                (1, 22),
                (2, 24),
                (0, 30),
                (1, 33),
                (2, 36)
            ]
        );
    }

    #[test]
    fn stranded_task_detected() {
        let sim = Sim::new();
        sim.spawn(async {
            // A future that never resolves: poll once, then pend forever.
            std::future::pending::<()>().await;
        });
        let out = sim.run();
        assert_eq!(out.stranded_tasks, 1);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn expect_quiescent_panics_on_strand() {
        let sim = Sim::new();
        sim.spawn(async {
            std::future::pending::<()>().await;
        });
        sim.run().expect_quiescent();
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn schedule_into_past_panics() {
        let sim = Sim::new();
        sim.schedule_at(SimTime::from_nanos(10), || {});
        let s = sim.clone();
        sim.schedule_at(SimTime::from_nanos(20), move || {
            s.schedule_at(SimTime::from_nanos(15), || {});
        });
        sim.run();
    }

    #[test]
    fn zero_length_sleep_still_yields() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let (l1, l2) = (Rc::clone(&log), Rc::clone(&log));
        let s1 = sim.clone();
        sim.spawn(async move {
            l1.borrow_mut().push("a-before");
            s1.sleep(SimDuration::ZERO).await;
            l1.borrow_mut().push("a-after");
        });
        sim.spawn(async move {
            l2.borrow_mut().push("b");
        });
        sim.run().expect_quiescent();
        assert_eq!(*log.borrow(), vec!["a-before", "b", "a-after"]);
    }

    #[test]
    fn cancelled_timer_neither_fires_nor_advances_the_clock() {
        let sim = Sim::new();
        let fired: Rc<std::cell::Cell<bool>> = Rc::default();
        let f = Rc::clone(&fired);
        let h = sim.schedule_cancellable_at(SimTime::from_nanos(1_000), move || f.set(true));
        sim.schedule_at(SimTime::from_nanos(10), || {});
        assert!(h.is_armed());
        assert!(h.cancel());
        assert!(!h.is_armed());
        assert!(!h.cancel(), "cancel is idempotent");
        let out = sim.run();
        assert!(!fired.get());
        // The dead entry at t=1000 must not stretch the run.
        assert_eq!(out.end_time, SimTime::from_nanos(10));
    }

    #[test]
    fn fired_timer_disarms_its_handle() {
        let sim = Sim::new();
        let fired: Rc<std::cell::Cell<bool>> = Rc::default();
        let f = Rc::clone(&fired);
        let h = sim.schedule_cancellable_at(SimTime::from_nanos(5), move || f.set(true));
        let out = sim.run();
        assert!(fired.get());
        assert!(!h.is_armed());
        assert_eq!(out.end_time, SimTime::from_nanos(5));
    }

    /// A future that pends until `done` is set, recording every poll and
    /// parking its waker where the test can reach it.
    struct CountedPend {
        polls: Rc<std::cell::Cell<u32>>,
        done: Rc<std::cell::Cell<bool>>,
        waker_out: Rc<RefCell<Option<Waker>>>,
    }

    impl Future for CountedPend {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            self.polls.set(self.polls.get() + 1);
            if self.done.get() {
                Poll::Ready(())
            } else {
                *self.waker_out.borrow_mut() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    /// Satellite regression: before the ready-set dedup, every wake
    /// pushed another queue entry, so a 10k-wake storm between polls
    /// polled the task 10k times (and grew the queue without bound).
    /// With the in-queue flag the storm coalesces into exactly one poll.
    #[test]
    fn wake_storm_between_polls_coalesces_to_one_poll() {
        let sim = Sim::new();
        let polls: Rc<std::cell::Cell<u32>> = Rc::default();
        let done: Rc<std::cell::Cell<bool>> = Rc::default();
        let waker: Rc<RefCell<Option<Waker>>> = Rc::default();
        sim.spawn(CountedPend {
            polls: Rc::clone(&polls),
            done: Rc::clone(&done),
            waker_out: Rc::clone(&waker),
        });
        {
            let waker = Rc::clone(&waker);
            sim.schedule_at(SimTime::from_nanos(10), move || {
                let w = waker.borrow().clone().expect("first poll parked a waker");
                for _ in 0..10_000 {
                    w.wake_by_ref();
                }
            });
        }
        {
            let (waker, done) = (Rc::clone(&waker), Rc::clone(&done));
            sim.schedule_at(SimTime::from_nanos(20), move || {
                done.set(true);
                waker.borrow().clone().expect("waker parked").wake();
            });
        }
        sim.run().expect_quiescent();
        // Initial poll + one coalesced storm poll + the completing poll.
        assert_eq!(polls.get(), 3, "wake storm must coalesce to one poll");
    }

    #[test]
    fn lifo_reverses_same_instant_wake_order() {
        // Three tasks are spawned (= woken) before the run starts, so all
        // three sit in one ready batch; FIFO polls them in wake order,
        // LIFO in reverse.
        let order_under = |policy: SchedPolicy| {
            let sim = Sim::with_policy(policy);
            let log: Rc<RefCell<Vec<u32>>> = Rc::default();
            for i in 0..3u32 {
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    log.borrow_mut().push(i);
                });
            }
            sim.run().expect_quiescent();
            Rc::try_unwrap(log).unwrap().into_inner()
        };
        assert_eq!(order_under(SchedPolicy::Fifo), vec![0, 1, 2]);
        assert_eq!(order_under(SchedPolicy::Lifo), vec![2, 1, 0]);
    }

    #[test]
    fn perturbed_policies_replay_bit_identically_per_seed() {
        let run_under = |policy: SchedPolicy| {
            let sim = Sim::with_policy(policy);
            let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::default();
            for i in 0..4u32 {
                let s = sim.clone();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    for _ in 0..4u64 {
                        s.sleep(SimDuration::from_nanos(7 + i as u64)).await;
                        log.borrow_mut().push((i, s.now().as_nanos()));
                    }
                });
            }
            sim.run().expect_quiescent();
            Rc::try_unwrap(log).unwrap().into_inner()
        };
        for policy in [
            SchedPolicy::Random { seed: 42 },
            SchedPolicy::WakeDelay {
                seed: 42,
                max_delay_ns: 50,
            },
        ] {
            assert_eq!(run_under(policy), run_under(policy), "{policy:?}");
        }
        // Distinct seeds are allowed to differ (and these do): the point
        // of the perturbation is to explore other legal schedules.
        assert_ne!(
            run_under(SchedPolicy::WakeDelay {
                seed: 1,
                max_delay_ns: 50
            }),
            run_under(SchedPolicy::WakeDelay {
                seed: 2,
                max_delay_ns: 50
            }),
        );
    }

    #[test]
    fn wake_delay_defers_at_most_once_and_stays_quiescent() {
        // Heavy deferral pressure must not strand tasks or livelock: every
        // deferral is a calendar entry, so the run loop drains them all.
        let sim = Sim::with_policy(SchedPolicy::WakeDelay {
            seed: 7,
            max_delay_ns: 1_000,
        });
        let hits: Rc<std::cell::Cell<u32>> = Rc::default();
        for _ in 0..8 {
            let s = sim.clone();
            let hits = Rc::clone(&hits);
            sim.spawn(async move {
                for _ in 0..8 {
                    s.sleep(SimDuration::from_nanos(3)).await;
                }
                hits.set(hits.get() + 1);
            });
        }
        sim.run().expect_quiescent();
        assert_eq!(hits.get(), 8);
    }

    #[test]
    fn tasks_spawned_from_events_run() {
        let sim = Sim::new();
        let hit: Rc<std::cell::Cell<bool>> = Rc::default();
        let s = sim.clone();
        let h = Rc::clone(&hit);
        sim.schedule_at(SimTime::from_nanos(100), move || {
            let h = Rc::clone(&h);
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(SimDuration::from_nanos(1)).await;
                h.set(true);
            });
        });
        sim.run().expect_quiescent();
        assert!(hit.get());
    }
}
