//! The event-driven executor.
//!
//! A [`Sim`] owns an event calendar (a hierarchical timer wheel keyed on
//! `(time, sequence)` — see [`crate::calendar`]) and a set of cooperative
//! async tasks. Tasks advance only when an event they are waiting on
//! fires, so simulated time moves in discrete jumps and the whole run is
//! deterministic: ties are broken by insertion sequence and the executor
//! is single-threaded.
//!
//! `Sim` is a cheap `Rc` handle; clone it freely into spawned tasks.
//!
//! Tasks live in a generational slab arena: a [`TaskId`] is a slot index
//! plus a generation stamp, polls index straight into the slab (no
//! remove/reinsert hashing), each slot caches its `Waker`, and wakes
//! dedup through one atomic flag per task instead of a hash-set insert
//! under the queue mutex (see DESIGN.md §8).
//!
//! The order in which *ready* tasks are polled within one instant is a
//! [`SchedPolicy`]. The default ([`SchedPolicy::Fifo`]) preserves the
//! historical wake order bit-for-bit; the other policies perturb it
//! deterministically from a seed so schedule-invariance can be fuzzed
//! (see DESIGN.md §7).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::calendar::TimerWheel;
use crate::obs::{Obs, SpanGuard};
use crate::rng::splitmix64;
use crate::time::{SimDuration, SimTime};

/// Identity of a spawned task: the slab slot it occupies, the slot's
/// generation at spawn (so a reused slot never aliases a dead task), and
/// the spawn ordinal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskId {
    slot: u32,
    gen: u32,
    ordinal: u64,
}

impl TaskId {
    /// The task's ordinal (spawn order). Stable for the lifetime of the
    /// sim; used as the lane id in trace exports.
    pub fn as_u64(self) -> u64 {
        self.ordinal
    }
}

type TaskFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;
type EventAction = Box<dyn FnOnce() + 'static>;

/// What a calendar entry runs when it fires. Cancellable entries share
/// their action cell with a [`TimerHandle`]; an emptied cell means the
/// event was cancelled and the entry is discarded *without* advancing
/// simulated time (a cancelled deadline leaves no trace on the clock).
enum CalendarAction {
    Fixed(EventAction),
    Cancellable(Rc<RefCell<Option<EventAction>>>),
}

impl CalendarAction {
    /// A cancelled entry still sitting in the calendar (a tombstone).
    fn is_dead(&self) -> bool {
        match self {
            CalendarAction::Fixed(_) => false,
            CalendarAction::Cancellable(cell) => cell.borrow().is_none(),
        }
    }
}

/// How the executor picks the next task from the ready set. Every policy
/// is deterministic: given the same seed and the same program, the same
/// schedule replays bit-for-bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Poll ready tasks in wake order. The default, and the contract for
    /// every checked-in artifact: byte-identical to historical runs.
    #[default]
    Fifo,
    /// Poll the most recently woken ready task first.
    Lifo,
    /// Poll a seeded-random member of the ready set.
    Random {
        /// Seed for the pick sequence (`splitmix64` stream).
        seed: u64,
    },
    /// FIFO order, but each wake may be deferred by a calendar entry up
    /// to `max_delay_ns` of virtual time (drawn per wake from `seed`).
    /// A deferred wake is deferred at most once, so progress is bounded.
    WakeDelay {
        /// Seed for the delay draws (`splitmix64` stream).
        seed: u64,
        /// Upper bound (inclusive) on one deferral, in simulated ns.
        max_delay_ns: u64,
    },
}

/// A `(slot, generation)` pair as it travels through the wake queue.
/// Stale pairs (generation no longer matching the slab) are discarded at
/// pick time, exactly as wakes of completed tasks always were.
type WakeEntry = (u32, u32);

/// Cross-thread wake mailbox. A `Waker` must be `Send + Sync`, so this
/// small piece of shared state uses a real mutex even though the
/// executor itself is single-threaded; the executor drains it in batches
/// into a local queue, so the mutex is taken once per batch rather than
/// once per pick (and per-wake dedup happens on [`WakeSlot::queued`]
/// without touching the lock at all for coalesced wakes).
#[derive(Default)]
struct WakeQueue {
    ready: Mutex<Vec<WakeEntry>>,
}

/// The per-task wake state a `Waker` points at. One allocation per task
/// for its whole lifetime (the slab caches the constructed `Waker`), not
/// one per poll. `queued` makes a wake storm between polls cost one
/// queue entry: only the transition false→true enqueues.
struct WakeSlot {
    slot: u32,
    gen: u32,
    queued: AtomicBool,
    queue: Arc<WakeQueue>,
}

impl WakeSlot {
    fn enqueue(&self) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            self.queue.ready.lock().unwrap().push((self.slot, self.gen));
        }
    }
}

impl Wake for WakeSlot {
    fn wake(self: Arc<Self>) {
        self.enqueue();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.enqueue();
    }
}

/// One slab slot. `gen` is bumped when the occupant completes, so stale
/// wake entries and stale `TaskId`s can never reach a reused slot.
struct TaskSlot {
    gen: u32,
    ordinal: u64,
    /// `None` while the slot is free *or* while its future is out being
    /// polled (the executor takes it, polls without holding the kernel
    /// borrow, and puts it back if pending).
    fut: Option<TaskFuture>,
    /// Wake state + cached waker; `None` while the slot is free.
    wake: Option<Arc<WakeSlot>>,
    waker: Option<Waker>,
    /// This task's current wake was already deferred once by
    /// `SchedPolicy::WakeDelay` (deferral is never compounded).
    deferred: bool,
}

impl TaskSlot {
    fn free() -> Self {
        TaskSlot {
            gen: 0,
            ordinal: 0,
            fut: None,
            wake: None,
            waker: None,
            deferred: false,
        }
    }
}

struct Kernel {
    now: SimTime,
    seq: u64,
    next_ordinal: u64,
    events: TimerWheel<CalendarAction>,
    /// Cancelled-but-still-scheduled calendar entries; shared with every
    /// [`TimerHandle`] so `cancel()` can count its tombstone.
    dead_timers: Rc<Cell<usize>>,
    /// The task arena. Freed slots go on `free_slots` and are reused
    /// with a bumped generation.
    slab: Vec<TaskSlot>,
    free_slots: Vec<u32>,
    /// Number of spawned-and-not-yet-completed tasks.
    live: usize,
    /// Executor-local ready queue, refilled by draining [`WakeQueue`].
    local_ready: VecDeque<WakeEntry>,
    /// Ready-set discipline; `SchedPolicy::Fifo` unless perturbed.
    policy: SchedPolicy,
    /// `splitmix64` counter state behind the policy's random draws.
    sched_rng: u64,
}

impl Kernel {
    fn next_sched_rand(&mut self) -> u64 {
        self.sched_rng = self.sched_rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.sched_rng)
    }

    /// Compacts cancelled timers out of the calendar once they are both
    /// numerous (so small sims never bother) and the majority of it.
    /// Called from the schedule paths, where the calendar grows.
    fn maybe_compact(&mut self) {
        let dead = self.dead_timers.get();
        if dead > 64 && dead * 2 > self.events.len() {
            let removed = self.events.compact(CalendarAction::is_dead);
            self.dead_timers.set(dead.saturating_sub(removed));
        }
    }
}

/// Result of driving a simulation to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Simulated time when the run stopped.
    pub end_time: SimTime,
    /// Tasks still pending when the event calendar drained. Non-zero means
    /// a deadlock in the modelled system (e.g. a barrier nobody reaches).
    pub stranded_tasks: usize,
}

impl RunOutcome {
    /// Panics if any task was left stranded — the normal assertion after a
    /// complete benchmark run.
    pub fn expect_quiescent(self) -> SimTime {
        assert_eq!(
            self.stranded_tasks, 0,
            "simulation deadlocked with {} stranded task(s) at {}",
            self.stranded_tasks, self.end_time
        );
        self.end_time
    }
}

/// Handle to a simulation world. Cloning is cheap and all clones refer to
/// the same world.
#[derive(Clone)]
pub struct Sim {
    kernel: Rc<RefCell<Kernel>>,
    wakes: Arc<WakeQueue>,
    obs: Rc<Obs>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    pub fn new() -> Self {
        Self::with_policy(SchedPolicy::Fifo)
    }

    /// A world whose ready-set order follows `policy`. `Sim::new()` is
    /// `with_policy(SchedPolicy::Fifo)`.
    pub fn with_policy(policy: SchedPolicy) -> Self {
        let sched_rng = match policy {
            SchedPolicy::Random { seed } | SchedPolicy::WakeDelay { seed, .. } => seed,
            SchedPolicy::Fifo | SchedPolicy::Lifo => 0,
        };
        Sim {
            kernel: Rc::new(RefCell::new(Kernel {
                now: SimTime::ZERO,
                seq: 0,
                next_ordinal: 0,
                events: TimerWheel::new(),
                dead_timers: Rc::new(Cell::new(0)),
                slab: Vec::new(),
                free_slots: Vec::new(),
                live: 0,
                local_ready: VecDeque::new(),
                policy,
                sched_rng,
            })),
            wakes: Arc::new(WakeQueue::default()),
            obs: Rc::new(Obs::default()),
        }
    }

    /// The ready-set discipline this world runs under.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.kernel.borrow().policy
    }

    /// The observability layer (span tracer + metrics registry) of this
    /// world. See [`crate::obs`].
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Whether span recording is on; gate dynamic span-name formatting on
    /// this at hot call sites.
    pub fn trace_enabled(&self) -> bool {
        self.obs.is_enabled()
    }

    /// Opens a stacked span and returns a guard that closes it on drop.
    /// When tracing is disabled this is a single flag check.
    pub fn span(&self, category: &'static str, name: &str) -> SpanGuard {
        let id = self.obs.span_begin(category, name);
        SpanGuard::new(Rc::clone(&self.obs), id)
    }

    /// Leaf-span variant of [`Sim::span`]: parented to the current stack
    /// top but not pushed, so concurrent branches of one task (e.g.
    /// `join_all` arms) can hold overlapping spans without adopting each
    /// other as children.
    pub fn span_leaf(&self, category: &'static str, name: &str) -> SpanGuard {
        let id = self.obs.span_begin_leaf(category, name);
        SpanGuard::new(Rc::clone(&self.obs), id)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.borrow().now
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.kernel.borrow().live
    }

    /// Number of entries in the event calendar, including tombstones of
    /// cancelled timers that have not been compacted away yet.
    pub fn pending_events(&self) -> usize {
        self.kernel.borrow().events.len()
    }

    /// Spawns a task onto the simulation. The task starts running at the
    /// current simulated time, when the executor next polls.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let (id, wake) = {
            let mut k = self.kernel.borrow_mut();
            let ordinal = k.next_ordinal;
            k.next_ordinal += 1;
            let slot = match k.free_slots.pop() {
                Some(s) => s,
                None => {
                    k.slab.push(TaskSlot::free());
                    (k.slab.len() - 1) as u32
                }
            };
            let gen = k.slab[slot as usize].gen;
            let wake = Arc::new(WakeSlot {
                slot,
                gen,
                queued: AtomicBool::new(false),
                queue: Arc::clone(&self.wakes),
            });
            k.slab[slot as usize] = TaskSlot {
                gen,
                ordinal,
                fut: Some(Box::pin(fut)),
                wake: Some(Arc::clone(&wake)),
                waker: Some(Waker::from(Arc::clone(&wake))),
                deferred: false,
            };
            k.live += 1;
            (TaskId { slot, gen, ordinal }, wake)
        };
        if self.obs.is_enabled() {
            self.obs
                .instant("executor", &format!("spawn t{}", id.as_u64()));
        }
        // Make sure the new task gets a first poll.
        wake.enqueue();
        id
    }

    /// Schedules `action` to run at absolute time `at`. Actions scheduled
    /// for the same instant run in scheduling order.
    pub fn schedule_at(&self, at: SimTime, action: impl FnOnce() + 'static) {
        let mut k = self.kernel.borrow_mut();
        assert!(
            at >= k.now,
            "cannot schedule into the past: {at} < {}",
            k.now
        );
        k.maybe_compact();
        let seq = k.seq;
        k.seq += 1;
        k.events
            .push(at.as_nanos(), seq, CalendarAction::Fixed(Box::new(action)));
    }

    /// Schedules `action` to run after `delay`.
    pub fn schedule_after(&self, delay: SimDuration, action: impl FnOnce() + 'static) {
        let at = self.now() + delay;
        self.schedule_at(at, action);
    }

    /// Schedules `action` at `at` and returns a handle that can cancel it.
    ///
    /// Cancellation drops the action immediately (so captured state is
    /// released right away, rather than living in the calendar until the
    /// deadline), and the run loop discards the dead calendar entry
    /// without advancing the clock — a cancelled deadline neither runs
    /// nor stretches the simulation's end time. This is the primitive
    /// components with *moving deadlines* (e.g. the flow network's
    /// next-completion event, client RPC timeouts) should use instead of
    /// the schedule-and-check-epoch pattern, which leaks one stale
    /// closure into the calendar per reschedule. Tombstones of cancelled
    /// entries are counted and compacted away once they outnumber the
    /// live half of the calendar, so cancellation-heavy workloads (e.g.
    /// a timeout cancelled per successful attempt) stay bounded.
    pub fn schedule_cancellable_at(
        &self,
        at: SimTime,
        action: impl FnOnce() + 'static,
    ) -> TimerHandle {
        let shared: Rc<RefCell<Option<EventAction>>> =
            Rc::new(RefCell::new(Some(Box::new(action))));
        let mut k = self.kernel.borrow_mut();
        assert!(
            at >= k.now,
            "cannot schedule into the past: {at} < {}",
            k.now
        );
        k.maybe_compact();
        let seq = k.seq;
        k.seq += 1;
        k.events.push(
            at.as_nanos(),
            seq,
            CalendarAction::Cancellable(Rc::clone(&shared)),
        );
        TimerHandle {
            at,
            shared,
            dead: Rc::clone(&k.dead_timers),
        }
    }

    /// Cancellable variant of [`Sim::schedule_after`].
    pub fn schedule_cancellable_after(
        &self,
        delay: SimDuration,
        action: impl FnOnce() + 'static,
    ) -> TimerHandle {
        self.schedule_cancellable_at(self.now() + delay, action)
    }

    /// Suspends the calling task for `delay` of simulated time. The
    /// wakeup is a cancellable calendar entry: dropping the `Sleep`
    /// (e.g. when a `timeout` or `race` abandons it) disarms the entry,
    /// so abandoned sleeps leave no trace on the simulation clock.
    pub fn sleep(&self, delay: SimDuration) -> Sleep {
        let shared = Rc::new(SleepShared {
            fired: Cell::new(false),
            waker: RefCell::new(None),
        });
        let s2 = Rc::clone(&shared);
        let timer = self.schedule_cancellable_after(delay, move || {
            s2.fired.set(true);
            if let Some(w) = s2.waker.borrow_mut().take() {
                w.wake();
            }
        });
        Sleep {
            shared,
            timer: Some(timer),
        }
    }

    /// Runs the simulation until both the event calendar and the ready
    /// queue are empty.
    pub fn run(&self) -> RunOutcome {
        loop {
            // Drain all tasks runnable at the current instant first; only
            // when nothing is ready does time advance.
            self.poll_ready();
            let next = {
                let mut k = self.kernel.borrow_mut();
                let Kernel {
                    events,
                    dead_timers,
                    ..
                } = &mut *k;
                // Cancelled entries are discarded inside the wheel,
                // without advancing the clock the simulation observes —
                // a cancelled deadline leaves no trace on the run.
                let popped = events.pop_next_alive(|entry| {
                    let dead = entry.is_dead();
                    if dead {
                        dead_timers.set(dead_timers.get().saturating_sub(1));
                    }
                    dead
                });
                match popped {
                    Some((at, _seq, entry)) => {
                        let action = match entry {
                            CalendarAction::Fixed(a) => a,
                            // Take before calling: the action must not
                            // observe the cell as borrowed (it may
                            // inspect or re-arm its timer).
                            CalendarAction::Cancellable(cell) => {
                                let taken = cell.borrow_mut().take();
                                taken.expect("liveness was checked in the wheel")
                            }
                        };
                        let at = SimTime::from_nanos(at);
                        debug_assert!(at >= k.now);
                        k.now = at;
                        Some((at, action))
                    }
                    None => None,
                }
            };
            match next {
                Some((at, action)) => {
                    // Keep the tracer's clock mirror in step so span
                    // probes never need to borrow the kernel.
                    self.obs.set_now(at.as_nanos());
                    action()
                }
                None => break,
            }
        }
        let k = self.kernel.borrow();
        RunOutcome {
            end_time: k.now,
            stranded_tasks: k.live,
        }
    }

    /// Picks the next ready task per the scheduling policy and clears its
    /// in-queue flag (so wakes during its poll re-enqueue it). Returns a
    /// `(slot, gen)` whose liveness has already been checked — stale
    /// entries (completed tasks, reused slots) are skipped here.
    ///
    /// FIFO (and `WakeDelay`, which picks FIFO) refills the local queue
    /// by draining the shared mailbox only when the local queue is empty:
    /// one mutex round-trip per batch. That preserves wake order exactly
    /// — entries pushed during polls of this batch sort after the batch,
    /// as they did through the single shared queue. LIFO and Random must
    /// see the *full* ready set on every pick (the newest wake, the true
    /// set size), so they drain the mailbox before each pick.
    fn next_ready(&self) -> Option<(u32, u32)> {
        let mut k = self.kernel.borrow_mut();
        loop {
            let entry = match k.policy {
                SchedPolicy::Fifo | SchedPolicy::WakeDelay { .. } => {
                    if k.local_ready.is_empty() {
                        let mut shared = self.wakes.ready.lock().unwrap();
                        if shared.is_empty() {
                            return None;
                        }
                        k.local_ready.extend(shared.drain(..));
                    }
                    k.local_ready.pop_front()
                }
                SchedPolicy::Lifo | SchedPolicy::Random { .. } => {
                    {
                        let mut shared = self.wakes.ready.lock().unwrap();
                        k.local_ready.extend(shared.drain(..));
                    }
                    let len = k.local_ready.len();
                    if len == 0 {
                        return None;
                    }
                    let idx = match k.policy {
                        SchedPolicy::Lifo => len - 1,
                        _ => (k.next_sched_rand() % len as u64) as usize,
                    };
                    k.local_ready.remove(idx)
                }
            };
            let (slot, gen) = entry?;
            let Some(s) = k.slab.get(slot as usize) else {
                continue;
            };
            if s.gen != gen {
                continue; // completed (slot freed or reused); spurious wake
            }
            if let Some(w) = &s.wake {
                w.queued.store(false, Ordering::Release);
            }
            return Some((slot, gen));
        }
    }

    /// Under `WakeDelay`, decides whether this pick is deferred: draws a
    /// delay in `[0, max_delay_ns]` and, if non-zero, re-queues the task
    /// via a calendar entry that many virtual ns from now. Each wake is
    /// deferred at most once (the `deferred` mark is consumed on the next
    /// pick), so a task is never pushed back indefinitely.
    fn maybe_defer(&self, slot: u32) -> bool {
        let (delay, wake) = {
            let mut k = self.kernel.borrow_mut();
            let SchedPolicy::WakeDelay { max_delay_ns, .. } = k.policy else {
                return false;
            };
            if k.slab[slot as usize].deferred {
                k.slab[slot as usize].deferred = false;
                return false;
            }
            let d = k.next_sched_rand() % (max_delay_ns + 1);
            if d == 0 {
                return false;
            }
            let s = &mut k.slab[slot as usize];
            s.deferred = true;
            let wake = Arc::clone(s.wake.as_ref().expect("live slot has wake state"));
            (SimDuration::from_nanos(d), wake)
        };
        self.schedule_after(delay, move || {
            wake.enqueue();
        });
        true
    }

    /// Polls every task currently in the ready queue (and any tasks they
    /// spawn) until the queue drains at this instant.
    fn poll_ready(&self) {
        while let Some((slot, gen)) = self.next_ready() {
            if self.maybe_defer(slot) {
                continue;
            }
            let (mut fut, waker, id) = {
                let mut k = self.kernel.borrow_mut();
                let s = &mut k.slab[slot as usize];
                let Some(fut) = s.fut.take() else {
                    continue; // spurious wake between pick and poll
                };
                let waker = s.waker.clone().expect("live slot has cached waker");
                let id = TaskId {
                    slot,
                    gen,
                    ordinal: s.ordinal,
                };
                (fut, waker, id)
            };
            let mut cx = Context::from_waker(&waker);
            // Attribute spans opened during the poll to this task, and
            // record the poll itself as a parentless leaf span (zero sim
            // duration — polls never advance the clock; parentless
            // because stacked spans open and close inside polls).
            self.obs.set_current_task(Some(id));
            let poll_span = self.obs.span_begin_orphan("executor", "poll");
            let polled = fut.as_mut().poll(&mut cx);
            if let Some(s) = poll_span {
                self.obs.span_end(s);
            }
            self.obs.set_current_task(None);
            match polled {
                Poll::Ready(()) => {
                    let mut k = self.kernel.borrow_mut();
                    let s = &mut k.slab[slot as usize];
                    s.gen = s.gen.wrapping_add(1);
                    s.wake = None;
                    s.waker = None;
                    s.deferred = false;
                    k.free_slots.push(slot);
                    k.live -= 1;
                    if self.obs.is_enabled() {
                        drop(k);
                        self.obs
                            .instant("executor", &format!("done t{}", id.as_u64()));
                    }
                }
                Poll::Pending => {
                    self.kernel.borrow_mut().slab[slot as usize].fut = Some(fut);
                }
            }
        }
    }

    /// Convenience: spawn a root task, run to quiescence, and assert no
    /// task was stranded. Returns the final simulated time.
    pub fn block_on(&self, fut: impl Future<Output = ()> + 'static) -> SimTime {
        self.spawn(fut);
        self.run().expect_quiescent()
    }
}

/// Handle to a pending event scheduled with
/// [`Sim::schedule_cancellable_at`]. Dropping the handle does *not*
/// cancel the event (fire-and-forget remains possible); call
/// [`TimerHandle::cancel`].
pub struct TimerHandle {
    at: SimTime,
    shared: Rc<RefCell<Option<EventAction>>>,
    /// The kernel's tombstone counter; cancelling bumps it so the
    /// calendar knows when compaction is worthwhile.
    dead: Rc<Cell<usize>>,
}

impl TimerHandle {
    /// The instant the event is scheduled for.
    pub fn deadline(&self) -> SimTime {
        self.at
    }

    /// True while the action has neither fired nor been cancelled.
    pub fn is_armed(&self) -> bool {
        self.shared.borrow().is_some()
    }

    /// Cancels the event, dropping its action immediately. Idempotent;
    /// returns whether the action was still pending.
    pub fn cancel(&self) -> bool {
        let was_armed = self.shared.borrow_mut().take().is_some();
        if was_armed {
            self.dead.set(self.dead.get() + 1);
        }
        was_armed
    }
}

struct SleepShared {
    fired: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

/// Future returned by [`Sim::sleep`]. Dropping it before the deadline
/// cancels the underlying calendar entry.
pub struct Sleep {
    shared: Rc<SleepShared>,
    timer: Option<TimerHandle>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.shared.fired.get() {
            self.timer = None;
            Poll::Ready(())
        } else {
            *self.shared.waker.borrow_mut() = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(t) = self.timer.take() {
            t.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &t in &[30u64, 10, 20] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move || log.borrow_mut().push(t));
        }
        let out = sim.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(out.end_time, SimTime::from_nanos(30));
        assert_eq!(out.stranded_tasks, 0);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for i in 0..10u32 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(5), move || log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sleep_advances_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let end = sim.block_on(async move {
            assert_eq!(s.now(), SimTime::ZERO);
            s.sleep(SimDuration::from_micros(5)).await;
            assert_eq!(s.now().as_nanos(), 5_000);
            s.sleep(SimDuration::from_micros(7)).await;
            assert_eq!(s.now().as_nanos(), 12_000);
        });
        assert_eq!(end.as_nanos(), 12_000);
    }

    #[test]
    fn spawned_tasks_interleave_deterministically() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::default();
        for i in 0..3u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for step in 0..3u64 {
                    s.sleep(SimDuration::from_nanos(10 + i as u64)).await;
                    log.borrow_mut().push((i, s.now().as_nanos()));
                    let _ = step;
                }
            });
        }
        sim.run().expect_quiescent();
        let got = log.borrow().clone();
        // Task 0 ticks at 10,20,30; task 1 at 11,22,33; task 2 at 12,24,36.
        assert_eq!(
            got,
            vec![
                (0, 10),
                (1, 11),
                (2, 12),
                (0, 20),
                (1, 22),
                (2, 24),
                (0, 30),
                (1, 33),
                (2, 36)
            ]
        );
    }

    #[test]
    fn stranded_task_detected() {
        let sim = Sim::new();
        sim.spawn(async {
            // A future that never resolves: poll once, then pend forever.
            std::future::pending::<()>().await;
        });
        let out = sim.run();
        assert_eq!(out.stranded_tasks, 1);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn expect_quiescent_panics_on_strand() {
        let sim = Sim::new();
        sim.spawn(async {
            std::future::pending::<()>().await;
        });
        sim.run().expect_quiescent();
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn schedule_into_past_panics() {
        let sim = Sim::new();
        sim.schedule_at(SimTime::from_nanos(10), || {});
        let s = sim.clone();
        sim.schedule_at(SimTime::from_nanos(20), move || {
            s.schedule_at(SimTime::from_nanos(15), || {});
        });
        sim.run();
    }

    #[test]
    fn zero_length_sleep_still_yields() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let (l1, l2) = (Rc::clone(&log), Rc::clone(&log));
        let s1 = sim.clone();
        sim.spawn(async move {
            l1.borrow_mut().push("a-before");
            s1.sleep(SimDuration::ZERO).await;
            l1.borrow_mut().push("a-after");
        });
        sim.spawn(async move {
            l2.borrow_mut().push("b");
        });
        sim.run().expect_quiescent();
        assert_eq!(*log.borrow(), vec!["a-before", "b", "a-after"]);
    }

    #[test]
    fn cancelled_timer_neither_fires_nor_advances_the_clock() {
        let sim = Sim::new();
        let fired: Rc<Cell<bool>> = Rc::default();
        let f = Rc::clone(&fired);
        let h = sim.schedule_cancellable_at(SimTime::from_nanos(1_000), move || f.set(true));
        sim.schedule_at(SimTime::from_nanos(10), || {});
        assert!(h.is_armed());
        assert!(h.cancel());
        assert!(!h.is_armed());
        assert!(!h.cancel(), "cancel is idempotent");
        let out = sim.run();
        assert!(!fired.get());
        // The dead entry at t=1000 must not stretch the run.
        assert_eq!(out.end_time, SimTime::from_nanos(10));
    }

    #[test]
    fn fired_timer_disarms_its_handle() {
        let sim = Sim::new();
        let fired: Rc<Cell<bool>> = Rc::default();
        let f = Rc::clone(&fired);
        let h = sim.schedule_cancellable_at(SimTime::from_nanos(5), move || f.set(true));
        let out = sim.run();
        assert!(fired.get());
        assert!(!h.is_armed());
        assert_eq!(out.end_time, SimTime::from_nanos(5));
    }

    /// Satellite regression: cancelled timers used to sit in the
    /// calendar as tombstones until their deadline popped. Under a
    /// cancellation-heavy retry pattern (arm a timeout, succeed, cancel
    /// — the RetryPolicy shape) the calendar grew without bound in the
    /// timeout horizon. Compaction now caps tombstones at roughly the
    /// live entry count.
    #[test]
    fn cancellation_storm_is_compacted_out_of_the_calendar() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            for _ in 0..10_000u32 {
                // Arm a far-future timeout, make one unit of progress,
                // then cancel the timeout — the per-attempt pattern of
                // a retrying RPC client.
                let timeout = s.schedule_cancellable_after(SimDuration::from_secs(30), || {
                    panic!("timeout must never fire");
                });
                s.sleep(SimDuration::from_nanos(50)).await;
                timeout.cancel();
                // The calendar must stay bounded: at most the live
                // entries (one sleep in flight) plus a tombstone
                // fraction below the compaction threshold.
                assert!(
                    s.pending_events() <= 256,
                    "calendar bloated to {} entries",
                    s.pending_events()
                );
            }
        });
        sim.run().expect_quiescent();
    }

    /// A future that pends until `done` is set, recording every poll and
    /// parking its waker where the test can reach it.
    struct CountedPend {
        polls: Rc<Cell<u32>>,
        done: Rc<Cell<bool>>,
        waker_out: Rc<RefCell<Option<Waker>>>,
    }

    impl Future for CountedPend {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            self.polls.set(self.polls.get() + 1);
            if self.done.get() {
                Poll::Ready(())
            } else {
                *self.waker_out.borrow_mut() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    /// Satellite regression: before the ready-set dedup, every wake
    /// pushed another queue entry, so a 10k-wake storm between polls
    /// polled the task 10k times (and grew the queue without bound).
    /// With the per-task dedup flag the storm coalesces into exactly one
    /// poll — and only the first wake of the storm touches the mailbox
    /// mutex at all.
    #[test]
    fn wake_storm_between_polls_coalesces_to_one_poll() {
        let sim = Sim::new();
        let polls: Rc<Cell<u32>> = Rc::default();
        let done: Rc<Cell<bool>> = Rc::default();
        let waker: Rc<RefCell<Option<Waker>>> = Rc::default();
        sim.spawn(CountedPend {
            polls: Rc::clone(&polls),
            done: Rc::clone(&done),
            waker_out: Rc::clone(&waker),
        });
        {
            let waker = Rc::clone(&waker);
            sim.schedule_at(SimTime::from_nanos(10), move || {
                let w = waker.borrow().clone().expect("first poll parked a waker");
                for _ in 0..10_000 {
                    w.wake_by_ref();
                }
            });
        }
        {
            let (waker, done) = (Rc::clone(&waker), Rc::clone(&done));
            sim.schedule_at(SimTime::from_nanos(20), move || {
                done.set(true);
                waker.borrow().clone().expect("waker parked").wake();
            });
        }
        sim.run().expect_quiescent();
        // Initial poll + one coalesced storm poll + the completing poll.
        assert_eq!(polls.get(), 3, "wake storm must coalesce to one poll");
    }

    /// A wake that lands after its task completed must be discarded —
    /// even when the task's slab slot has been reused by a new task (the
    /// generation stamp, not the slot index, is the identity).
    #[test]
    fn stale_wake_of_reused_slot_does_not_poll_the_new_occupant() {
        let sim = Sim::new();
        let polls: Rc<Cell<u32>> = Rc::default();
        let done: Rc<Cell<bool>> = Rc::default();
        let stale_waker: Rc<RefCell<Option<Waker>>> = Rc::default();
        {
            // Task 1 completes at t=10, parking its waker outside.
            let s = sim.clone();
            let w = Rc::clone(&stale_waker);
            sim.spawn(async move {
                let sleep = s.sleep(SimDuration::from_nanos(10));
                // Park a clone of our waker where the test can fire it
                // after completion.
                futures_noop_park(&w).await;
                sleep.await;
            });
        }
        // At t=20 (task 1 long gone, its slot reused by task 2), fire the
        // stale waker repeatedly.
        {
            let w = Rc::clone(&stale_waker);
            sim.schedule_at(SimTime::from_nanos(20), move || {
                let waker = w.borrow().clone().expect("waker parked");
                waker.wake_by_ref();
                waker.wake();
            });
        }
        // Task 2 spawns at t=15 — after task 1's slot was freed — and
        // pends on an external flag, counting its polls.
        {
            let sim2 = sim.clone();
            let (polls, done) = (Rc::clone(&polls), Rc::clone(&done));
            sim.schedule_at(SimTime::from_nanos(15), move || {
                sim2.spawn(CountedPend {
                    polls,
                    done,
                    waker_out: Rc::default(),
                });
            });
        }
        {
            let done = Rc::clone(&done);
            sim.schedule_at(SimTime::from_nanos(30), move || done.set(true));
        }
        let out = sim.run();
        // Task 2 is polled at spawn and once when the calendar drains
        // (its own waker never fires; the t=30 event sets done but task 2
        // is only re-polled if something wakes it — the stale wake must
        // NOT be that something).
        assert_eq!(
            polls.get(),
            1,
            "stale wake must not poll the slot's new occupant"
        );
        assert_eq!(out.stranded_tasks, 1, "task 2 legitimately strands");
    }

    /// Awaitable that parks a waker clone into `out` and completes on
    /// the second poll.
    fn futures_noop_park(out: &Rc<RefCell<Option<Waker>>>) -> impl Future<Output = ()> + 'static {
        struct Park {
            out: Rc<RefCell<Option<Waker>>>,
            polled: bool,
        }
        impl Future for Park {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                *self.out.borrow_mut() = Some(cx.waker().clone());
                if self.polled {
                    Poll::Ready(())
                } else {
                    self.polled = true;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        Park {
            out: Rc::clone(out),
            polled: false,
        }
    }

    #[test]
    fn lifo_reverses_same_instant_wake_order() {
        // Three tasks are spawned (= woken) before the run starts, so all
        // three sit in one ready batch; FIFO polls them in wake order,
        // LIFO in reverse.
        let order_under = |policy: SchedPolicy| {
            let sim = Sim::with_policy(policy);
            let log: Rc<RefCell<Vec<u32>>> = Rc::default();
            for i in 0..3u32 {
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    log.borrow_mut().push(i);
                });
            }
            sim.run().expect_quiescent();
            Rc::try_unwrap(log).unwrap().into_inner()
        };
        assert_eq!(order_under(SchedPolicy::Fifo), vec![0, 1, 2]);
        assert_eq!(order_under(SchedPolicy::Lifo), vec![2, 1, 0]);
    }

    #[test]
    fn perturbed_policies_replay_bit_identically_per_seed() {
        let run_under = |policy: SchedPolicy| {
            let sim = Sim::with_policy(policy);
            let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::default();
            for i in 0..4u32 {
                let s = sim.clone();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    for _ in 0..4u64 {
                        s.sleep(SimDuration::from_nanos(7 + i as u64)).await;
                        log.borrow_mut().push((i, s.now().as_nanos()));
                    }
                });
            }
            sim.run().expect_quiescent();
            Rc::try_unwrap(log).unwrap().into_inner()
        };
        for policy in [
            SchedPolicy::Random { seed: 42 },
            SchedPolicy::WakeDelay {
                seed: 42,
                max_delay_ns: 50,
            },
        ] {
            assert_eq!(run_under(policy), run_under(policy), "{policy:?}");
        }
        // Distinct seeds are allowed to differ (and these do): the point
        // of the perturbation is to explore other legal schedules.
        assert_ne!(
            run_under(SchedPolicy::WakeDelay {
                seed: 1,
                max_delay_ns: 50
            }),
            run_under(SchedPolicy::WakeDelay {
                seed: 2,
                max_delay_ns: 50
            }),
        );
    }

    #[test]
    fn wake_delay_defers_at_most_once_and_stays_quiescent() {
        // Heavy deferral pressure must not strand tasks or livelock: every
        // deferral is a calendar entry, so the run loop drains them all.
        let sim = Sim::with_policy(SchedPolicy::WakeDelay {
            seed: 7,
            max_delay_ns: 1_000,
        });
        let hits: Rc<Cell<u32>> = Rc::default();
        for _ in 0..8 {
            let s = sim.clone();
            let hits = Rc::clone(&hits);
            sim.spawn(async move {
                for _ in 0..8 {
                    s.sleep(SimDuration::from_nanos(3)).await;
                }
                hits.set(hits.get() + 1);
            });
        }
        sim.run().expect_quiescent();
        assert_eq!(hits.get(), 8);
    }

    #[test]
    fn tasks_spawned_from_events_run() {
        let sim = Sim::new();
        let hit: Rc<Cell<bool>> = Rc::default();
        let s = sim.clone();
        let h = Rc::clone(&hit);
        sim.schedule_at(SimTime::from_nanos(100), move || {
            let h = Rc::clone(&h);
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(SimDuration::from_nanos(1)).await;
                h.set(true);
            });
        });
        sim.run().expect_quiescent();
        assert!(hit.get());
    }

    /// Slot reuse bookkeeping: ordinals keep counting up (they are the
    /// trace lane ids), generations advance per reuse, and `live_tasks`
    /// tracks spawn/complete exactly.
    #[test]
    fn slab_reuses_slots_with_fresh_generations_and_stable_ordinals() {
        let sim = Sim::new();
        let mut ids = Vec::new();
        for wave in 0..3u64 {
            for i in 0..4u64 {
                let id = sim.spawn(async {});
                assert_eq!(id.as_u64(), wave * 4 + i, "ordinals are spawn order");
                ids.push(id);
            }
            assert_eq!(sim.live_tasks(), 4);
            sim.run().expect_quiescent();
            assert_eq!(sim.live_tasks(), 0);
        }
        // All 12 TaskIds must be distinct even though only 4 slots exist.
        for a in 0..ids.len() {
            for b in (a + 1)..ids.len() {
                assert_ne!(ids[a], ids[b]);
            }
        }
    }
}
