//! Property-based tests of the simulation kernel: event ordering,
//! determinism and synchronization invariants.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use daosim_kernel::sync::{
    timeout, AdmissionClass, AdmissionPolicy, Barrier, PrioritySemaphore, Semaphore,
};
use daosim_kernel::{Sim, SimDuration, SimTime};
use proptest::prelude::*;

/// One queued request in the cancellation scenario: `want` permits,
/// `hold` ns once granted; `cancel` wraps the acquire in a short timeout
/// so it is dropped while queued (at whatever queue position its arrival
/// index lands it in).
#[derive(Debug, Clone, Copy)]
struct CancelPlan {
    want: usize,
    hold: u64,
    cancel: bool,
}

fn cancel_plan(max_want: usize) -> impl Strategy<Value = CancelPlan> {
    (1..max_want + 1, 1u64..200, any::<bool>()).prop_map(|(want, hold, cancel)| CancelPlan {
        want,
        hold,
        cancel,
    })
}

/// Either semaphore flavour behind one acquire surface, so the same
/// scenario drives both and the FIFO-mode grant logs can be compared.
#[derive(Clone)]
enum AnySem {
    Plain(Semaphore),
    Prio(PrioritySemaphore),
}

impl AnySem {
    async fn run_one(
        &self,
        sim: Sim,
        i: usize,
        p: CancelPlan,
        log: Rc<RefCell<Vec<(usize, u64)>>>,
    ) {
        let class = if i % 3 == 0 {
            AdmissionClass::Urgent
        } else {
            AdmissionClass::Normal
        };
        // Stagger arrivals so task i is queue position i.
        sim.sleep(SimDuration::from_nanos(i as u64)).await;
        // Cancelling requests may want more than the semaphore has
        // (never grantable); live requests are clamped by the caller.
        let granted = match self {
            AnySem::Plain(sem) => {
                if p.cancel {
                    timeout(
                        &sim,
                        SimDuration::from_nanos(p.hold / 2),
                        sem.acquire(p.want),
                    )
                    .await
                    .is_ok()
                } else {
                    let _g = sem.acquire(p.want).await;
                    log.borrow_mut().push((i, sim.now().as_nanos()));
                    sim.sleep(SimDuration::from_nanos(p.hold)).await;
                    return;
                }
            }
            AnySem::Prio(sem) => {
                if p.cancel {
                    timeout(
                        &sim,
                        SimDuration::from_nanos(p.hold / 2),
                        sem.acquire(p.want, class),
                    )
                    .await
                    .is_ok()
                } else {
                    let _g = sem.acquire(p.want, class).await;
                    log.borrow_mut().push((i, sim.now().as_nanos()));
                    sim.sleep(SimDuration::from_nanos(p.hold)).await;
                    return;
                }
            }
        };
        if granted {
            // A same-instant grant can beat the timeout; that is a
            // normal grant, log it so conservation still balances.
            log.borrow_mut().push((i, sim.now().as_nanos()));
        }
    }
}

/// Runs the cancellation scenario and returns (grant log, permits free at
/// quiescence). Panics (-> proptest failure) if any task strands, which
/// is exactly what a swallowed wakeup produces.
fn run_cancel_scenario(
    sem: AnySem,
    permits: usize,
    plans: &[CancelPlan],
) -> (Vec<(usize, u64)>, usize) {
    let sim = Sim::new();
    let log: Rc<RefCell<Vec<(usize, u64)>>> = Rc::default();
    for (i, &p) in plans.iter().enumerate() {
        let mut p = p;
        if !p.cancel {
            p.want = p.want.min(permits); // live requests must be grantable
        }
        let (s, m, log) = (sim.clone(), sem.clone(), Rc::clone(&log));
        sim.spawn(async move { m.run_one(s, i, p, log).await });
    }
    sim.run().expect_quiescent();
    let avail = match &sem {
        AnySem::Plain(s) => s.available(),
        AnySem::Prio(s) => s.available(),
    };
    let granted = log.borrow().clone();
    (granted, avail)
}

proptest! {
    #[test]
    fn events_fire_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let sim = Sim::new();
        let fired: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &t in &times {
            let fired = Rc::clone(&fired);
            sim.schedule_at(SimTime::from_nanos(t), move || fired.borrow_mut().push(t));
        }
        sim.run();
        let got = fired.borrow().clone();
        prop_assert_eq!(got.len(), times.len());
        for w in got.windows(2) {
            prop_assert!(w[0] <= w[1], "events fired out of order: {:?}", w);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(got, sorted);
    }

    #[test]
    fn sleeping_tasks_trace_identically_across_runs(
        delays in proptest::collection::vec((1u64..10_000, 1u8..6), 1..40)
    ) {
        let run = || {
            let sim = Sim::new();
            let trace: Rc<RefCell<Vec<(usize, u64)>>> = Rc::default();
            for (i, &(delay, hops)) in delays.iter().enumerate() {
                let (s, trace) = (sim.clone(), Rc::clone(&trace));
                sim.spawn(async move {
                    for _ in 0..hops {
                        s.sleep(SimDuration::from_nanos(delay)).await;
                        trace.borrow_mut().push((i, s.now().as_nanos()));
                    }
                });
            }
            sim.run().expect_quiescent();
            Rc::try_unwrap(trace).unwrap().into_inner()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn semaphore_never_admits_more_than_permits(
        permits in 1usize..5,
        tasks in 1usize..20,
        holds in 1u64..500,
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(permits);
        let inside: Rc<Cell<usize>> = Rc::default();
        let peak: Rc<Cell<usize>> = Rc::default();
        for i in 0..tasks {
            let (s, m, inside, peak) = (
                sim.clone(),
                sem.clone(),
                Rc::clone(&inside),
                Rc::clone(&peak),
            );
            sim.spawn(async move {
                s.sleep(SimDuration::from_nanos(i as u64 % 7)).await;
                let _p = m.acquire_one().await;
                inside.set(inside.get() + 1);
                peak.set(peak.get().max(inside.get()));
                s.sleep(SimDuration::from_nanos(holds)).await;
                inside.set(inside.get() - 1);
            });
        }
        sim.run().expect_quiescent();
        prop_assert_eq!(inside.get(), 0);
        prop_assert!(peak.get() <= permits, "peak {} > permits {}", peak.get(), permits);
        // At least one task was admitted; full saturation depends on the
        // arrival/hold timing, so only the upper bound is universal.
        prop_assert!(peak.get() >= 1);
    }

    #[test]
    fn barrier_generations_never_interleave(
        parties in 2usize..8,
        rounds in 1u32..10,
        jitter in proptest::collection::vec(1u64..100, 8),
    ) {
        let sim = Sim::new();
        let bar = Barrier::new(parties);
        // Each party's round counter; at any barrier release, all
        // counters must be equal (nobody can be a full round ahead).
        let counters: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(vec![0; parties]));
        let ok: Rc<Cell<bool>> = Rc::new(Cell::new(true));
        for p in 0..parties {
            let (s, b) = (sim.clone(), bar.clone());
            let (counters, ok) = (Rc::clone(&counters), Rc::clone(&ok));
            let j = jitter[p % jitter.len()];
            sim.spawn(async move {
                for r in 0..rounds {
                    s.sleep(SimDuration::from_nanos(j * (p as u64 + 1))).await;
                    counters.borrow_mut()[p] = r + 1;
                    b.wait().await;
                    // After release, every party must have reached r+1.
                    if counters.borrow().iter().any(|&c| c < r + 1) {
                        ok.set(false);
                    }
                }
            });
        }
        sim.run().expect_quiescent();
        prop_assert!(ok.get(), "a party crossed the barrier early");
    }

    #[test]
    fn cancellation_at_any_queue_position_conserves_permits(
        permits in 1usize..4,
        plans in proptest::collection::vec(cancel_plan(5), 2..14),
    ) {
        // A dropped/cancelled acquire (retry timeout firing while queued)
        // must neither leak its queue slot nor swallow the wakeup for the
        // waiter behind it: every live request is eventually granted and
        // every permit comes back, whatever queue position the
        // cancellations land on. Checked for the plain semaphore and both
        // priority policies.
        let sems = [
            AnySem::Plain(Semaphore::new(permits)),
            AnySem::Prio(PrioritySemaphore::fifo(permits)),
            AnySem::Prio(PrioritySemaphore::new(
                permits,
                AdmissionPolicy::WriterPriority { aging: 2 },
            )),
        ];
        for sem in sems {
            let (granted, avail) = run_cancel_scenario(sem, permits, &plans);
            prop_assert_eq!(avail, permits, "permits leaked or double-released");
            for (i, p) in plans.iter().enumerate() {
                if !p.cancel {
                    prop_assert!(
                        granted.iter().any(|&(g, _)| g == i),
                        "live waiter {} was never granted",
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn priority_fifo_grant_log_matches_plain_semaphore(
        permits in 1usize..4,
        plans in proptest::collection::vec(cancel_plan(5), 2..14),
    ) {
        // The (class, seq) tie-break under AdmissionPolicy::Fifo reduces
        // to global arrival order: grant logs — tasks and instants — are
        // identical to the plain FIFO semaphore, cancellations included.
        let (a, _) = run_cancel_scenario(AnySem::Plain(Semaphore::new(permits)), permits, &plans);
        let (b, _) =
            run_cancel_scenario(AnySem::Prio(PrioritySemaphore::fifo(permits)), permits, &plans);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn run_outcome_time_is_last_event(times in proptest::collection::vec(0u64..1_000, 1..50)) {
        let sim = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), || {});
        }
        let out = sim.run();
        prop_assert_eq!(out.end_time.as_nanos(), *times.iter().max().unwrap());
        prop_assert_eq!(out.stranded_tasks, 0);
    }
}
