//! Property-based tests of the simulation kernel: event ordering,
//! determinism and synchronization invariants.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use daosim_kernel::sync::{Barrier, Semaphore};
use daosim_kernel::{Sim, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn events_fire_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let sim = Sim::new();
        let fired: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &t in &times {
            let fired = Rc::clone(&fired);
            sim.schedule_at(SimTime::from_nanos(t), move || fired.borrow_mut().push(t));
        }
        sim.run();
        let got = fired.borrow().clone();
        prop_assert_eq!(got.len(), times.len());
        for w in got.windows(2) {
            prop_assert!(w[0] <= w[1], "events fired out of order: {:?}", w);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(got, sorted);
    }

    #[test]
    fn sleeping_tasks_trace_identically_across_runs(
        delays in proptest::collection::vec((1u64..10_000, 1u8..6), 1..40)
    ) {
        let run = || {
            let sim = Sim::new();
            let trace: Rc<RefCell<Vec<(usize, u64)>>> = Rc::default();
            for (i, &(delay, hops)) in delays.iter().enumerate() {
                let (s, trace) = (sim.clone(), Rc::clone(&trace));
                sim.spawn(async move {
                    for _ in 0..hops {
                        s.sleep(SimDuration::from_nanos(delay)).await;
                        trace.borrow_mut().push((i, s.now().as_nanos()));
                    }
                });
            }
            sim.run().expect_quiescent();
            Rc::try_unwrap(trace).unwrap().into_inner()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn semaphore_never_admits_more_than_permits(
        permits in 1usize..5,
        tasks in 1usize..20,
        holds in 1u64..500,
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(permits);
        let inside: Rc<Cell<usize>> = Rc::default();
        let peak: Rc<Cell<usize>> = Rc::default();
        for i in 0..tasks {
            let (s, m, inside, peak) = (
                sim.clone(),
                sem.clone(),
                Rc::clone(&inside),
                Rc::clone(&peak),
            );
            sim.spawn(async move {
                s.sleep(SimDuration::from_nanos(i as u64 % 7)).await;
                let _p = m.acquire_one().await;
                inside.set(inside.get() + 1);
                peak.set(peak.get().max(inside.get()));
                s.sleep(SimDuration::from_nanos(holds)).await;
                inside.set(inside.get() - 1);
            });
        }
        sim.run().expect_quiescent();
        prop_assert_eq!(inside.get(), 0);
        prop_assert!(peak.get() <= permits, "peak {} > permits {}", peak.get(), permits);
        // At least one task was admitted; full saturation depends on the
        // arrival/hold timing, so only the upper bound is universal.
        prop_assert!(peak.get() >= 1);
    }

    #[test]
    fn barrier_generations_never_interleave(
        parties in 2usize..8,
        rounds in 1u32..10,
        jitter in proptest::collection::vec(1u64..100, 8),
    ) {
        let sim = Sim::new();
        let bar = Barrier::new(parties);
        // Each party's round counter; at any barrier release, all
        // counters must be equal (nobody can be a full round ahead).
        let counters: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(vec![0; parties]));
        let ok: Rc<Cell<bool>> = Rc::new(Cell::new(true));
        for p in 0..parties {
            let (s, b) = (sim.clone(), bar.clone());
            let (counters, ok) = (Rc::clone(&counters), Rc::clone(&ok));
            let j = jitter[p % jitter.len()];
            sim.spawn(async move {
                for r in 0..rounds {
                    s.sleep(SimDuration::from_nanos(j * (p as u64 + 1))).await;
                    counters.borrow_mut()[p] = r + 1;
                    b.wait().await;
                    // After release, every party must have reached r+1.
                    if counters.borrow().iter().any(|&c| c < r + 1) {
                        ok.set(false);
                    }
                }
            });
        }
        sim.run().expect_quiescent();
        prop_assert!(ok.get(), "a party crossed the barrier early");
    }

    #[test]
    fn run_outcome_time_is_last_event(times in proptest::collection::vec(0u64..1_000, 1..50)) {
        let sim = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), || {});
        }
        let out = sim.run();
        prop_assert_eq!(out.end_time.as_nanos(), *times.iter().max().unwrap());
        prop_assert_eq!(out.stranded_tasks, 0);
    }
}
