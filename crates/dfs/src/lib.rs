//! # daosim-dfs — a POSIX-style file/directory namespace over `DaosApi`
//!
//! The DFS layer the interface papers ("Exploring DAOS Interfaces and
//! Performance", "DAOS as HPC Storage: Exploring Interfaces") benchmark:
//! a libdfs-model filesystem encoded onto the two native DAOS object
//! kinds, generic over any [`DaosApi`] backend (embedded store or
//! simulated cluster):
//!
//! * a **superblock** entry in a well-known KV object records the
//!   namespace's format version and object classes; racing mounts
//!   resolve it with one conditional insert and the losers adopt the
//!   winner's superblock;
//! * every **directory** is a KV object mapping entry name → a typed
//!   *dirent* (child Oid, kind, and — for files — size);
//! * every **regular file** is an Array object holding the byte extents.
//!
//! The deliberate consequence — and the thing `xp ior-interfaces`
//! measures — is that every path component costs a KV lookup and every
//! create/close costs dirent KV updates *on top of* the raw Array I/O.
//! Small transfers pay that metadata tax visibly; large transfers
//! amortize it to nothing, reproducing the papers' interface-overhead
//! ranking.
//!
//! Deviations from real libdfs are listed in DESIGN.md §13; the load
//! bearing ones: file size lives in the dirent (updated at close) rather
//! than being derived from the array high watermark, and rename is two
//! KV updates without a distributed transaction.

use std::cell::RefCell;
use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};
use daosim_objstore::prelude::{
    ArrayHandle, DaosApi, DaosError, EventQueue, ObjectClass, Oid, OidAllocator, Uuid,
};

/// Longest single path component, as in libdfs (`DFS_MAX_NAME`).
pub const NAME_MAX: usize = 255;

/// Current superblock format version.
pub const DFS_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Errors

/// Typed DFS failures. The POSIX-ish variants carry the canonical path
/// they refer to; [`DfsError::Daos`] wraps the underlying [`DaosError`]
/// with the failing operation and path, so transient/permanent context
/// survives the interface boundary (see [`DfsError::is_transient`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DfsError {
    /// A path component (or the final entry) does not exist (`ENOENT`).
    NotFound(String),
    /// A non-final path component names a regular file (`ENOTDIR`).
    NotADirectory(String),
    /// A file operation hit a directory (`EISDIR`).
    IsADirectory(String),
    /// The entry already exists (`EEXIST`).
    Exists(String),
    /// Unlink/overwrite of a non-empty directory (`ENOTEMPTY`).
    NotEmpty(String),
    /// Malformed path: relative, `..`, or an over-long component.
    InvalidPath(String),
    /// A dirent failed to decode — namespace corruption.
    BadDirent(String),
    /// A DAOS operation failed, annotated with the operation name and
    /// the path it was serving.
    Daos {
        /// The client operation that failed (e.g. `"array_write"`).
        op: &'static str,
        /// Canonical path the operation was serving.
        path: String,
        source: DaosError,
    },
}

impl DfsError {
    /// Wraps a [`DaosError`] with operation and path context.
    pub fn daos(op: &'static str, path: impl Into<String>, source: DaosError) -> Self {
        DfsError::Daos {
            op,
            path: path.into(),
            source,
        }
    }

    /// True when the underlying DAOS error is transient (a retry may
    /// succeed). Namespace errors (`NotFound`, `Exists`, …) never are.
    pub fn is_transient(&self) -> bool {
        matches!(self, DfsError::Daos { source, .. } if source.is_transient())
    }

    /// The wrapped DAOS error, when there is one.
    pub fn daos_source(&self) -> Option<&DaosError> {
        match self {
            DfsError::Daos { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            DfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            DfsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            DfsError::Exists(p) => write!(f, "already exists: {p}"),
            DfsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            DfsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            DfsError::BadDirent(p) => write!(f, "corrupt dirent at {p}"),
            DfsError::Daos { op, path, source } => {
                write!(f, "daos {op} failed for {path}: {source}")
            }
        }
    }
}

impl std::error::Error for DfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DfsError::Daos { source, .. } => Some(source),
            _ => None,
        }
    }
}

pub type DfsResult<T> = std::result::Result<T, DfsError>;

// ---------------------------------------------------------------------------
// Paths

/// Normalizes an absolute path into its components: leading `/`
/// required, repeated and trailing slashes tolerated, `.` dropped, `..`
/// rejected (the namespace is `..`-free by contract), components capped
/// at [`NAME_MAX`]. The root is the empty component list.
pub fn normalize(path: &str) -> DfsResult<Vec<String>> {
    if !path.starts_with('/') {
        return Err(DfsError::InvalidPath(path.to_string()));
    }
    let mut comps = Vec::new();
    for c in path.split('/') {
        match c {
            "" | "." => continue,
            ".." => return Err(DfsError::InvalidPath(path.to_string())),
            name if name.len() <= NAME_MAX => comps.push(name.to_string()),
            _ => return Err(DfsError::InvalidPath(path.to_string())),
        }
    }
    Ok(comps)
}

/// The canonical rendering of a component list (`[]` → `"/"`).
pub fn canonical(comps: &[String]) -> String {
    if comps.is_empty() {
        "/".to_string()
    } else {
        let mut s = String::new();
        for c in comps {
            s.push('/');
            s.push_str(c);
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Dirents

/// What a directory entry points at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    File,
    Dir,
}

impl FileKind {
    pub fn name(self) -> &'static str {
        match self {
            FileKind::File => "file",
            FileKind::Dir => "dir",
        }
    }
}

/// A typed directory entry: the child's object id and kind, plus the
/// file size for regular files (directories carry 0). Fixed-width
/// encoding so a corrupt entry is detected by length/magic, not by
/// silently misparsing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dirent {
    pub kind: FileKind,
    pub oid: Oid,
    pub size: u64,
}

const DIRENT_MAGIC: u8 = 0xDF;
const DIRENT_LEN: usize = 1 + 1 + 1 + 4 + 8 + 8;

fn class_code(class: ObjectClass) -> u8 {
    match class {
        ObjectClass::S1 => 1,
        ObjectClass::S2 => 2,
        ObjectClass::SX => 3,
        ObjectClass::RP2 => 4,
        ObjectClass::EC2P1 => 5,
    }
}

fn class_from_code(code: u8) -> Option<ObjectClass> {
    Some(match code {
        1 => ObjectClass::S1,
        2 => ObjectClass::S2,
        3 => ObjectClass::SX,
        4 => ObjectClass::RP2,
        5 => ObjectClass::EC2P1,
        _ => return None,
    })
}

impl Dirent {
    pub fn file(oid: Oid, size: u64) -> Self {
        Dirent {
            kind: FileKind::File,
            oid,
            size,
        }
    }

    pub fn dir(oid: Oid) -> Self {
        Dirent {
            kind: FileKind::Dir,
            oid,
            size: 0,
        }
    }

    /// `[magic, kind, class, user_hi BE, user_lo BE, size BE]`.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(DIRENT_LEN);
        b.put_u8(DIRENT_MAGIC);
        b.put_u8(match self.kind {
            FileKind::File => 1,
            FileKind::Dir => 2,
        });
        b.put_u8(class_code(self.oid.class()));
        let (hi, lo) = self.oid.user_bits();
        b.put_u32(hi);
        b.put_u64(lo);
        b.put_u64(self.size);
        b.freeze()
    }

    pub fn decode(raw: &[u8]) -> Option<Dirent> {
        if raw.len() != DIRENT_LEN || raw[0] != DIRENT_MAGIC {
            return None;
        }
        let kind = match raw[1] {
            1 => FileKind::File,
            2 => FileKind::Dir,
            _ => return None,
        };
        let class = class_from_code(raw[2])?;
        let hi = u32::from_be_bytes(raw[3..7].try_into().unwrap());
        let lo = u64::from_be_bytes(raw[7..15].try_into().unwrap());
        let size = u64::from_be_bytes(raw[15..23].try_into().unwrap());
        Some(Dirent {
            kind,
            oid: Oid::generate(hi, lo, class),
            size,
        })
    }
}

// ---------------------------------------------------------------------------
// Superblock

/// Namespace-wide parameters, fixed at format time by whichever mount
/// wins the superblock insert.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DfsConfig {
    /// Object class for directory KVs.
    pub dir_class: ObjectClass,
    /// Object class for file Arrays.
    pub file_class: ObjectClass,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            dir_class: ObjectClass::SX,
            file_class: ObjectClass::S1,
        }
    }
}

const SB_MAGIC: &[u8; 4] = b"DFS1";
const SB_KEY: &[u8] = b"sb";
const SB_LEN: usize = 4 + 4 + 1 + 1;

fn encode_superblock(cfg: &DfsConfig) -> Bytes {
    let mut b = BytesMut::with_capacity(SB_LEN);
    b.put_slice(SB_MAGIC);
    b.put_u32(DFS_VERSION);
    b.put_u8(class_code(cfg.dir_class));
    b.put_u8(class_code(cfg.file_class));
    b.freeze()
}

fn decode_superblock(raw: &[u8]) -> Option<DfsConfig> {
    if raw.len() != SB_LEN || &raw[0..4] != SB_MAGIC {
        return None;
    }
    if u32::from_be_bytes(raw[4..8].try_into().unwrap()) != DFS_VERSION {
        return None;
    }
    Some(DfsConfig {
        dir_class: class_from_code(raw[8])?,
        file_class: class_from_code(raw[9])?,
    })
}

fn superblock_oid() -> Oid {
    Oid::from_digest(&Uuid::from_name(b"daosim-dfs:superblock"), ObjectClass::S1)
}

fn root_oid(dir_class: ObjectClass) -> Oid {
    // Digest-derived and never renamed, so every mount agrees on it
    // without coordination (the md5-derived-identity trick again).
    Oid::from_digest(&Uuid::from_name(b"daosim-dfs:root"), dir_class)
}

// ---------------------------------------------------------------------------
// Observations

/// `stat(2)` result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Stat {
    pub kind: FileKind,
    pub size: u64,
}

/// One `readdir(2)` row (kind and size come from the dirent, so this is
/// the cheap `readdir+d_type` shape, not a per-entry stat of the child).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DirEntry {
    pub name: String,
    pub kind: FileKind,
    pub size: u64,
}

/// An open regular file: the Array handle plus the dirent coordinates
/// needed to persist the size high-watermark at [`DfsHandle::close`].
#[derive(Debug)]
pub struct DfsFile {
    handle: ArrayHandle,
    parent: Oid,
    name: String,
    path: String,
    size: u64,
    dirty: bool,
}

impl DfsFile {
    pub fn oid(&self) -> Oid {
        self.handle.oid()
    }

    /// The underlying Array handle — the `AsRawFd` escape hatch for
    /// callers that pipeline raw array I/O over an open DFS file (size
    /// tracking is then on them; offsets written this way are not
    /// reflected in the dirent).
    pub fn array(&self) -> &ArrayHandle {
        &self.handle
    }

    /// Size as seen through this handle (local writes included).
    pub fn size(&self) -> u64 {
        self.size
    }

    pub fn path(&self) -> &str {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// The handle

/// A mounted DFS namespace over one container of backend `D`.
pub struct DfsHandle<D: DaosApi> {
    client: D,
    cont: D::Cont,
    cfg: DfsConfig,
    root: Oid,
    alloc: RefCell<OidAllocator>,
}

impl<D: DaosApi> DfsHandle<D> {
    /// Mounts (creating if necessary) the namespace in container `uuid`
    /// with default classes. `client_id` salts this mount's object-id
    /// allocator and must be unique among concurrently-mounting clients.
    pub async fn mount(client: D, uuid: Uuid, client_id: u32) -> DfsResult<Self> {
        Self::mount_with(client, uuid, client_id, DfsConfig::default()).await
    }

    /// [`DfsHandle::mount`] with explicit object classes. When the
    /// namespace already exists, the superblock's classes win and `cfg`
    /// is ignored — racing mounts converge on one format.
    pub async fn mount_with(
        client: D,
        uuid: Uuid,
        client_id: u32,
        cfg: DfsConfig,
    ) -> DfsResult<Self> {
        let cont = client
            .cont_open_or_create(uuid)
            .await
            .map_err(|e| DfsError::daos("cont_open_or_create", "/", e))?;
        let sb = superblock_oid();
        let cfg = match client
            .kv_put_if_absent(&cont, sb, SB_KEY, encode_superblock(&cfg))
            .await
            .map_err(|e| DfsError::daos("kv_put_if_absent", "/", e))?
        {
            None => cfg,
            Some(existing) => {
                decode_superblock(&existing).ok_or_else(|| DfsError::BadDirent("/".into()))?
            }
        };
        Ok(DfsHandle {
            root: root_oid(cfg.dir_class),
            client,
            cont,
            cfg,
            alloc: RefCell::new(OidAllocator::new(client_id)),
        })
    }

    /// The namespace's format parameters (the superblock's, not
    /// necessarily the ones this mount asked for).
    pub fn config(&self) -> DfsConfig {
        self.cfg
    }

    /// The backing client, for callers that mix raw and DFS access.
    pub fn client(&self) -> &D {
        &self.client
    }

    // -- lookup ------------------------------------------------------------

    async fn dirent(&self, dir: Oid, name: &str, path: &str) -> DfsResult<Option<Dirent>> {
        match self.client.kv_get(&self.cont, dir, name.as_bytes()).await {
            Ok(None) => Ok(None),
            Ok(Some(raw)) => Dirent::decode(&raw)
                .map(Some)
                .ok_or_else(|| DfsError::BadDirent(path.to_string())),
            Err(e) => Err(DfsError::daos("kv_get", path, e)),
        }
    }

    /// Walks `comps` from the root, insisting every component is a
    /// directory; returns the final directory's KV oid. One KV lookup
    /// per component — the path-resolution cost DFS pays and raw object
    /// access does not.
    async fn resolve_dir(&self, comps: &[String]) -> DfsResult<Oid> {
        let mut cur = self.root;
        for (i, c) in comps.iter().enumerate() {
            let here = canonical(&comps[..i + 1]);
            match self.dirent(cur, c, &here).await? {
                None => return Err(DfsError::NotFound(here)),
                Some(d) if d.kind == FileKind::Dir => cur = d.oid,
                Some(_) => return Err(DfsError::NotADirectory(here)),
            }
        }
        Ok(cur)
    }

    /// Splits a normalized non-root path into its parent's directory oid
    /// and the final name; resolves the parent.
    async fn resolve_parent<'c>(&self, comps: &'c [String]) -> DfsResult<(Oid, &'c str)> {
        let (name, parent) = comps.split_last().expect("caller rejects the root");
        Ok((self.resolve_dir(parent).await?, name.as_str()))
    }

    // -- namespace ops -----------------------------------------------------

    /// Creates directory `path` (`mkdir(2)`: parent must exist, entry
    /// must not). Racing creators resolve through one conditional dirent
    /// insert; exactly one wins, the rest get [`DfsError::Exists`].
    pub async fn mkdir(&self, path: &str) -> DfsResult<()> {
        let comps = normalize(path)?;
        if comps.is_empty() {
            return Err(DfsError::Exists("/".into()));
        }
        let canon = canonical(&comps);
        let (parent, name) = self.resolve_parent(&comps).await?;
        let oid = self.alloc.borrow_mut().next(self.cfg.dir_class);
        match self
            .client
            .kv_put_if_absent(
                &self.cont,
                parent,
                name.as_bytes(),
                Dirent::dir(oid).encode(),
            )
            .await
            .map_err(|e| DfsError::daos("kv_put_if_absent", &*canon, e))?
        {
            None => Ok(()),
            Some(_) => Err(DfsError::Exists(canon)),
        }
    }

    /// Creates and opens regular file `path` exclusively
    /// (`open(O_CREAT|O_EXCL)`): any existing entry is
    /// [`DfsError::Exists`].
    pub async fn create(&self, path: &str) -> DfsResult<DfsFile> {
        let comps = normalize(path)?;
        if comps.is_empty() {
            return Err(DfsError::IsADirectory("/".into()));
        }
        let canon = canonical(&comps);
        let (parent, name) = self.resolve_parent(&comps).await?;
        let oid = self.alloc.borrow_mut().next(self.cfg.file_class);
        if self
            .client
            .kv_put_if_absent(
                &self.cont,
                parent,
                name.as_bytes(),
                Dirent::file(oid, 0).encode(),
            )
            .await
            .map_err(|e| DfsError::daos("kv_put_if_absent", &*canon, e))?
            .is_some()
        {
            return Err(DfsError::Exists(canon));
        }
        let handle = self
            .client
            .array_create(&self.cont, oid)
            .await
            .map_err(|e| DfsError::daos("array_create", &*canon, e))?;
        Ok(DfsFile {
            handle,
            parent,
            name: name.to_string(),
            path: canon,
            size: 0,
            dirty: false,
        })
    }

    /// Creates-or-opens regular file `path` (`open(O_CREAT)`) — the
    /// race-safe shape shared-file IOR needs: every rank calls this, one
    /// wins the dirent insert, the losers open the winner's object.
    pub async fn open_or_create(&self, path: &str) -> DfsResult<DfsFile> {
        let comps = normalize(path)?;
        if comps.is_empty() {
            return Err(DfsError::IsADirectory("/".into()));
        }
        let canon = canonical(&comps);
        let (parent, name) = self.resolve_parent(&comps).await?;
        let oid = self.alloc.borrow_mut().next(self.cfg.file_class);
        let ent = match self
            .client
            .kv_put_if_absent(
                &self.cont,
                parent,
                name.as_bytes(),
                Dirent::file(oid, 0).encode(),
            )
            .await
            .map_err(|e| DfsError::daos("kv_put_if_absent", &*canon, e))?
        {
            None => Dirent::file(oid, 0),
            Some(raw) => {
                let ent = Dirent::decode(&raw).ok_or_else(|| DfsError::BadDirent(canon.clone()))?;
                if ent.kind == FileKind::Dir {
                    return Err(DfsError::IsADirectory(canon));
                }
                ent
            }
        };
        // open_or_create on the array too: a losing rank can get here
        // before the winner's array_create has landed.
        let handle = self
            .client
            .array_open_or_create(&self.cont, ent.oid)
            .await
            .map_err(|e| DfsError::daos("array_open_or_create", &*canon, e))?;
        Ok(DfsFile {
            handle,
            parent,
            name: name.to_string(),
            path: canon,
            size: ent.size,
            dirty: false,
        })
    }

    /// Opens existing regular file `path` (`open(2)` without `O_CREAT`).
    pub async fn open(&self, path: &str) -> DfsResult<DfsFile> {
        let comps = normalize(path)?;
        if comps.is_empty() {
            return Err(DfsError::IsADirectory("/".into()));
        }
        let canon = canonical(&comps);
        let (parent, name) = self.resolve_parent(&comps).await?;
        let ent = self
            .dirent(parent, name, &canon)
            .await?
            .ok_or_else(|| DfsError::NotFound(canon.clone()))?;
        if ent.kind == FileKind::Dir {
            return Err(DfsError::IsADirectory(canon));
        }
        let handle = self
            .client
            .array_open(&self.cont, ent.oid)
            .await
            .map_err(|e| DfsError::daos("array_open", &*canon, e))?;
        Ok(DfsFile {
            handle,
            parent,
            name: name.to_string(),
            path: canon,
            size: ent.size,
            dirty: false,
        })
    }

    /// Writes `data` at `offset` through the open file (blocking).
    pub async fn write(&self, f: &mut DfsFile, offset: u64, data: Bytes) -> DfsResult<()> {
        let end = offset.saturating_add(data.len() as u64);
        self.client
            .array_write(&self.cont, &f.handle, offset, data)
            .await
            .map_err(|e| DfsError::daos("array_write", &*f.path, e))?;
        if end > f.size {
            f.size = end;
            f.dirty = true;
        }
        Ok(())
    }

    /// Reads up to `len` bytes at `offset`, clamped at the file size
    /// (POSIX short read at EOF); holes read as zero.
    pub async fn read(&self, f: &DfsFile, offset: u64, len: u64) -> DfsResult<Bytes> {
        let eff = len.min(f.size.saturating_sub(offset));
        if eff == 0 {
            return Ok(Bytes::new());
        }
        self.client
            .array_read(&self.cont, &f.handle, offset, eff)
            .await
            .map_err(|e| DfsError::daos("array_read", &*f.path, e))
    }

    /// Closes the file, persisting a grown size into the dirent (libdfs
    /// derives size from the array high watermark; we track it in the
    /// dirent, charged as one extra KV get+put on dirty close).
    pub async fn close(&self, f: DfsFile) -> DfsResult<()> {
        if f.dirty {
            if let Some(cur) = self.dirent(f.parent, &f.name, &f.path).await? {
                // Skip if the entry was re-pointed (unlink+recreate or
                // rename-over) while we held the handle.
                if cur.kind == FileKind::File && cur.oid == f.oid() && f.size > cur.size {
                    self.client
                        .kv_put(
                            &self.cont,
                            f.parent,
                            f.name.as_bytes(),
                            Dirent::file(f.oid(), f.size).encode(),
                        )
                        .await
                        .map_err(|e| DfsError::daos("kv_put", &*f.path, e))?;
                }
            }
        }
        self.client
            .array_close(&self.cont, f.handle)
            .await
            .map_err(|e| DfsError::daos("array_close", &*f.path, e))
    }

    /// Starts a pipelined writer over an open file: up to `window` data
    /// writes ride one [`EventQueue`] (`daos_eq`-style), exactly like the
    /// field-I/O `pipelined_writer`.
    pub fn writer(&self, file: DfsFile, window: u32) -> DfsWriter<'_, D> {
        DfsWriter {
            eq: EventQueue::new(self.client.clone()),
            dfs: self,
            file,
            window: window.max(1) as usize,
            first_err: None,
        }
    }

    /// Lists `path`'s entries in name order, with each entry's kind and
    /// size straight from its dirent.
    pub async fn readdir(&self, path: &str) -> DfsResult<Vec<DirEntry>> {
        let comps = normalize(path)?;
        let canon = canonical(&comps);
        let dir = self.resolve_dir(&comps).await?;
        let keys = self
            .client
            .kv_list_keys(&self.cont, dir)
            .await
            .map_err(|e| DfsError::daos("kv_list_keys", &*canon, e))?;
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let name = String::from_utf8_lossy(&key).into_owned();
            let child = if canon == "/" {
                format!("/{name}")
            } else {
                format!("{canon}/{name}")
            };
            let ent = self
                .dirent(dir, &name, &child)
                .await?
                .ok_or_else(|| DfsError::BadDirent(child.clone()))?;
            out.push(DirEntry {
                name,
                kind: ent.kind,
                size: ent.size,
            });
        }
        Ok(out)
    }

    /// `stat(2)`: kind and size. The root stats as an empty directory.
    pub async fn stat(&self, path: &str) -> DfsResult<Stat> {
        let comps = normalize(path)?;
        if comps.is_empty() {
            return Ok(Stat {
                kind: FileKind::Dir,
                size: 0,
            });
        }
        let canon = canonical(&comps);
        let (parent, name) = self.resolve_parent(&comps).await?;
        let ent = self
            .dirent(parent, name, &canon)
            .await?
            .ok_or(DfsError::NotFound(canon))?;
        Ok(Stat {
            kind: ent.kind,
            size: ent.size,
        })
    }

    /// Removes a file or an *empty* directory (`unlink(2)`/`rmdir(2)` in
    /// one call, like `remove(3)`); punches the backing object.
    pub async fn unlink(&self, path: &str) -> DfsResult<()> {
        let comps = normalize(path)?;
        if comps.is_empty() {
            return Err(DfsError::InvalidPath("/".into()));
        }
        let canon = canonical(&comps);
        let (parent, name) = self.resolve_parent(&comps).await?;
        let ent = self
            .dirent(parent, name, &canon)
            .await?
            .ok_or_else(|| DfsError::NotFound(canon.clone()))?;
        if ent.kind == FileKind::Dir {
            let children = self
                .client
                .kv_list_keys(&self.cont, ent.oid)
                .await
                .map_err(|e| DfsError::daos("kv_list_keys", &*canon, e))?;
            if !children.is_empty() {
                return Err(DfsError::NotEmpty(canon));
            }
        }
        self.client
            .kv_remove(&self.cont, parent, name.as_bytes())
            .await
            .map_err(|e| DfsError::daos("kv_remove", &*canon, e))?;
        self.punch(ent.oid, &canon).await
    }

    /// Punches a namespace object, tolerating one that was never
    /// materialized (backends create KV/Array objects lazily, so an
    /// empty directory or unwritten file may have no object yet).
    async fn punch(&self, oid: Oid, path: &str) -> DfsResult<()> {
        match self.client.obj_punch(&self.cont, oid).await {
            Ok(()) | Err(DaosError::ObjNotFound(_)) => Ok(()),
            Err(e) => Err(DfsError::daos("obj_punch", path, e)),
        }
    }

    /// Moves `src` to `dst`. `dst` must not exist, except that a regular
    /// file may replace a regular file (the old object is punched).
    /// Renaming a directory into its own subtree is rejected. Not a
    /// transaction: the entry appears at `dst` before it disappears from
    /// `src` (deviation from libdfs-over-DTX, noted in DESIGN.md §13).
    pub async fn rename(&self, src: &str, dst: &str) -> DfsResult<()> {
        let s = normalize(src)?;
        let d = normalize(dst)?;
        if s.is_empty() || d.is_empty() {
            return Err(DfsError::InvalidPath("/".into()));
        }
        let s_canon = canonical(&s);
        let d_canon = canonical(&d);
        let (s_parent, s_name) = self.resolve_parent(&s).await?;
        let ent = self
            .dirent(s_parent, s_name, &s_canon)
            .await?
            .ok_or_else(|| DfsError::NotFound(s_canon.clone()))?;
        if s == d {
            return Ok(());
        }
        if ent.kind == FileKind::Dir && d.len() > s.len() && d[..s.len()] == s[..] {
            // Moving a directory under itself would orphan the subtree
            // into a cycle.
            return Err(DfsError::InvalidPath(d_canon));
        }
        let (d_parent, d_name) = self.resolve_parent(&d).await?;
        let replaced = match self.dirent(d_parent, d_name, &d_canon).await? {
            None => None,
            Some(old) if old.kind == FileKind::File && ent.kind == FileKind::File => Some(old.oid),
            Some(_) => return Err(DfsError::Exists(d_canon)),
        };
        self.client
            .kv_put(&self.cont, d_parent, d_name.as_bytes(), ent.encode())
            .await
            .map_err(|e| DfsError::daos("kv_put", &*d_canon, e))?;
        self.client
            .kv_remove(&self.cont, s_parent, s_name.as_bytes())
            .await
            .map_err(|e| DfsError::daos("kv_remove", &*s_canon, e))?;
        if let Some(old) = replaced {
            self.punch(old, &d_canon).await?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Pipelined writer

/// Windowed write-behind over one open file: `submit` launches an
/// `array_write` on the event queue and parks only while the window is
/// full, exactly like the field-I/O pipelined writer. Errors surface on
/// the *next* submit or at [`DfsWriter::finish`].
pub struct DfsWriter<'a, D: DaosApi> {
    dfs: &'a DfsHandle<D>,
    file: DfsFile,
    eq: EventQueue<D>,
    window: usize,
    first_err: Option<DaosError>,
}

impl<D: DaosApi> DfsWriter<'_, D> {
    /// Launches one write, waiting for window capacity first.
    pub async fn submit(&mut self, offset: u64, data: Bytes) -> DfsResult<()> {
        for (_, r) in self.eq.wait_capacity(self.window).await {
            if let Err(e) = r {
                self.first_err.get_or_insert(e);
            }
        }
        if let Some(e) = self.first_err.take() {
            return Err(DfsError::daos("array_write", &*self.file.path, e));
        }
        let end = offset.saturating_add(data.len() as u64);
        self.eq
            .array_write(&self.dfs.cont, &self.file.handle, offset, data);
        if end > self.file.size {
            self.file.size = end;
            self.file.dirty = true;
        }
        Ok(())
    }

    /// Drains the queue and returns the file for [`DfsHandle::close`]
    /// (which persists the size). Any write-behind error fails the whole
    /// writer, first error wins.
    pub async fn finish(mut self) -> DfsResult<DfsFile> {
        for (_, r) in self.eq.wait_all().await {
            if let Err(e) = r {
                self.first_err.get_or_insert(e);
            }
        }
        match self.first_err.take() {
            Some(e) => Err(DfsError::daos("array_write", &*self.file.path, e)),
            None => Ok(self.file),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daosim_objstore::prelude::EmbeddedClient;
    use daosim_objstore::DaosStore;

    fn block_on<F: std::future::Future>(fut: F) -> F::Output {
        // The embedded backend never actually suspends; poll once.
        let waker = std::task::Waker::noop();
        let mut cx = std::task::Context::from_waker(waker);
        let mut fut = std::pin::pin!(fut);
        match fut.as_mut().poll(&mut cx) {
            std::task::Poll::Ready(v) => v,
            std::task::Poll::Pending => panic!("embedded backend suspended"),
        }
    }

    fn dfs() -> DfsHandle<EmbeddedClient> {
        let (_store, pool) = DaosStore::with_single_pool(8);
        let client = EmbeddedClient::new(pool);
        block_on(DfsHandle::mount(client, Uuid::from_name(b"dfs-test"), 1)).unwrap()
    }

    #[test]
    fn normalize_edges() {
        assert_eq!(normalize("/").unwrap(), Vec::<String>::new());
        assert_eq!(normalize("/a/b").unwrap(), vec!["a", "b"]);
        // Trailing and repeated slashes, and `.`, are tolerated.
        assert_eq!(normalize("/a/b/").unwrap(), vec!["a", "b"]);
        assert_eq!(normalize("//a///b//").unwrap(), vec!["a", "b"]);
        assert_eq!(normalize("/a/./b").unwrap(), vec!["a", "b"]);
        // Relative and `..` paths are typed errors.
        assert!(matches!(normalize("a/b"), Err(DfsError::InvalidPath(_))));
        assert!(matches!(normalize(""), Err(DfsError::InvalidPath(_))));
        assert!(matches!(
            normalize("/a/../b"),
            Err(DfsError::InvalidPath(_))
        ));
        let long = format!("/{}", "x".repeat(NAME_MAX + 1));
        assert!(matches!(normalize(&long), Err(DfsError::InvalidPath(_))));
        assert_eq!(canonical(&normalize("/a//b/").unwrap()), "/a/b");
        assert_eq!(canonical(&normalize("/").unwrap()), "/");
    }

    #[test]
    fn dirent_roundtrip_and_corruption() {
        for (ent, _) in [
            (Dirent::file(Oid::generate(7, 9, ObjectClass::S1), 4096), 0),
            (Dirent::dir(Oid::generate(1, 2, ObjectClass::SX)), 0),
        ] {
            let raw = ent.encode();
            assert_eq!(raw.len(), DIRENT_LEN);
            assert_eq!(Dirent::decode(&raw), Some(ent));
        }
        assert_eq!(Dirent::decode(b"short"), None);
        let mut bad = Dirent::dir(Oid::generate(1, 2, ObjectClass::SX))
            .encode()
            .to_vec();
        bad[0] = 0; // magic
        assert_eq!(Dirent::decode(&bad), None);
        bad[0] = DIRENT_MAGIC;
        bad[1] = 9; // kind
        assert_eq!(Dirent::decode(&bad), None);
    }

    #[test]
    fn mkdir_create_stat_readdir() {
        let fs = dfs();
        block_on(async {
            fs.mkdir("/a").await.unwrap();
            fs.mkdir("/a/b").await.unwrap();
            let mut f = fs.create("/a/b/data").await.unwrap();
            fs.write(&mut f, 0, Bytes::from_static(b"hello world"))
                .await
                .unwrap();
            assert_eq!(
                fs.read(&f, 6, 100).await.unwrap().as_ref(),
                b"world",
                "read clamps at EOF"
            );
            fs.close(f).await.unwrap();

            assert_eq!(
                fs.stat("/a/b/data").await.unwrap(),
                Stat {
                    kind: FileKind::File,
                    size: 11
                }
            );
            assert_eq!(fs.stat("/").await.unwrap().kind, FileKind::Dir);
            // Trailing slash names the same entries.
            assert_eq!(fs.stat("/a/b/").await.unwrap().kind, FileKind::Dir);
            let ls = fs.readdir("/a/b").await.unwrap();
            assert_eq!(ls.len(), 1);
            assert_eq!(ls[0].name, "data");
            assert_eq!(ls[0].size, 11);
            // Reopen sees the persisted size.
            let f = fs.open("/a/b/data").await.unwrap();
            assert_eq!(f.size(), 11);
            assert_eq!(fs.read(&f, 0, 11).await.unwrap().as_ref(), b"hello world");
            fs.close(f).await.unwrap();
        });
    }

    #[test]
    fn namespace_errors_are_typed() {
        let fs = dfs();
        block_on(async {
            fs.mkdir("/d").await.unwrap();
            let f = fs.create("/f").await.unwrap();
            fs.close(f).await.unwrap();

            assert!(matches!(fs.mkdir("/d").await, Err(DfsError::Exists(p)) if p == "/d"));
            assert!(matches!(fs.mkdir("/").await, Err(DfsError::Exists(_))));
            assert!(matches!(fs.create("/f").await, Err(DfsError::Exists(_))));
            assert!(matches!(
                fs.open("/missing").await,
                Err(DfsError::NotFound(_))
            ));
            assert!(matches!(
                fs.mkdir("/missing/x").await,
                Err(DfsError::NotFound(p)) if p == "/missing"
            ));
            // A file used as a directory component.
            assert!(matches!(
                fs.create("/f/x").await,
                Err(DfsError::NotADirectory(p)) if p == "/f"
            ));
            assert!(matches!(
                fs.open("/d").await,
                Err(DfsError::IsADirectory(_))
            ));
            assert!(matches!(
                fs.stat("/d/nope").await,
                Err(DfsError::NotFound(_))
            ));
        });
    }

    #[test]
    fn unlink_semantics() {
        let fs = dfs();
        block_on(async {
            fs.mkdir("/d").await.unwrap();
            let f = fs.create("/d/f").await.unwrap();
            fs.close(f).await.unwrap();

            // Non-empty directory refuses.
            assert!(matches!(
                fs.unlink("/d").await,
                Err(DfsError::NotEmpty(p)) if p == "/d"
            ));
            // The root can never be unlinked.
            assert!(matches!(
                fs.unlink("/").await,
                Err(DfsError::InvalidPath(_))
            ));
            fs.unlink("/d/f").await.unwrap();
            assert!(matches!(fs.stat("/d/f").await, Err(DfsError::NotFound(_))));
            // Now empty: removable, and gone from listings.
            fs.unlink("/d").await.unwrap();
            assert!(fs.readdir("/").await.unwrap().is_empty());
            assert!(matches!(fs.unlink("/d").await, Err(DfsError::NotFound(_))));
        });
    }

    #[test]
    fn rename_semantics() {
        let fs = dfs();
        block_on(async {
            fs.mkdir("/a").await.unwrap();
            let mut f = fs.create("/a/x").await.unwrap();
            fs.write(&mut f, 0, Bytes::from_static(b"payload"))
                .await
                .unwrap();
            fs.close(f).await.unwrap();

            // Plain move keeps contents and size.
            fs.mkdir("/b").await.unwrap();
            fs.rename("/a/x", "/b/y").await.unwrap();
            assert!(matches!(fs.stat("/a/x").await, Err(DfsError::NotFound(_))));
            let g = fs.open("/b/y").await.unwrap();
            assert_eq!(fs.read(&g, 0, 7).await.unwrap().as_ref(), b"payload");
            fs.close(g).await.unwrap();

            // File replaces file; old bytes are gone with the old object.
            let mut h = fs.create("/b/z").await.unwrap();
            fs.write(&mut h, 0, Bytes::from_static(b"old"))
                .await
                .unwrap();
            fs.close(h).await.unwrap();
            fs.rename("/b/y", "/b/z").await.unwrap();
            assert_eq!(fs.stat("/b/z").await.unwrap().size, 7);
            assert!(matches!(fs.stat("/b/y").await, Err(DfsError::NotFound(_))));

            // A directory target refuses; missing source is NotFound.
            assert!(matches!(
                fs.rename("/b/z", "/a").await,
                Err(DfsError::Exists(_))
            ));
            assert!(matches!(
                fs.rename("/nope", "/b/w").await,
                Err(DfsError::NotFound(_))
            ));
            // Directory into its own subtree refuses.
            fs.mkdir("/a/sub").await.unwrap();
            assert!(matches!(
                fs.rename("/a", "/a/sub/a").await,
                Err(DfsError::InvalidPath(_))
            ));
            // Self-rename of an existing entry is a no-op success.
            fs.rename("/b/z", "/b/z").await.unwrap();
            assert_eq!(fs.stat("/b/z").await.unwrap().size, 7);
        });
    }

    #[test]
    fn open_or_create_converges_on_one_object() {
        let fs = dfs();
        block_on(async {
            let a = fs.open_or_create("/shared").await.unwrap();
            let b = fs.open_or_create("/shared").await.unwrap();
            assert_eq!(a.oid(), b.oid(), "losers adopt the winner's object");
            fs.close(a).await.unwrap();
            fs.close(b).await.unwrap();
            assert!(matches!(
                fs.open_or_create("/").await,
                Err(DfsError::IsADirectory(_))
            ));
        });
    }

    #[test]
    fn pipelined_writer_moves_all_bytes_and_persists_size() {
        let fs = dfs();
        block_on(async {
            let f = fs.create("/big").await.unwrap();
            let mut w = fs.writer(f, 4);
            for s in 0..8u64 {
                w.submit(s * 1024, Bytes::from(vec![s as u8; 1024]))
                    .await
                    .unwrap();
            }
            let f = w.finish().await.unwrap();
            assert_eq!(f.size(), 8 * 1024);
            fs.close(f).await.unwrap();
            assert_eq!(fs.stat("/big").await.unwrap().size, 8 * 1024);
            let f = fs.open("/big").await.unwrap();
            let got = fs.read(&f, 3 * 1024, 1024).await.unwrap();
            assert!(got.iter().all(|&b| b == 3));
            fs.close(f).await.unwrap();
        });
    }

    #[test]
    fn racing_mounts_share_one_superblock() {
        let (_store, pool) = DaosStore::with_single_pool(8);
        let uuid = Uuid::from_name(b"dfs-race");
        let c1 = EmbeddedClient::new(pool.clone());
        let c2 = EmbeddedClient::new(pool);
        block_on(async {
            // First mount formats with non-default classes; the second
            // asks for defaults but must adopt the winner's superblock.
            let cfg = DfsConfig {
                dir_class: ObjectClass::S1,
                file_class: ObjectClass::SX,
            };
            let a = DfsHandle::mount_with(c1, uuid, 1, cfg).await.unwrap();
            let b = DfsHandle::mount(c2, uuid, 2).await.unwrap();
            assert_eq!(a.config(), cfg);
            assert_eq!(b.config(), cfg);
            // Both mounts see one namespace.
            a.mkdir("/from-a").await.unwrap();
            assert_eq!(b.readdir("/").await.unwrap().len(), 1);
        });
    }

    #[test]
    fn dfs_error_preserves_transience() {
        let transient = DfsError::daos("kv_get", "/x", DaosError::EngineUnavailable(0));
        assert!(transient.is_transient());
        assert!(transient.daos_source().is_some());
        let permanent = DfsError::daos(
            "kv_get",
            "/x",
            DaosError::WrongType(Oid::generate(1, 2, ObjectClass::S1)),
        );
        assert!(!permanent.is_transient());
        assert!(!DfsError::NotFound("/x".into()).is_transient());
        assert_eq!(DfsError::NotFound("/x".into()).daos_source(), None);
    }
}
