//! ENOSPC through the POSIX namespace: a DFS mounted on a nearly-full
//! pool reports `DaosError::NoSpace` as a typed, permanent `DfsError`
//! from both `write` and `close` — never a panic.

use bytes::Bytes;
use daosim_dfs::{DfsError, DfsHandle};
use daosim_objstore::prelude::{DaosError, EmbeddedClient};
use daosim_objstore::{DaosStore, Uuid};
use proptest::prelude::*;

/// The embedded backend never actually suspends; poll once.
fn block_on<F: std::future::Future>(fut: F) -> F::Output {
    let waker = std::task::Waker::noop();
    let mut cx = std::task::Context::from_waker(waker);
    let mut fut = std::pin::pin!(fut);
    match fut.as_mut().poll(&mut cx) {
        std::task::Poll::Ready(v) => v,
        std::task::Poll::Pending => panic!("embedded backend suspended"),
    }
}

/// `NoSpace`, wrapped with DFS context and still permanent.
fn is_permanent_no_space(e: &DfsError) -> bool {
    matches!(e.daos_source(), Some(DaosError::NoSpace)) && !e.is_transient()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Writes into a shrunken pool end in a typed `NoSpace`; the dirty
    /// `close` that follows (dirent size update on a full pool) either
    /// lands or reports the same typed error — no panic, no retry bait.
    #[test]
    fn dfs_write_and_close_report_no_space_when_full(
        capacity_kib in 2u64..32,
        chunk in 1usize..4096,
    ) {
        let store = DaosStore::new();
        // The mount itself writes the superblock and root directory, so
        // the floor of 2 KiB keeps mount viable while writes still hit
        // the wall.
        let pool = store
            .pool_create(Uuid::from_name(b"tiny-dfs"), 4, capacity_kib * 1024)
            .unwrap();
        let client = EmbeddedClient::new(pool);
        let outcome = block_on(async {
            let fs = DfsHandle::mount(client, Uuid::from_name(b"enospc"), 1).await?;
            let mut f = fs.create("/field.grib").await?;
            let mut write_errors = Vec::new();
            let mut off = 0u64;
            let rounds = (capacity_kib * 1024) as usize / chunk + 3;
            for _ in 0..rounds {
                match fs.write(&mut f, off, Bytes::from(vec![9u8; chunk])).await {
                    Ok(()) => off += chunk as u64,
                    Err(e) => write_errors.push(e),
                }
            }
            let close_result = fs.close(f).await;
            Ok::<_, DfsError>((write_errors, close_result))
        });
        let (write_errors, close_result) = match outcome {
            Ok(v) => v,
            // Mount or create already hit the wall: that must itself be
            // a typed NoSpace, which satisfies the property.
            Err(e) => {
                prop_assert!(is_permanent_no_space(&e), "setup failed with {e}");
                return Ok(());
            }
        };
        prop_assert!(
            !write_errors.is_empty(),
            "a {capacity_kib} KiB pool never filled on {chunk}-byte DFS writes"
        );
        for e in &write_errors {
            prop_assert!(is_permanent_no_space(e), "write failed with {e}, not NoSpace");
        }
        if let Err(e) = close_result {
            prop_assert!(is_permanent_no_space(&e), "close failed with {e}, not NoSpace");
        }
    }
}
